//! Rot guards for targets that plain `cargo test` never compiles: the
//! examples and the Criterion bench binaries. Without these,
//! `cargo build --examples` / `cargo bench --no-run` can silently break
//! while the test suite stays green. The serving example is additionally
//! *run*: it self-checks >1000 batched requests against the reference
//! forward, so a silent numerics regression in the runtime fails here.
//!
//! Each test shells out to `cargo` against this workspace. A dedicated
//! target directory avoids deadlocking on the build lock held by the
//! outer `cargo test` invocation.

use std::path::PathBuf;
use std::process::Command;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the `ant` package is the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn nested_cargo(args: &[&str]) {
    let root = workspace_root();
    let target = root.join("target").join("rot-check");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(args)
        .current_dir(&root)
        .env("CARGO_TARGET_DIR", &target)
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn examples_still_build() {
    nested_cargo(&["build", "--examples"]);
}

#[test]
fn benches_still_build() {
    nested_cargo(&["bench", "--no-run", "-p", "ant-bench"]);
}

#[test]
fn serve_quantized_smoke_runs() {
    // The example asserts zero mismatches between the packed engine and
    // the fake-quantized reference over its full request stream.
    nested_cargo(&["run", "--example", "serve_quantized"]);
}
