//! Cross-crate consistency: the same flint semantics must hold in the
//! arithmetic codec (`ant-core`), the bit-level hardware (`ant-hw`) and
//! the fake-quantization path used for training (`ant-nn`), and the
//! simulator's analytic timing must agree with the cycle-stepped array.

use ant::core::flint::Flint;
use ant::core::{ClipSearch, DataType, Quantizer};
use ant::hw::decode::{decode_flint, WireType};
use ant::hw::systolic::{reference_gemm, DecodedMatrix, SystolicArray};
use ant::nn::model::mlp;
use ant::nn::qat::QuantSpec;
use ant::runtime::{BatchPolicy, Engine, Planner};
use ant::sim::design::compute_cycles;
use ant::tensor::dist::{sample_tensor, sample_vec, Distribution};

#[test]
fn core_and_hw_agree_on_every_flint_code() {
    for bits in 3..=8u32 {
        let flint = Flint::new(bits).expect("valid width");
        for code in 0..flint.num_codes() {
            let sw = flint.decode(code);
            let hw = decode_flint(code, bits, false).expect("valid code");
            assert_eq!(hw.value() as u64, sw, "b={bits} code={code:b}");
        }
    }
}

#[test]
fn fake_quantized_values_are_exactly_representable_in_hardware() {
    // Every value the training-time fake quantizer produces must be the
    // scale times an integer the hardware can decode from some code —
    // otherwise QAT would be training against a lattice the accelerator
    // cannot realise.
    let data = sample_vec(Distribution::HalfGaussian { std: 1.0 }, 2048, 9);
    let dt = DataType::flint(4, false).expect("valid dtype");
    let (q, _) = Quantizer::fit(dt, &data, ClipSearch::default()).expect("fit succeeds");
    let flint = Flint::new(4).expect("4-bit flint");
    let lattice: Vec<f32> = (0..flint.num_codes())
        .map(|c| flint.decode(c) as f32 * q.scale())
        .collect();
    for &x in &data {
        let y = q.quantize_dequantize(x);
        assert!(
            lattice
                .iter()
                .any(|&l| (l - y).abs() <= 1e-6 * (1.0 + l.abs())),
            "fake-quantized {y} is not scale x flint-decodable"
        );
    }
}

#[test]
fn analytic_cycle_model_matches_cycle_stepped_array() {
    // The simulator's closed-form tile timing must equal the hw crate's
    // cycle-by-cycle execution for a spread of shapes.
    for (m, k, n, array) in [
        (5usize, 9, 7, 3usize),
        (8, 4, 8, 4),
        (16, 16, 16, 4),
        (3, 20, 2, 2),
    ] {
        let a_codes: Vec<u32> = (0..m * k).map(|i| (i % 16) as u32).collect();
        let b_codes: Vec<u32> = (0..k * n).map(|i| (i * 3 % 16) as u32).collect();
        let a = DecodedMatrix::from_codes(m, k, &a_codes, 4, WireType::Flint { signed: true })
            .expect("valid codes");
        let b = DecodedMatrix::from_codes(k, n, &b_codes, 4, WireType::Int { signed: true })
            .expect("valid codes");
        let (out, stats) = SystolicArray::new(array, 32).gemm(&a, &b);
        assert_eq!(out, reference_gemm(&a, &b));
        assert_eq!(
            stats.cycles,
            compute_cycles(m as u64, n as u64, k as u64, array as u64),
            "m={m} k={k} n={n} array={array}"
        );
    }
}

#[test]
fn select_compile_batch_execute_matches_reference_forward() {
    // The full serving path across crates: Algorithm-2 selection on a real
    // model (ant-core via ant-nn), plan compilation to packed wire codes
    // (ant-runtime), batched execution through the scheduler, and
    // comparison against the fake-quantized reference forward — one
    // request at a time, out of submission order.
    let mut model = mlp(8, 4, 77);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[64, 8],
        78,
    );
    let mut planner = Planner::new();
    let plan = planner
        .compile(&mut model, &calib, QuantSpec::default())
        .expect("plan compiles");
    assert_eq!(plan.packed_layer_count(), 3);

    // Second compilation replays the cached type selection.
    let _ = planner
        .compile(&mut model, &calib, QuantSpec::default())
        .expect("recompilation succeeds");
    assert_eq!(planner.cache().stats(), (1, 1));

    let engine = Engine::new(
        plan,
        BatchPolicy {
            max_batch: 16,
            max_wait: std::time::Duration::from_millis(2),
            ..BatchPolicy::default()
        },
    );
    let queries = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[40, 8],
        79,
    );
    let ids: Vec<_> = (0..40)
        .map(|i| {
            engine
                .submit(&queries.as_slice()[i * 8..(i + 1) * 8])
                .expect("submit succeeds")
        })
        .collect();
    // Reference: fake-quantized forward on the quantized model.
    let reference = model.forward(&queries).expect("reference forward");
    for (i, id) in ids.iter().enumerate().rev() {
        let got = engine.wait(*id).expect("request completes");
        let expect = &reference.as_slice()[i * 4..(i + 1) * 4];
        for (a, b) in got.iter().zip(expect) {
            assert!(
                (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                "request {i}: packed {a} vs reference {b}"
            );
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.completed, 40);
    assert!(
        stats.largest_batch > 1,
        "batching never kicked in: {stats:?}"
    );
}

#[test]
fn quantized_gemm_through_hardware_equals_float_reference() {
    // Quantize two real matrices, run them through the bit-level array,
    // and check the scaled integer result equals the float product of the
    // fake-quantized matrices (i.e. the hardware computes exactly what the
    // QAT model promised).
    let m = 6;
    let k = 8;
    let n = 5;
    let a_real = sample_vec(Distribution::HalfGaussian { std: 1.0 }, m * k, 21);
    let w_real = sample_vec(
        Distribution::Gaussian {
            mean: 0.0,
            std: 0.5,
        },
        k * n,
        22,
    );
    let a_dt = DataType::flint(4, false).expect("valid dtype");
    let w_dt = DataType::flint(4, true).expect("valid dtype");
    let (aq, _) = Quantizer::fit(a_dt, &a_real, ClipSearch::default()).expect("fit a");
    let (wq, _) = Quantizer::fit(w_dt, &w_real, ClipSearch::default()).expect("fit w");

    // Encode to hardware codes.
    let flint4 = Flint::new(4).expect("4-bit flint");
    let flint3 = Flint::new(3).expect("3-bit flint");
    let a_codes: Vec<u32> = a_real
        .iter()
        .map(|&x| flint4.quantize(x, aq.scale()))
        .collect();
    let w_codes: Vec<u32> = w_real
        .iter()
        .map(|&x| {
            let mag = flint3.quantize(x.abs(), wq.scale());
            if x < 0.0 {
                mag | 0b1000
            } else {
                mag
            }
        })
        .collect();
    let a_mat = DecodedMatrix::from_codes(m, k, &a_codes, 4, WireType::Flint { signed: false })
        .expect("valid codes");
    let w_mat = DecodedMatrix::from_codes(k, n, &w_codes, 4, WireType::Flint { signed: true })
        .expect("valid codes");
    let (out_int, _) = SystolicArray::new(4, 32).gemm(&a_mat, &w_mat);

    // Float reference over the fake-quantized values.
    let scale = aq.scale() * wq.scale();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += aq.quantize_dequantize(a_real[i * k + p]) as f64
                    * wq.quantize_dequantize(w_real[p * n + j]) as f64;
            }
            let hw = out_int[i * n + j] as f64 * scale as f64;
            assert!(
                (hw - acc).abs() < 1e-3 * (1.0 + acc.abs()),
                "({i},{j}): hw {hw} vs reference {acc}"
            );
        }
    }
}
