//! End-to-end pipeline tests: train → quantize → fine-tune → simulate,
//! spanning every crate in the workspace the way the paper's evaluation
//! does.

use ant::core::mixed::{run_mixed_precision, MixedPrecisionConfig};
use ant::core::select::PrimitiveCombo;
use ant::nn::data::blobs;
use ant::nn::model::deep_mlp;
use ant::nn::qat::{QatHarness, QuantSpec, TypeRatio};
use ant::nn::train::{evaluate, train, TrainConfig};
use ant::sim::design::{simulate, Design, SimConfig};
use ant::sim::report::{summarize, WorkloadComparison};
use ant::sim::workload::{bert_base, resnet18};

#[test]
fn train_quantize_finetune_promote() {
    let data = blobs(800, 16, 8, 0.6, 17);
    let (train_set, test_set) = data.split(0.25);
    let mut model = deep_mlp(16, 8, 24, 4, 18);
    train(
        &mut model,
        &train_set,
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            seed: 19,
        },
    )
    .expect("training succeeds");
    let fp32 = evaluate(&mut model, &test_set).expect("evaluation succeeds");
    assert!(fp32 > 0.8, "fp32 accuracy {fp32}");

    let (calib, _) = train_set.batch(&(0..100).collect::<Vec<_>>());
    let mut harness = QatHarness::new(
        model,
        QuantSpec {
            combo: PrimitiveCombo::IntPotFlint,
            ..QuantSpec::default()
        },
        calib,
        train_set,
        test_set,
        TrainConfig {
            epochs: 2,
            batch_size: 32,
            lr: 0.02,
            momentum: 0.9,
            seed: 20,
        },
    )
    .expect("harness builds");

    // PTQ accuracy must stay far above chance (1/8).
    let ptq = harness.test_accuracy().expect("evaluation succeeds");
    assert!(ptq > 0.5, "4-bit PTQ accuracy {ptq}");

    // Mixed precision must converge to within 2 points of fp32.
    let report = run_mixed_precision(
        &mut harness,
        fp32,
        MixedPrecisionConfig {
            threshold: 0.02,
            max_promotions: None,
        },
    );
    assert!(report.converged, "metric trace {:?}", report.metric_trace);
    let final_acc = *report.metric_trace.last().expect("non-empty trace");
    assert!(fp32 - final_acc <= 0.02 + 1e-9);

    // The type tally covers every quantizable tensor.
    let ratio = TypeRatio::from_reports(harness.reports());
    let total: usize = ratio.counts.iter().map(|(_, c)| c).sum();
    assert_eq!(total, 5 * 2); // 5 dense layers × (weight + activation)
}

#[test]
fn simulator_reproduces_headline_ordering() {
    // One CNN + one BERT workload: ANT-OS must beat every baseline on both
    // cycles and energy, and the geomean summary must be finite and > 1.
    let cfg = SimConfig::default();
    let workloads = [resnet18(4), bert_base(4, "MNLI")];
    let comparisons: Vec<WorkloadComparison> = workloads
        .iter()
        .map(|w| WorkloadComparison::run(w, &cfg).expect("simulation succeeds"))
        .collect();
    for c in &comparisons {
        let ant = c.result(Design::AntOs);
        for d in [
            Design::BitFusion,
            Design::OlAccel,
            Design::BiScaled,
            Design::AdaFloat,
        ] {
            let r = c.result(d);
            assert!(
                r.total_cycles > ant.total_cycles,
                "{}: {} not slower than ANT",
                c.workload,
                d.name()
            );
            assert!(
                r.total_energy.total() > ant.total_energy.total(),
                "{}: {} not more energy than ANT",
                c.workload,
                d.name()
            );
        }
    }
    let summary = summarize(&comparisons);
    for (name, s) in &summary.speedups {
        assert!(s.is_finite() && *s > 1.0, "{name} speedup {s}");
    }
}

#[test]
fn ant_mem_bits_beat_all_baselines_on_bert() {
    let w = bert_base(2, "CoLA");
    let cfg = SimConfig::default();
    let ant = simulate(Design::AntOs, &w, &cfg)
        .expect("simulates")
        .avg_mem_bits(&w);
    for d in [
        Design::BitFusion,
        Design::OlAccel,
        Design::BiScaled,
        Design::AdaFloat,
    ] {
        let bits = simulate(d, &w, &cfg).expect("simulates").avg_mem_bits(&w);
        assert!(ant < bits, "{}: ANT {ant} vs {bits}", d.name());
    }
    // Table I ballpark: ANT ≈ 4.2 average bits.
    assert!(ant < 5.0, "ANT avg bits {ant}");
}

#[test]
fn workload_suite_is_complete_and_consistent() {
    use ant::sim::workload::all_workloads;
    let ws = all_workloads(1);
    assert_eq!(ws.len(), 8);
    for w in &ws {
        assert!(!w.layers.is_empty(), "{}", w.name);
        for layer in &w.layers {
            assert!(
                layer.m > 0 && layer.n > 0 && layer.k > 0,
                "{}/{}",
                w.name,
                layer.name
            );
            assert_eq!(layer.macs(), layer.m * layer.n * layer.k);
        }
    }
}
