//! End-to-end tests for the `antd` serving daemon: a real artifact, a
//! real listening socket on an ephemeral port, real HTTP clients on
//! threads. Covers the serving contract from `docs/serving.md`:
//! concurrent inference through continuous batching, `/healthz`,
//! structurally valid `/metrics`, hot reload generations, 429 + `Retry-
//! After` under forced overload, deadline 504s never hanging, and a
//! clean drain through `POST /shutdown`.

use ant_bench::antc::{run_generate, run_quantize, GenerateConfig, ModelKind, QuantizeConfig};
use ant_bench::antd::{Daemon, DaemonConfig};
use ant_bench::http::{read_response, write_request, ClientResponse};
use ant_bench::json::Json;
use ant_bench::promcheck;
use ant_runtime::BatchPolicy;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Quantizes the untrained reference MLP (8 features, 4 classes) into a
/// temp `.antm` — training is skipped, so this is fast enough to run
/// per test.
fn artifact(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("antd-test-{}-{name}.antm", std::process::id()));
    run_quantize(
        QuantizeConfig {
            epochs: 0,
            ..QuantizeConfig::default()
        },
        &path,
    )
    .expect("quantize test artifact");
    path
}

/// One request/response on a fresh connection.
fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    write_request(
        &mut writer,
        method,
        path,
        body.map(|b| ("application/json", b.as_bytes())),
    )
    .map_err(|e| format!("send: {e}"))?;
    read_response(&mut reader).map_err(|e| format!("read: {e}"))
}

fn infer_body(v: f32) -> String {
    let row: Vec<String> = (0..8).map(|_| format!("{v:.2}")).collect();
    format!("{{\"input\": [{}]}}", row.join(", "))
}

#[test]
fn serves_concurrent_clients_with_metrics_reload_and_drain() {
    let path = artifact("e2e");
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        models: vec![("mlp".to_string(), path.clone())],
        policy: BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            ..BatchPolicy::default()
        },
        request_timeout: Duration::from_secs(30),
        ..DaemonConfig::default()
    })
    .expect("daemon start");
    let addr = daemon.local_addr();

    // Liveness and the model listing.
    let health = call(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body_str(), "ok\n");
    let models = call(addr, "GET", "/v1/models", None).unwrap();
    assert_eq!(models.status, 200);
    let doc = Json::parse(&models.body_str()).unwrap();
    let entry = &doc.get("models").unwrap().as_arr().unwrap()[0];
    assert_eq!(entry.get("name").unwrap().as_str(), Some("mlp"));
    assert_eq!(entry.get("in_features").unwrap().as_f64(), Some(8.0));
    assert_eq!(entry.get("generation").unwrap().as_f64(), Some(1.0));

    // Concurrent clients batch through one engine; every response is a
    // 4-logit row from generation 1.
    let workers: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..5 {
                    let resp = call(
                        addr,
                        "POST",
                        "/v1/models/mlp/infer",
                        Some(&infer_body(0.1 * (t as f32) + 0.01 * (i as f32))),
                    )
                    .unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body_str());
                    let doc = Json::parse(&resp.body_str()).unwrap();
                    assert_eq!(doc.get("output").unwrap().as_arr().unwrap().len(), 4);
                    assert_eq!(doc.get("generation").unwrap().as_f64(), Some(1.0));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Bad inputs are client errors, not 500s or hangs.
    let bad = call(addr, "POST", "/v1/models/mlp/infer", Some("not json")).unwrap();
    assert_eq!(bad.status, 400);
    let wrong_shape = call(
        addr,
        "POST",
        "/v1/models/mlp/infer",
        Some("{\"input\": [1, 2]}"),
    )
    .unwrap();
    assert_eq!(wrong_shape.status, 400, "{}", wrong_shape.body_str());
    let missing = call(addr, "POST", "/v1/models/nope/infer", Some("[1]")).unwrap();
    assert_eq!(missing.status, 404);
    assert_eq!(call(addr, "GET", "/nope", None).unwrap().status, 404);
    assert_eq!(
        call(addr, "GET", "/v1/models/mlp/infer", None)
            .unwrap()
            .status,
        405
    );

    // Hot reload: generation bumps, serving continues.
    let reload = call(addr, "POST", "/v1/models/mlp/reload", None).unwrap();
    assert_eq!(reload.status, 200, "{}", reload.body_str());
    let doc = Json::parse(&reload.body_str()).unwrap();
    assert_eq!(doc.get("generation").unwrap().as_f64(), Some(2.0));
    let after = call(addr, "POST", "/v1/models/mlp/infer", Some(&infer_body(0.3))).unwrap();
    assert_eq!(after.status, 200);
    let doc = Json::parse(&after.body_str()).unwrap();
    assert_eq!(doc.get("generation").unwrap().as_f64(), Some(2.0));

    // /metrics parses with the structural validator and carries both
    // daemon-level and engine-level series.
    let metrics = call(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let samples = promcheck::validate(&metrics.body_str()).expect("valid exposition");
    let count = |name: &str, labels: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| s.value)
    };
    assert!(
        count("antd_http_responses_total", "{code=\"200\"}").unwrap() >= 40.0,
        "under-counted 200s"
    );
    assert!(
        count("antd_reloads_total", "").unwrap() >= 1.0,
        "reload not counted"
    );
    assert!(
        count("antd_request_time_ns_count", "").unwrap() >= 40.0,
        "request histogram missing"
    );

    // Clean drain through the endpoint: the daemon stops serving and
    // join returns (bounded by the test harness timeout). The drain is
    // initiated over a keep-alive connection so the draining /healthz
    // answer — 503 *with* Retry-After, same contract as overload
    // shedding — is observable after /shutdown (fresh connections are
    // refused once the accept loop stops).
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_request(&mut writer, "POST", "/shutdown", None).unwrap();
    let bye = read_response(&mut reader).unwrap();
    assert_eq!(bye.status, 200);
    assert!(daemon.is_draining());
    write_request(&mut writer, "GET", "/healthz", None).unwrap();
    let draining = read_response(&mut reader).unwrap();
    assert_eq!(draining.status, 503, "{}", draining.body_str());
    assert_eq!(
        draining.header("retry-after"),
        Some("1"),
        "draining 503 must carry Retry-After"
    );
    daemon.join();
    // The listener is gone: new connections are refused (or reset).
    assert!(call(addr, "GET", "/healthz", None).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn overload_sheds_with_429_and_retry_after_then_recovers() {
    let path = artifact("overload");
    // A tiny queue behind an unreachable batch size: the engine gathers
    // for 500ms while requests pile up, so concurrent clients overflow
    // the 2-deep queue deterministically.
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        models: vec![("mlp".to_string(), path.clone())],
        policy: BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(500),
            max_queue: 2,
            ..BatchPolicy::default()
        },
        request_timeout: Duration::from_secs(30),
        ..DaemonConfig::default()
    })
    .expect("daemon start");
    let addr = daemon.local_addr();

    // All clients connect first, then fire together.
    let clients = 12;
    let barrier = Arc::new(Barrier::new(clients));
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                barrier.wait();
                let body = infer_body(0.25);
                write_request(
                    &mut writer,
                    "POST",
                    "/v1/models/mlp/infer",
                    Some(("application/json", body.as_bytes())),
                )
                .unwrap();
                let resp = read_response(&mut reader).unwrap();
                let retry_after = resp.header("retry-after").map(|v| v.to_string());
                (resp.status, retry_after)
            })
        })
        .collect();
    let outcomes: Vec<(u16, Option<String>)> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();
    let ok = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let shed: Vec<_> = outcomes.iter().filter(|(s, _)| *s == 429).collect();
    assert!(ok >= 1, "no request succeeded: {outcomes:?}");
    assert!(
        !shed.is_empty(),
        "queue of 2 never overflowed across {clients} concurrent clients: {outcomes:?}"
    );
    assert_eq!(
        ok + shed.len(),
        clients,
        "unexpected statuses: {outcomes:?}"
    );
    for (_, retry_after) in &shed {
        assert_eq!(retry_after.as_deref(), Some("1"), "429 without Retry-After");
    }

    // Recovery: once the stuck batch drains, admission reopens.
    let resp = call(addr, "POST", "/v1/models/mlp/infer", Some(&infer_body(0.5))).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    daemon.shutdown();
    daemon.join();
    std::fs::remove_file(&path).ok();
}

/// The decode-smoke path end to end: quantize a causal decoder, serve
/// it, and stream tokens through `POST /v1/models/{name}/generate` with
/// the same chunked client `antc generate` (and the CI decode-smoke
/// job) uses. A non-decoder model on the same daemon pins the 400
/// contract, and a clean drain proves no generate session leaks KV.
#[test]
fn generate_streams_tokens_and_drains_cleanly() {
    let dec_path =
        std::env::temp_dir().join(format!("antd-test-{}-decoder.antm", std::process::id()));
    run_quantize(
        QuantizeConfig {
            model: ModelKind::Decoder,
            ..QuantizeConfig::default()
        },
        &dec_path,
    )
    .expect("quantize decoder artifact");
    let mlp_path = artifact("gen-mlp");
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        models: vec![
            ("dec".to_string(), dec_path.clone()),
            ("mlp".to_string(), mlp_path.clone()),
        ],
        policy: BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            ..BatchPolicy::default()
        },
        request_timeout: Duration::from_secs(30),
        ..DaemonConfig::default()
    })
    .expect("daemon start");
    let addr = daemon.local_addr();

    // The listing advertises the decode surface: a decoder carries its
    // synthetic vocabulary (token dim), the MLP carries none.
    let models = call(addr, "GET", "/v1/models", None).unwrap();
    let doc = Json::parse(&models.body_str()).unwrap();
    for entry in doc.get("models").unwrap().as_arr().unwrap() {
        let token_dim = entry.get("token_dim").unwrap().as_f64();
        match entry.get("name").unwrap().as_str().unwrap() {
            "dec" => assert_eq!(token_dim, Some(16.0)),
            _ => assert_eq!(token_dim, None),
        }
    }

    // Stream through the same client `antc generate` uses: it verifies
    // chunked framing, per-line JSON, and the done-line token count.
    let report = run_generate(GenerateConfig {
        addr: addr.to_string(),
        model: "dec".to_string(),
        prompt: vec![1, 2, 3],
        max_tokens: 8,
    })
    .expect("generate stream");
    assert!(
        report.contains("generated 8 token(s) from 3 prompt token(s)"),
        "unexpected generate report:\n{report}"
    );
    assert_eq!(report.matches("token[").count(), 8, "{report}");

    // Determinism: greedy argmax over a fixed artifact is repeatable.
    let again = run_generate(GenerateConfig {
        addr: addr.to_string(),
        model: "dec".to_string(),
        prompt: vec![1, 2, 3],
        max_tokens: 8,
    })
    .expect("repeat generate stream");
    assert_eq!(report, again, "greedy decode drifted between requests");

    // Concurrent sessions coalesce through the engine's decode phase.
    let workers: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                run_generate(GenerateConfig {
                    addr: addr.to_string(),
                    model: "dec".to_string(),
                    prompt: vec![t, t + 1],
                    max_tokens: 6,
                })
                .expect("concurrent generate")
            })
        })
        .collect();
    for w in workers {
        let report = w.join().unwrap();
        assert!(report.contains("generated 6 token(s)"), "{report}");
    }

    // Error contract: non-decoder model 400, bad bodies 400, wrong
    // method 405, unknown model 404 — all buffered HTTP, never a stream.
    let wrong_kind = call(
        addr,
        "POST",
        "/v1/models/mlp/generate",
        Some("{\"prompt\":[1]}"),
    )
    .unwrap();
    assert_eq!(wrong_kind.status, 400, "{}", wrong_kind.body_str());
    assert!(wrong_kind.body_str().contains("not a causal decoder"));
    let empty = call(
        addr,
        "POST",
        "/v1/models/dec/generate",
        Some("{\"prompt\":[]}"),
    )
    .unwrap();
    assert_eq!(empty.status, 400);
    let oob = call(
        addr,
        "POST",
        "/v1/models/dec/generate",
        Some("{\"prompt\":[1],\"max_tokens\":9999}"),
    )
    .unwrap();
    assert_eq!(oob.status, 400, "{}", oob.body_str());
    assert_eq!(
        call(addr, "GET", "/v1/models/dec/generate", None)
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        call(
            addr,
            "POST",
            "/v1/models/nope/generate",
            Some("{\"prompt\":[1]}")
        )
        .unwrap()
        .status,
        404
    );

    // Every generate session must have been released: the KV gauge and
    // session count come back to zero before the drain.
    let metrics = call(addr, "GET", "/metrics", None).unwrap();
    let samples = promcheck::validate(&metrics.body_str()).expect("valid exposition");
    #[cfg(feature = "obs")]
    for gauge in ["ant_kv_cache_bytes", "ant_kv_sessions"] {
        let s = samples
            .iter()
            .find(|s| s.name == gauge)
            .unwrap_or_else(|| panic!("{gauge} missing from /metrics"));
        assert_eq!(s.value, 0.0, "{gauge} leaked after generate streams");
    }
    #[cfg(not(feature = "obs"))]
    let _ = samples;

    daemon.shutdown();
    daemon.join();
    std::fs::remove_file(&dec_path).ok();
    std::fs::remove_file(&mlp_path).ok();
}

#[test]
fn request_deadline_maps_to_504_not_a_hang() {
    let path = artifact("deadline");
    // The engine holds its gather window open for 2s; a 50ms request
    // deadline expires first and must surface as 504.
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        models: vec![("mlp".to_string(), path.clone())],
        policy: BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(2_000),
            max_queue: 64,
            ..BatchPolicy::default()
        },
        request_timeout: Duration::from_millis(50),
        ..DaemonConfig::default()
    })
    .expect("daemon start");
    let addr = daemon.local_addr();
    let resp = call(addr, "POST", "/v1/models/mlp/infer", Some(&infer_body(0.1))).unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body_str());
    daemon.shutdown();
    daemon.join();
    std::fs::remove_file(&path).ok();
}
