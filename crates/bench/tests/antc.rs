//! Round-trip tests for the `antc` subcommands: quantize → inspect →
//! serve on a real temp-file artifact, plus argv validation. The binary
//! in `src/bin/antc.rs` is a thin adapter over the same `run` entry
//! point, so these cover the CLI's behaviour end to end.

use ant_bench::antc::{parse_combo, run, CliError, ModelKind};
use ant_bench::json::Json;
use ant_core::select::PrimitiveCombo;
use ant_runtime::{probe, ModelArtifact};
use std::path::PathBuf;

fn temp_artifact(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("antc-test-{}-{name}.antm", std::process::id()));
    p
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn quantize_inspect_serve_roundtrip() {
    let path = temp_artifact("roundtrip");
    let path_str = path.to_str().unwrap();

    let report = run(&args(&[
        "quantize", "--out", path_str, "--model", "mlp", "--epochs", "2", "--seed", "5",
    ]))
    .unwrap();
    assert!(report.contains("combo IP-F, 4 bits"), "{report}");
    assert!(report.contains("coverage: 1.00"), "{report}");
    assert!(
        report.contains("memoized selection fingerprint"),
        "{report}"
    );
    assert!(path.exists());

    let inspect = run(&args(&["inspect", path_str])).unwrap();
    assert!(inspect.contains(".antm version 2"), "{inspect}");
    assert!(inspect.contains("section MODL"), "{inspect}");
    assert!(inspect.contains("section PANL"), "{inspect}");
    assert!(inspect.contains("section CACH"), "{inspect}");
    assert!(inspect.contains("64-byte aligned"), "{inspect}");
    assert!(inspect.contains("storage:"), "{inspect}");
    assert!(inspect.contains("on-load weight-byte copies:"), "{inspect}");
    if cfg!(all(unix, target_endian = "little")) {
        assert!(inspect.contains("mmap zero-copy"), "{inspect}");
    }
    assert!(inspect.contains("dense"), "{inspect}");
    // The coverage line states the documented denominator semantics.
    assert!(
        inspect.contains("5 of 5 plan layers packed-executable"),
        "{inspect}"
    );
    assert!(
        inspect.contains("fallback layers count toward the denominator"),
        "{inspect}"
    );

    let dump = temp_artifact("roundtrip-metrics");
    let serve = run(&args(&[
        "serve",
        path_str,
        "--requests",
        "48",
        "--batch",
        "8",
        "--metrics-dump",
        dump.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(
        serve.contains("served 48 request(s), all verified"),
        "{serve}"
    );
    assert!(serve.contains("coverage: 1.00"), "{serve}");
    assert!(serve.contains("metrics: wrote"), "{serve}");
    let prom = std::fs::read_to_string(&dump).unwrap();
    #[cfg(feature = "obs")]
    {
        // The serve loop drives the engine, so its counters must be in
        // the dump (the registry is process-wide; other tests may add
        // more series, never fewer).
        assert!(
            prom.contains("# TYPE ant_engine_requests_total counter"),
            "{prom}"
        );
        assert!(prom.contains("ant_forward_time_ns_bucket"), "{prom}");
    }
    #[cfg(not(feature = "obs"))]
    let _ = prom;

    std::fs::remove_file(&dump).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn quantize_supports_bits_and_combo_overrides() {
    let path = temp_artifact("int8");
    let path_str = path.to_str().unwrap();
    let report = run(&args(&[
        "quantize", "--out", path_str, "--model", "mlp", "--epochs", "1", "--bits", "8", "--combo",
        "int",
    ]))
    .unwrap();
    assert!(report.contains("combo Int, 8 bits"), "{report}");
    let inspect = run(&args(&["inspect", path_str])).unwrap();
    assert!(inspect.contains("int8s"), "{inspect}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn usage_errors_are_structured() {
    assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    assert!(matches!(
        run(&args(&["quantize", "--model", "mlp"])),
        Err(CliError::Usage(_)) // missing --out
    ));
    assert!(matches!(
        run(&args(&[
            "quantize",
            "--out",
            "/tmp/x.antm",
            "--model",
            "resnet"
        ])),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(run(&args(&["inspect"])), Err(CliError::Usage(_))));
    assert!(matches!(
        run(&args(&["frobnicate"])),
        Err(CliError::Usage(_))
    ));
    let help = run(&args(&["--help"])).unwrap();
    assert!(help.contains("USAGE"));
}

#[test]
fn inspect_and_serve_report_artifact_errors_not_panics() {
    // Nonexistent file.
    assert!(matches!(
        run(&args(&["inspect", "/tmp/definitely-missing.antm"])),
        Err(CliError::Artifact(_))
    ));
    // Not an artifact.
    let path = temp_artifact("garbage");
    std::fs::write(&path, b"not an artifact at all").unwrap();
    assert!(matches!(
        run(&args(&["inspect", path.to_str().unwrap()])),
        Err(CliError::Artifact(_))
    ));
    assert!(matches!(
        run(&args(&["serve", path.to_str().unwrap()])),
        Err(CliError::Artifact(_))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn model_and_combo_parsers_cover_all_labels() {
    assert_eq!(ModelKind::parse("mlp").unwrap(), ModelKind::Mlp);
    assert_eq!(ModelKind::parse("cnn").unwrap(), ModelKind::Cnn);
    assert_eq!(
        ModelKind::parse("transformer").unwrap(),
        ModelKind::Transformer
    );
    assert!(ModelKind::parse("bert").is_err());
    assert_eq!(parse_combo("int").unwrap(), PrimitiveCombo::Int);
    assert_eq!(parse_combo("ip").unwrap(), PrimitiveCombo::IntPot);
    assert_eq!(parse_combo("fip").unwrap(), PrimitiveCombo::FloatIntPot);
    assert_eq!(parse_combo("IPF").unwrap(), PrimitiveCombo::IntPotFlint);
    assert_eq!(
        parse_combo("fipf").unwrap(),
        PrimitiveCombo::FloatIntPotFlint
    );
    assert!(parse_combo("xyz").is_err());
}

#[test]
fn bench_quick_writes_valid_json_and_reports_no_regression() {
    let out = temp_artifact("bench-json");
    let report = run(&args(&[
        "bench",
        "--quick",
        "--seed",
        "3",
        "--out",
        out.to_str().unwrap(),
    ]))
    .unwrap();
    // The human table names every fixed workload and the kernel ratio.
    for needle in ["mlp", "cnn", "attention", "dense GEMM"] {
        assert!(report.contains(needle), "report missing {needle}: {report}");
    }
    assert!(
        !report.contains("REGRESSION"),
        "regression marker in: {report}"
    );
    // The JSON artifact round-trips through the in-tree parser and has
    // the stable v2 schema: exact key set per workload, not substrings.
    let doc = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("ant-bench/runtime-v2")
    );
    assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("regression").and_then(Json::as_bool), Some(false));
    assert!(doc.get("gemm_speedup_i8_vs_i32").unwrap().as_f64().unwrap() > 0.0);
    let workloads = doc.get("workloads").and_then(Json::as_arr).unwrap();
    let names: Vec<_> = workloads
        .iter()
        .map(|w| w.get("name").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(names, ["mlp", "cnn", "attention"]);
    for w in workloads {
        assert_eq!(
            w.keys(),
            vec![
                "name",
                "features",
                "batched_ops_per_sec",
                "engine_ops_per_sec",
                "p50_us",
                "p90_us",
                "p99_us",
                "p999_us",
                "allocs_per_request",
                "load_us_v1",
                "load_us_v2",
                "load_speedup_v2",
                "mapped_zero_copy",
                "mapped_private_dirty_kb",
                "stages",
            ],
            "workload key set drifted from the runtime-v2 schema"
        );
        // Quantile ordering is free validation of the histogram path.
        let q = |k: &str| w.get(k).and_then(Json::as_f64).unwrap();
        assert!(q("p50_us") <= q("p90_us") && q("p90_us") <= q("p99_us"));
        assert!(q("p99_us") <= q("p999_us"), "p999 below p99");
        // Library test processes do not install the counting allocator,
        // so allocation counts must be honestly reported as unknown.
        assert!(w.get("allocs_per_request").unwrap().is_null());
        if cfg!(all(unix, target_endian = "little")) {
            assert_eq!(
                w.get("mapped_zero_copy").and_then(Json::as_bool),
                Some(true)
            );
        }
        // Shared-RSS metric: measured (a number) on linux, honestly
        // null — not a fake 0 — where smaps_rollup does not exist.
        let dirty = w.get("mapped_private_dirty_kb").unwrap();
        if cfg!(target_os = "linux") {
            assert!(
                dirty.as_f64().is_some(),
                "dirty-kB should be measured: {dirty:?}"
            );
        } else {
            assert!(
                dirty.is_null(),
                "dirty-kB must be null off-linux: {dirty:?}"
            );
        }
        let stages = w.get("stages").unwrap();
        #[cfg(feature = "obs")]
        {
            let layers = stages.get("layers").and_then(Json::as_arr).unwrap();
            assert!(!layers.is_empty(), "obs build must report layer stages");
            for l in layers {
                assert_eq!(
                    l.keys(),
                    vec!["kind", "calls", "total_us", "share", "p50_us", "p99_us", "gops", "gbps"]
                );
            }
            let coverage = stages
                .get("coverage_of_forward")
                .and_then(Json::as_f64)
                .unwrap();
            assert!(
                coverage > 0.5 && coverage < 1.2,
                "layer-stage coverage implausible: {coverage}"
            );
            assert!(
                !stages.get("engine").unwrap().is_null(),
                "engine wave ran, stage latencies must be present"
            );
        }
        #[cfg(not(feature = "obs"))]
        assert!(
            stages.is_null(),
            "no hooks compiled in, stages must be null"
        );
    }
    std::fs::remove_file(&out).ok();
}

#[test]
fn bench_baseline_guard_flags_regressions_and_skips_missing() {
    let base = temp_artifact("bench-baseline");
    let out = temp_artifact("bench-baseline-out");
    // A hand-crafted baseline: "mlp" with absurdly high throughput (any
    // real run regresses against it), "cnn" with near-zero (any real
    // run clears it), and no "attention" entry at all.
    std::fs::write(
        &base,
        "{\n  \"schema\": \"ant-bench/runtime-v2\",\n  \"workloads\": [\n    \
         {\"name\": \"mlp\", \"batched_ops_per_sec\": 1e15},\n    \
         {\"name\": \"cnn\", \"batched_ops_per_sec\": 0.001}\n  ]\n}\n",
    )
    .unwrap();
    let report = run(&args(&[
        "bench",
        "--quick",
        "--seed",
        "3",
        "--baseline",
        base.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(report.contains("perf guard vs"), "{report}");
    assert!(
        report.contains("mlp") && report.contains("REGRESSED"),
        "{report}"
    );
    assert!(report.contains("cnn") && report.contains("ok"), "{report}");
    assert!(
        report.contains("attention: no baseline entry, skipped"),
        "{report}"
    );
    // The guard verdict lands in both the human report and the JSON.
    assert!(report.contains("REGRESSION"), "{report}");
    let doc = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(doc.get("regression").and_then(Json::as_bool), Some(true));
    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&out).ok();
}

#[test]
fn stats_reports_per_layer_breakdown_and_exports() {
    let path = temp_artifact("stats");
    let path_str = path.to_str().unwrap();
    run(&args(&[
        "quantize", "--out", path_str, "--model", "mlp", "--epochs", "1", "--seed", "9",
    ]))
    .unwrap();
    let prom = temp_artifact("stats-prom");
    let trace = temp_artifact("stats-trace");
    let report = run(&args(&[
        "stats",
        path_str,
        "--requests",
        "64",
        "--batch",
        "8",
        "--prom",
        prom.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]))
    .unwrap();
    // Both exporters write regardless of feature state (a hook-less
    // runtime just exports an empty registry / span set).
    assert!(report.contains("Prometheus text exposition"), "{report}");
    assert!(report.contains("chrome://tracing JSON"), "{report}");
    let trace_doc = Json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = trace_doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    #[cfg(feature = "obs")]
    {
        // The acceptance budget: per-layer-kind timing sums to within
        // 10% of the end-to-end forward time.
        assert!(report.contains("layer kind"), "{report}");
        let tail = report
            .split("per-layer timing covers ")
            .nth(1)
            .unwrap_or_else(|| panic!("no coverage line in: {report}"));
        let pct: f64 = tail.split('%').next().unwrap().trim().parse().unwrap();
        assert!(
            (90.0..=110.0).contains(&pct),
            "stage timing covers {pct}% of forward; budget is within 10%"
        );
        assert!(
            std::fs::read_to_string(&prom)
                .unwrap()
                .contains("ant_layer_time_ns_bucket"),
            "stats prom export lacks layer histograms"
        );
        assert!(!events.is_empty(), "obs build must retain span events");
    }
    #[cfg(not(feature = "obs"))]
    {
        assert!(report.contains("no telemetry recorded"), "{report}");
        let _ = events;
    }
    std::fs::remove_file(&prom).ok();
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&path).ok();
}

fn quantized_artifact(seed: u64) -> ModelArtifact {
    use ant_nn::model::mlp;
    use ant_nn::qat::{quantize_model, QuantSpec};
    use ant_tensor::dist::{sample_tensor, Distribution};
    let mut model = mlp(8, 4, seed);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[64, 8],
        seed.wrapping_add(1),
    );
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    ModelArtifact::from_model(&model).unwrap()
}

#[test]
fn migrate_upgrades_v1_in_place_bit_identically() {
    let path = temp_artifact("migrate");
    let path_str = path.to_str().unwrap();
    let artifact = quantized_artifact(23);
    artifact.save_v1_path(&path).unwrap();
    assert_eq!(
        probe(&std::fs::read(&path).unwrap()[..]).unwrap().version,
        1
    );

    let report = run(&args(&["migrate", path_str])).unwrap();
    assert!(report.contains("v1 -> v2"), "{report}");

    // The migrated file is exactly what a direct v2 save would produce,
    // and round-trips to an identical artifact.
    let migrated = std::fs::read(&path).unwrap();
    assert_eq!(probe(&migrated[..]).unwrap().version, 2);
    let mut direct = Vec::new();
    artifact.save(&mut direct).unwrap();
    assert_eq!(
        migrated, direct,
        "migrated bytes differ from a direct v2 save"
    );
    assert_eq!(ModelArtifact::load(&migrated[..]).unwrap(), artifact);

    // Migrating an already-current artifact is byte-idempotent.
    let report = run(&args(&["migrate", path_str])).unwrap();
    assert!(report.contains("v2 -> v2"), "{report}");
    assert_eq!(std::fs::read(&path).unwrap(), migrated);
    std::fs::remove_file(&path).ok();
}

#[test]
fn verify_reports_ok_and_catches_what_lazy_load_skips() {
    let path = temp_artifact("verify");
    let path_str = path.to_str().unwrap();
    quantized_artifact(29).save_path(&path).unwrap();

    let report = run(&args(&["verify", path_str])).unwrap();
    assert!(report.contains("OK"), "{report}");
    assert!(report.contains("PANL images match"), "{report}");

    // Corrupt the tail of the file (PANL/CACH payload territory): the
    // lazy v2 load may not notice, verify must.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        run(&args(&["verify", path_str])),
        Err(CliError::Artifact(_))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn bench_rejects_unknown_flags() {
    assert!(matches!(
        run(&args(&["bench", "--wat"])),
        Err(CliError::Usage(_))
    ));
}
