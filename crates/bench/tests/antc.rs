//! Round-trip tests for the `antc` subcommands: quantize → inspect →
//! serve on a real temp-file artifact, plus argv validation. The binary
//! in `src/bin/antc.rs` is a thin adapter over the same `run` entry
//! point, so these cover the CLI's behaviour end to end.

use ant_bench::antc::{parse_combo, run, CliError, ModelKind};
use ant_core::select::PrimitiveCombo;
use ant_runtime::{probe, ModelArtifact};
use std::path::PathBuf;

fn temp_artifact(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("antc-test-{}-{name}.antm", std::process::id()));
    p
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn quantize_inspect_serve_roundtrip() {
    let path = temp_artifact("roundtrip");
    let path_str = path.to_str().unwrap();

    let report = run(&args(&[
        "quantize", "--out", path_str, "--model", "mlp", "--epochs", "2", "--seed", "5",
    ]))
    .unwrap();
    assert!(report.contains("combo IP-F, 4 bits"), "{report}");
    assert!(report.contains("coverage: 1.00"), "{report}");
    assert!(
        report.contains("memoized selection fingerprint"),
        "{report}"
    );
    assert!(path.exists());

    let inspect = run(&args(&["inspect", path_str])).unwrap();
    assert!(inspect.contains(".antm version 2"), "{inspect}");
    assert!(inspect.contains("section MODL"), "{inspect}");
    assert!(inspect.contains("section PANL"), "{inspect}");
    assert!(inspect.contains("section CACH"), "{inspect}");
    assert!(inspect.contains("64-byte aligned"), "{inspect}");
    assert!(inspect.contains("storage:"), "{inspect}");
    assert!(inspect.contains("on-load weight-byte copies:"), "{inspect}");
    if cfg!(all(unix, target_endian = "little")) {
        assert!(inspect.contains("mmap zero-copy"), "{inspect}");
    }
    assert!(inspect.contains("dense"), "{inspect}");
    // The coverage line states the documented denominator semantics.
    assert!(
        inspect.contains("5 of 5 plan layers packed-executable"),
        "{inspect}"
    );
    assert!(
        inspect.contains("fallback layers count toward the denominator"),
        "{inspect}"
    );

    let serve = run(&args(&[
        "serve",
        path_str,
        "--requests",
        "48",
        "--batch",
        "8",
    ]))
    .unwrap();
    assert!(
        serve.contains("served 48 request(s), all verified"),
        "{serve}"
    );
    assert!(serve.contains("coverage: 1.00"), "{serve}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn quantize_supports_bits_and_combo_overrides() {
    let path = temp_artifact("int8");
    let path_str = path.to_str().unwrap();
    let report = run(&args(&[
        "quantize", "--out", path_str, "--model", "mlp", "--epochs", "1", "--bits", "8", "--combo",
        "int",
    ]))
    .unwrap();
    assert!(report.contains("combo Int, 8 bits"), "{report}");
    let inspect = run(&args(&["inspect", path_str])).unwrap();
    assert!(inspect.contains("int8s"), "{inspect}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn usage_errors_are_structured() {
    assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    assert!(matches!(
        run(&args(&["quantize", "--model", "mlp"])),
        Err(CliError::Usage(_)) // missing --out
    ));
    assert!(matches!(
        run(&args(&[
            "quantize",
            "--out",
            "/tmp/x.antm",
            "--model",
            "resnet"
        ])),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(run(&args(&["inspect"])), Err(CliError::Usage(_))));
    assert!(matches!(
        run(&args(&["frobnicate"])),
        Err(CliError::Usage(_))
    ));
    let help = run(&args(&["--help"])).unwrap();
    assert!(help.contains("USAGE"));
}

#[test]
fn inspect_and_serve_report_artifact_errors_not_panics() {
    // Nonexistent file.
    assert!(matches!(
        run(&args(&["inspect", "/tmp/definitely-missing.antm"])),
        Err(CliError::Artifact(_))
    ));
    // Not an artifact.
    let path = temp_artifact("garbage");
    std::fs::write(&path, b"not an artifact at all").unwrap();
    assert!(matches!(
        run(&args(&["inspect", path.to_str().unwrap()])),
        Err(CliError::Artifact(_))
    ));
    assert!(matches!(
        run(&args(&["serve", path.to_str().unwrap()])),
        Err(CliError::Artifact(_))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn model_and_combo_parsers_cover_all_labels() {
    assert_eq!(ModelKind::parse("mlp").unwrap(), ModelKind::Mlp);
    assert_eq!(ModelKind::parse("cnn").unwrap(), ModelKind::Cnn);
    assert_eq!(
        ModelKind::parse("transformer").unwrap(),
        ModelKind::Transformer
    );
    assert!(ModelKind::parse("bert").is_err());
    assert_eq!(parse_combo("int").unwrap(), PrimitiveCombo::Int);
    assert_eq!(parse_combo("ip").unwrap(), PrimitiveCombo::IntPot);
    assert_eq!(parse_combo("fip").unwrap(), PrimitiveCombo::FloatIntPot);
    assert_eq!(parse_combo("IPF").unwrap(), PrimitiveCombo::IntPotFlint);
    assert_eq!(
        parse_combo("fipf").unwrap(),
        PrimitiveCombo::FloatIntPotFlint
    );
    assert!(parse_combo("xyz").is_err());
}

#[test]
fn bench_quick_writes_valid_json_and_reports_no_regression() {
    let out = temp_artifact("bench-json");
    let report = run(&args(&[
        "bench",
        "--quick",
        "--seed",
        "3",
        "--out",
        out.to_str().unwrap(),
    ]))
    .unwrap();
    // The human table names every fixed workload and the kernel ratio.
    for needle in ["mlp", "cnn", "attention", "dense GEMM"] {
        assert!(report.contains(needle), "report missing {needle}: {report}");
    }
    assert!(
        !report.contains("REGRESSION"),
        "regression marker in: {report}"
    );
    // The JSON artifact has the stable schema and all three workloads.
    let json = std::fs::read_to_string(&out).unwrap();
    assert!(json.contains("\"schema\": \"ant-bench/runtime-v1\""));
    assert!(json.contains("\"quick\": true"));
    assert!(json.contains("\"regression\": false"));
    for name in ["\"mlp\"", "\"cnn\"", "\"attention\""] {
        assert!(json.contains(name), "json missing {name}: {json}");
    }
    // Library test processes do not install the counting allocator, so
    // allocation counts must be honestly reported as unknown, not 0.
    assert!(json.contains("\"allocs_per_request\": null"));
    // v1-vs-v2 load-path metrics ride along per workload.
    assert!(json.contains("\"load_us_v1\""), "{json}");
    assert!(json.contains("\"load_us_v2\""), "{json}");
    assert!(json.contains("\"load_speedup_v2\""), "{json}");
    if cfg!(all(unix, target_endian = "little")) {
        assert!(json.contains("\"mapped_zero_copy\": true"), "{json}");
    }
    // Shared-RSS metric: on linux the mapping must stay clean (0 kB of
    // private-dirty weight pages); elsewhere it is honestly null.
    if cfg!(target_os = "linux") {
        assert!(json.contains("\"mapped_private_dirty_kb\": 0"), "{json}");
    } else {
        assert!(json.contains("\"mapped_private_dirty_kb\": null"), "{json}");
    }
    std::fs::remove_file(&out).ok();
}

fn quantized_artifact(seed: u64) -> ModelArtifact {
    use ant_nn::model::mlp;
    use ant_nn::qat::{quantize_model, QuantSpec};
    use ant_tensor::dist::{sample_tensor, Distribution};
    let mut model = mlp(8, 4, seed);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[64, 8],
        seed.wrapping_add(1),
    );
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    ModelArtifact::from_model(&model).unwrap()
}

#[test]
fn migrate_upgrades_v1_in_place_bit_identically() {
    let path = temp_artifact("migrate");
    let path_str = path.to_str().unwrap();
    let artifact = quantized_artifact(23);
    artifact.save_v1_path(&path).unwrap();
    assert_eq!(
        probe(&std::fs::read(&path).unwrap()[..]).unwrap().version,
        1
    );

    let report = run(&args(&["migrate", path_str])).unwrap();
    assert!(report.contains("v1 -> v2"), "{report}");

    // The migrated file is exactly what a direct v2 save would produce,
    // and round-trips to an identical artifact.
    let migrated = std::fs::read(&path).unwrap();
    assert_eq!(probe(&migrated[..]).unwrap().version, 2);
    let mut direct = Vec::new();
    artifact.save(&mut direct).unwrap();
    assert_eq!(
        migrated, direct,
        "migrated bytes differ from a direct v2 save"
    );
    assert_eq!(ModelArtifact::load(&migrated[..]).unwrap(), artifact);

    // Migrating an already-current artifact is byte-idempotent.
    let report = run(&args(&["migrate", path_str])).unwrap();
    assert!(report.contains("v2 -> v2"), "{report}");
    assert_eq!(std::fs::read(&path).unwrap(), migrated);
    std::fs::remove_file(&path).ok();
}

#[test]
fn verify_reports_ok_and_catches_what_lazy_load_skips() {
    let path = temp_artifact("verify");
    let path_str = path.to_str().unwrap();
    quantized_artifact(29).save_path(&path).unwrap();

    let report = run(&args(&["verify", path_str])).unwrap();
    assert!(report.contains("OK"), "{report}");
    assert!(report.contains("PANL images match"), "{report}");

    // Corrupt the tail of the file (PANL/CACH payload territory): the
    // lazy v2 load may not notice, verify must.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        run(&args(&["verify", path_str])),
        Err(CliError::Artifact(_))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn bench_rejects_unknown_flags() {
    assert!(matches!(
        run(&args(&["bench", "--wat"])),
        Err(CliError::Usage(_))
    ));
}
