//! Exporter format contracts: the Prometheus text exposition and the
//! chrome://tracing JSON are parsed structurally, not substring-matched.
//!
//! A deterministic registry is rendered and compared byte-for-byte
//! against a checked-in golden file (`golden/metrics.prom`), then both
//! that exposition and — in obs builds — the *live* process registry
//! after real forward traffic are run through a small Prometheus
//! parser: `# HELP`/`# TYPE` exactly once per family and before its
//! first sample, no duplicate series, cumulative histogram buckets that
//! end at `_count`. The chrome trace is parsed with the in-tree JSON
//! parser and checked event by event.

use ant_bench::json::Json;
use ant_bench::promcheck::{validate, Sample};
use ant_obs::export::{chrome_trace, prometheus_text};
use ant_obs::{Registry, SpanEvent};

/// A fixed registry: every value type, labeled and unlabeled series,
/// and a label value that needs escaping.
fn sample_registry() -> Registry {
    let r = Registry::new();
    r.counter("ant_requests_total", "Requests served").add(1234);
    r.gauge("ant_queue_depth", "Queued requests").set(-3);
    let h = r.histogram("ant_latency_ns", "Request latency");
    for v in [1, 5, 100, 3_000, 100_000, 100_000] {
        h.record(v);
    }
    for (kind, n) in [("packed_linear", 21), ("relu", 7), ("quo\"ted", 1)] {
        r.counter_with("ant_layer_calls_total", "kind", kind, "Per-kind calls")
            .add(n);
    }
    let hl = r.histogram_with(
        "ant_layer_time_ns",
        "kind",
        "packed_linear",
        "Per-kind time",
    );
    hl.record(50);
    hl.record(900);
    r
}

/// Panicking wrapper over the shared structural validator
/// (`ant_bench::promcheck`) — the same parser `antc loadgen
/// --check-metrics` and the antd smoke job run against a live daemon.
fn validate_prometheus(text: &str) -> Vec<Sample> {
    validate(text).expect("structural violation in exposition")
}

#[test]
fn golden_prometheus_exposition_is_stable() {
    let text = prometheus_text(&sample_registry().snapshot());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom"),
            &text,
        )
        .unwrap();
        return;
    }
    assert_eq!(
        text,
        include_str!("golden/metrics.prom"),
        "exporter output drifted from the checked-in golden file; \
         update tests/golden/metrics.prom only on a deliberate format change"
    );
}

#[test]
fn prometheus_exposition_parses_cleanly() {
    let samples = validate_prometheus(&prometheus_text(&sample_registry().snapshot()));
    let get = |name: &str, labels: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .unwrap_or_else(|| panic!("missing series {name}{labels}"))
            .value
    };
    assert_eq!(get("ant_requests_total", ""), 1234.0);
    assert_eq!(get("ant_queue_depth", ""), -3.0);
    assert_eq!(get("ant_latency_ns_count", ""), 6.0);
    assert_eq!(get("ant_latency_ns_sum", ""), 203106.0);
    assert_eq!(get("ant_layer_calls_total", "{kind=\"relu\"}"), 7.0);
    assert_eq!(get("ant_layer_calls_total", "{kind=\"quo\\\"ted\"}"), 1.0);
    assert_eq!(
        get("ant_layer_time_ns_count", "{kind=\"packed_linear\"}"),
        2.0
    );
}

/// In instrumented builds the *live* process registry — after real
/// forward traffic — must also render a clean exposition: real family
/// names, labeled per-kind series, no duplicates.
#[test]
#[cfg(feature = "obs")]
fn live_registry_exposition_parses_cleanly() {
    use ant_nn::model::deep_mlp;
    use ant_nn::qat::{quantize_model, QuantSpec};
    use ant_tensor::dist::{sample_tensor, Distribution};

    let mut model = deep_mlp(16, 10, 24, 6, 5);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[64, 16],
        7,
    );
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    let mut plan = ant_runtime::CompiledPlan::from_quantized_strict(&model)
        .unwrap()
        .with_threads(1);
    let x = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[4, 16],
        11,
    );
    let mut out = Vec::new();
    for _ in 0..8 {
        plan.forward_rows(x.as_slice(), 4, &mut out).unwrap();
    }
    let samples = validate_prometheus(&prometheus_text(&ant_obs::global().snapshot()));
    assert!(
        samples
            .iter()
            .any(|s| s.name == "ant_forward_time_ns_count" && s.value >= 8.0),
        "forward histogram missing from the live exposition"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "ant_layer_time_ns_count" && s.labels == "{kind=\"packed_linear\"}"),
        "per-kind layer series missing from the live exposition"
    );
}

/// The decode-phase series: drive real engine prefill/decode traffic
/// and require the structural checker to find the batch-size and
/// per-step histograms plus the KV byte gauge — live, labeled, and
/// rendered without duplicates.
#[test]
#[cfg(feature = "obs")]
fn live_decode_series_parse_cleanly() {
    use ant_nn::model::decoder_block;
    use ant_nn::qat::{quantize_model, QuantSpec};
    use ant_runtime::{BatchPolicy, Engine};
    use ant_tensor::dist::{sample_tensor, Distribution};
    use std::time::Duration;

    let (seq, dim) = (6usize, 16usize);
    let mut model = decoder_block(seq, dim, 1, 23);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[24, seq * dim],
        3,
    );
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    let plan = ant_runtime::CompiledPlan::from_quantized_strict(&model)
        .unwrap()
        .with_threads(1);
    let engine = Engine::new(
        plan,
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(50),
            max_queue: 64,
            ..BatchPolicy::default()
        },
    );
    let token = |seed: u64| {
        sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[1, dim],
            seed,
        )
        .as_slice()
        .to_vec()
    };
    let sids: Vec<_> = (0..3).map(|_| engine.open_session(seq).unwrap()).collect();
    for (i, sid) in sids.iter().enumerate() {
        let p = engine.submit_prefill(*sid, &token(i as u64)).unwrap();
        engine.wait(p).unwrap();
    }
    // With sessions still open, the gauge must expose their bytes.
    let samples = validate_prometheus(&prometheus_text(&ant_obs::global().snapshot()));
    let kv_now = samples
        .iter()
        .find(|s| s.name == "ant_kv_cache_bytes")
        .expect("KV byte gauge missing from the live exposition")
        .value;
    assert_eq!(kv_now, engine.kv_bytes() as f64);
    assert!(kv_now > 0.0);
    // Decode a few steps from every session, close, and re-validate.
    let ids: Vec<_> = sids
        .iter()
        .enumerate()
        .map(|(i, sid)| engine.submit_decode(*sid, &token(10 + i as u64)).unwrap())
        .collect();
    for id in ids {
        engine.wait(id).unwrap();
    }
    for sid in sids {
        assert!(engine.close_session(sid));
    }
    let samples = validate_prometheus(&prometheus_text(&ant_obs::global().snapshot()));
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing series {name}"))
            .value
    };
    assert!(get("ant_engine_decode_batch_size_count") >= 1.0);
    assert!(get("ant_engine_decode_step_ns_count") >= 1.0);
    assert!(get("ant_engine_decode_tokens_total") >= 3.0);
    assert_eq!(
        get("ant_kv_cache_bytes"),
        0.0,
        "closed sessions must zero the gauge"
    );
    assert_eq!(get("ant_kv_sessions"), 0.0);
}

#[test]
fn chrome_trace_is_valid_json_with_complete_events() {
    let events = vec![
        SpanEvent {
            name: "forward",
            tid: 0,
            start_ns: 1_000,
            dur_ns: 4_000,
        },
        SpanEvent {
            name: "layer.packed_linear",
            tid: 0,
            start_ns: 1_250,
            dur_ns: 2_500,
        },
        SpanEvent {
            name: "engine.batch",
            tid: 3,
            start_ns: 9_000,
            dur_ns: 700,
        },
    ];
    let doc = Json::parse(&chrome_trace(&events)).unwrap();
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let rendered = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert_eq!(rendered.len(), events.len());
    for (e, r) in events.iter().zip(rendered) {
        assert_eq!(r.get("name").and_then(Json::as_str), Some(e.name));
        assert_eq!(r.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(r.get("cat").and_then(Json::as_str), Some("ant"));
        assert_eq!(r.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(r.get("tid").and_then(Json::as_f64), Some(e.tid as f64));
        // Timestamps are µs with ns precision kept in the decimals.
        let ts = r.get("ts").and_then(Json::as_f64).unwrap();
        let dur = r.get("dur").and_then(Json::as_f64).unwrap();
        assert!((ts - e.start_ns as f64 / 1e3).abs() < 1e-9);
        assert!((dur - e.dur_ns as f64 / 1e3).abs() < 1e-9);
    }
    // The empty trace is still a complete, loadable document.
    let empty = Json::parse(&chrome_trace(&[])).unwrap();
    assert_eq!(
        empty.get("traceEvents").and_then(Json::as_arr),
        Some(&[][..])
    );
}
