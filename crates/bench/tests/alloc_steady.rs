//! Steady-state zero-allocation contract of the serving hot path.
//!
//! This integration test installs the counting global allocator
//! ([`ant_bench::alloc::CountingAlloc`]) for its whole process and pins
//! the runtime's strongest perf invariant: once a compiled plan's
//! [`ant_runtime::Scratch`] arena has warmed up,
//! [`ant_runtime::CompiledPlan::forward_rows`] serves requests with
//! **zero** heap allocations — for dense, conv, and attention plans
//! alike, at both batch-1 and batched shapes.
//!
//! With the (default) `obs` feature the same windows also prove the
//! telemetry tentpole: per-layer metrics and span records are being
//! written *during* the zero-allocation window — recording really is
//! allocation-free, not merely disabled.

#[global_allocator]
static ALLOC: ant_bench::alloc::CountingAlloc = ant_bench::alloc::CountingAlloc;

use ant_bench::alloc::{alloc_count, is_counting};
use ant_nn::model::{deep_mlp, small_cnn, transformer_block, Sequential};
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_runtime::CompiledPlan;
use ant_tensor::dist::{sample_tensor, Distribution};

fn models() -> Vec<(&'static str, Sequential, usize)> {
    let mut out = Vec::new();
    for (name, mut model, features) in [
        ("mlp", deep_mlp(16, 10, 24, 6, 5), 16usize),
        ("cnn", small_cnn(4, 5), 144),
        ("attention", transformer_block(6, 16, 4, 5), 96),
    ] {
        let calib = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[64, features],
            7,
        );
        quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
        out.push((name, model, features));
    }
    out
}

fn workloads() -> Vec<(&'static str, CompiledPlan, usize)> {
    models()
        .into_iter()
        .map(|(name, model, features)| {
            // threads=1 keeps the partitioning deterministic (and inline)
            // so the allocation count is exact regardless of machine
            // width.
            let plan = CompiledPlan::from_quantized_strict(&model)
                .unwrap()
                .with_threads(1);
            (name, plan, features)
        })
        .collect()
}

#[test]
fn steady_state_forward_rows_allocates_nothing() {
    assert!(is_counting(), "counting allocator must be installed");
    const BATCH: usize = 8;
    for (name, mut plan, features) in workloads() {
        let x = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[BATCH, features],
            11,
        );
        let mut out = Vec::new();
        // Warmup: drive every scratch buffer (both batch shapes) to its
        // high-water mark.
        for _ in 0..3 {
            plan.forward_rows(x.as_slice(), BATCH, &mut out).unwrap();
            plan.forward_rows(&x.as_slice()[..features], 1, &mut out)
                .unwrap();
        }
        plan.forward_rows(x.as_slice(), BATCH, &mut out).unwrap();
        let warm = out.clone();
        // Telemetry snapshot taken *outside* the counted window (the
        // snapshot itself allocates; recording must not).
        #[cfg(feature = "obs")]
        let obs_before = ant_obs::global().snapshot();
        // Steady state: not one allocation across many requests.
        let before = alloc_count();
        for _ in 0..50 {
            plan.forward_rows(&x.as_slice()[..features], 1, &mut out)
                .unwrap();
            plan.forward_rows(x.as_slice(), BATCH, &mut out).unwrap();
        }
        let allocs = alloc_count() - before;
        assert_eq!(
            allocs, 0,
            "{name}: {allocs} steady-state allocations in 100 requests"
        );
        // And the answers did not go stale while we were busy not
        // allocating.
        assert_eq!(out, warm, "{name}: steady-state output drifted");
        // The zero-allocation window above ran with metrics and spans
        // live: every forward call and every layer execution must have
        // landed in the registry, or the tentpole claim ("recording
        // never allocates") was vacuously tested against a dead path.
        #[cfg(feature = "obs")]
        {
            let delta = ant_obs::global().snapshot().delta_since(&obs_before);
            let hist_count = |family: &str| -> u64 {
                match delta.get(family, None) {
                    Some(series) => match &series.value {
                        ant_obs::Value::Histogram(h) => h.count(),
                        _ => panic!("{family} is not a histogram"),
                    },
                    None => panic!("{name}: no {family} series recorded in the window"),
                }
            };
            assert_eq!(
                hist_count("ant_forward_time_ns"),
                100,
                "{name}: every forward call in the zero-alloc window must be timed"
            );
            let layer_calls: u64 = ant_runtime::obs::LAYER_KINDS
                .iter()
                .filter_map(|kind| delta.get("ant_layer_time_ns", Some(kind.as_str())))
                .map(|series| match &series.value {
                    ant_obs::Value::Histogram(h) => h.count(),
                    _ => panic!("ant_layer_time_ns is not a histogram"),
                })
                .sum();
            assert!(
                layer_calls >= 100,
                "{name}: per-layer timings missing from the zero-alloc window ({layer_calls})"
            );
            // Spans too: the fixed-capacity rings were being written
            // during the window (span readback allocates, recording
            // does not — which is exactly what the window proved).
            let spans = ant_obs::snapshot_spans();
            assert!(
                spans.iter().any(|s| s.name == "forward"),
                "{name}: no forward spans retained"
            );
            assert!(
                spans.iter().any(|s| s.name.starts_with("layer.")),
                "{name}: no per-layer spans retained"
            );
        }
    }
}

#[test]
fn steady_state_decode_steps_allocate_nothing() {
    // The decode-phase twin of the contract above: once a session's
    // packed KV cache is open (all bytes preallocated) and the scratch
    // arena is warm, every further decode step — quantize the new K/V
    // row into the cache, attend over the packed history, project —
    // runs without touching the allocator, with telemetry live.
    assert!(is_counting(), "counting allocator must be installed");
    let (seq, dim) = (8usize, 16usize);
    let mut model = ant_nn::model::decoder_block(seq, dim, 2, 27);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[24, seq * dim],
        7,
    );
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    let mut plan = CompiledPlan::from_quantized_strict(&model)
        .unwrap()
        .with_threads(1);
    const STEPS: usize = 50;
    let capacity = 8 + STEPS;
    let mut a = plan.open_session(capacity).unwrap();
    let mut b = plan.open_session(capacity).unwrap();
    let tokens = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[2 * capacity, dim],
        17,
    );
    let tokens = tokens.as_slice();
    let mut out = Vec::new();
    // Warmup: prefill both sessions, then a few steps at both batch
    // shapes (coalesced pair and single session) to reach every scratch
    // high-water mark.
    plan.prefill(&mut a, &tokens[..2 * dim], &mut out).unwrap();
    plan.prefill(&mut b, &tokens[..3 * dim], &mut out).unwrap();
    for t in 3..6 {
        plan.decode_steps(
            &mut [&mut a, &mut b],
            &tokens[t * 2 * dim..(t * 2 + 2) * dim],
            &mut out,
        )
        .unwrap();
        plan.decode_steps(&mut [&mut a], &tokens[t * dim..(t + 1) * dim], &mut out)
            .unwrap();
    }
    let kv_before = a.kv_bytes();
    #[cfg(feature = "obs")]
    let obs_before = ant_obs::global().snapshot();
    // Steady state: not one allocation per decode step, either shape.
    let before = alloc_count();
    for i in 0..STEPS / 2 {
        let t = 8 + i;
        plan.decode_steps(
            &mut [&mut a, &mut b],
            &tokens[t * 2 * dim..(t * 2 + 2) * dim],
            &mut out,
        )
        .unwrap();
        plan.decode_steps(&mut [&mut b], &tokens[t * dim..(t + 1) * dim], &mut out)
            .unwrap();
    }
    let allocs = alloc_count() - before;
    assert_eq!(
        allocs, 0,
        "decode: {allocs} steady-state allocations in {STEPS} steps"
    );
    // The cache footprint is fixed at open — appending tokens must not
    // have grown it.
    assert_eq!(a.kv_bytes(), kv_before, "decode: KV cache grew per step");
    // Telemetry was live through the window: every decode step is a
    // timed forward with per-layer records.
    #[cfg(feature = "obs")]
    {
        let delta = ant_obs::global().snapshot().delta_since(&obs_before);
        let forwards = match &delta
            .get("ant_forward_time_ns", None)
            .expect("decode steps must be timed")
            .value
        {
            ant_obs::Value::Histogram(h) => h.count(),
            _ => panic!("ant_forward_time_ns is not a histogram"),
        };
        assert_eq!(
            forwards as usize, STEPS,
            "every decode step in the zero-alloc window must be timed"
        );
        let attn_layers = delta
            .get("ant_layer_time_ns", Some("packed_attn"))
            .map(|series| match &series.value {
                ant_obs::Value::Histogram(h) => h.count(),
                _ => panic!("ant_layer_time_ns is not a histogram"),
            })
            .unwrap_or(0);
        assert!(
            attn_layers >= STEPS as u64,
            "causal attention layer timings missing from the window ({attn_layers})"
        );
    }
}

#[test]
fn steady_state_holds_with_mmap_borrowed_panels() {
    // Same contract as above, but the plan's weight images are borrowed
    // straight from a mapped v2 artifact instead of owned buffers: the
    // storage refactor must not smuggle allocations (or copies) into the
    // hot path.
    assert!(is_counting(), "counting allocator must be installed");
    use ant_runtime::{MappedArtifact, ModelArtifact};
    const BATCH: usize = 8;
    for (name, model, features) in models() {
        let path = std::env::temp_dir().join(format!(
            "ant-alloc-steady-{}-{name}.antm",
            std::process::id()
        ));
        ModelArtifact::from_model(&model)
            .unwrap()
            .save_path(&path)
            .unwrap();
        let mapped = MappedArtifact::open(&path).unwrap();
        if cfg!(all(unix, target_endian = "little")) {
            assert!(mapped.is_zero_copy(), "{name}: mapped load copied");
        }
        let mut plan = mapped.compile_strict().unwrap().with_threads(1);
        assert!(
            plan.borrowed_layer_count() > 0,
            "{name}: no borrowed weight images"
        );
        let x = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[BATCH, features],
            11,
        );
        let mut out = Vec::new();
        for _ in 0..3 {
            plan.forward_rows(x.as_slice(), BATCH, &mut out).unwrap();
            plan.forward_rows(&x.as_slice()[..features], 1, &mut out)
                .unwrap();
        }
        let before = alloc_count();
        for _ in 0..50 {
            plan.forward_rows(&x.as_slice()[..features], 1, &mut out)
                .unwrap();
            plan.forward_rows(x.as_slice(), BATCH, &mut out).unwrap();
        }
        let allocs = alloc_count() - before;
        assert_eq!(
            allocs, 0,
            "{name}: {allocs} steady-state allocations with borrowed panels"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn warmup_allocations_are_one_time() {
    assert!(is_counting());
    let (_, mut plan, features) = workloads().pop().unwrap();
    let x = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[4, features],
        13,
    );
    let mut out = Vec::new();
    plan.forward_rows(x.as_slice(), 4, &mut out).unwrap();
    let after_first = alloc_count();
    plan.forward_rows(x.as_slice(), 4, &mut out).unwrap();
    // The second identical call re-touches every buffer the first one
    // grew; any allocation here would grow without bound under traffic.
    assert_eq!(alloc_count(), after_first, "second call allocated");
}
