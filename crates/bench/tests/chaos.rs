//! Chaos e2e suite: a real `antd` daemon with the runtime's
//! deterministic fault-injection plan armed (`DaemonConfig::chaos`),
//! driven over real sockets. Each scenario pins one leg of the
//! self-healing contract from `docs/serving.md`:
//!
//! * poison quarantine — a poisoned request fails 422, its batchmates
//!   complete, the engine survives;
//! * breaker recovery — a killed engine answers 503 + `Retry-After`
//!   until the background rebuild + half-open probe restore 200s;
//! * KV hygiene — a worker death mid-generate drains the KV gauges to
//!   zero and a fresh session on the recovered engine decodes;
//! * fault storm — under a seeded panic rate no request ever hangs and
//!   the daemon ends the run serving.
//!
//! The chaos plan is process-global (`ant_runtime::chaos::install`),
//! so every test serializes on one lock and installs its own seeded
//! plan via the daemon config.

#![cfg(all(feature = "chaos", feature = "obs"))]

use ant_bench::antc::{run_generate, run_quantize, GenerateConfig, ModelKind, QuantizeConfig};
use ant_bench::antd::{Daemon, DaemonConfig};
use ant_bench::http::{read_response, write_request, ClientResponse};
use ant_bench::promcheck;
use ant_runtime::{BatchPolicy, FaultPlan};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// Serializes the tests in this binary: the chaos plan and the obs
/// gauges are process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn artifact(name: &str, kind: ModelKind) -> PathBuf {
    let path = std::env::temp_dir().join(format!("antd-chaos-{}-{name}.antm", std::process::id()));
    run_quantize(
        QuantizeConfig {
            model: kind,
            epochs: 0,
            ..QuantizeConfig::default()
        },
        &path,
    )
    .expect("quantize test artifact");
    path
}

/// One request/response on a fresh connection, with a bounded read
/// timeout — a hang here is a test failure, never a harness timeout.
fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    write_request(
        &mut writer,
        method,
        path,
        body.map(|b| ("application/json", b.as_bytes())),
    )
    .map_err(|e| format!("send: {e}"))?;
    read_response(&mut reader).map_err(|e| format!("read: {e}"))
}

fn infer_body(v: f32) -> String {
    let row: Vec<String> = (0..8).map(|_| format!("{v:.2}")).collect();
    format!("{{\"input\": [{}]}}", row.join(", "))
}

/// An infer body whose first element is the installed poison sentinel.
fn poison_body() -> String {
    let mut row: Vec<String> = (0..8).map(|_| "0.25".to_string()).collect();
    row[0] = "1000000".to_string();
    format!("{{\"input\": [{}]}}", row.join(", "))
}

/// Scrapes `/metrics` and returns the value of `name{labels}`.
fn metric(addr: SocketAddr, name: &str, labels: &str) -> Option<f64> {
    let resp = call(addr, "GET", "/metrics", None).ok()?;
    let samples = promcheck::validate(&resp.body_str()).expect("valid exposition");
    samples
        .iter()
        .find(|s| s.name == name && s.labels == labels)
        .map(|s| s.value)
}

/// Polls until `f` returns true or ~10s pass.
fn eventually(mut f: impl FnMut() -> bool) -> bool {
    for _ in 0..1000 {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn poison_request_fails_422_and_batchmates_complete() {
    let _g = lock();
    let path = artifact("poison", ModelKind::Mlp);
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        models: vec![("mlp".to_string(), path.clone())],
        policy: BatchPolicy {
            // Unreachable max_batch + generous gather window: the four
            // concurrent requests below coalesce into one batch.
            max_batch: 64,
            max_wait: Duration::from_millis(300),
            ..BatchPolicy::default()
        },
        // Poison sentinel only: no random faults in this scenario.
        chaos: Some(FaultPlan::parse("seed=11,poison=1000000").unwrap()),
        ..DaemonConfig::default()
    })
    .expect("daemon start");
    let addr = daemon.local_addr();

    // Three innocents and one poison, fired together so they share the
    // gather window.
    let barrier = Arc::new(Barrier::new(4));
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let body = if t == 0 {
                    poison_body()
                } else {
                    infer_body(0.1 * t as f32)
                };
                barrier.wait();
                let resp = call(addr, "POST", "/v1/models/mlp/infer", Some(&body)).unwrap();
                (t, resp.status, resp.body_str())
            })
        })
        .collect();
    for w in workers {
        let (t, status, body) = w.join().unwrap();
        if t == 0 {
            assert_eq!(status, 422, "poison request: {body}");
            assert!(body.contains("poisoned"), "{body}");
        } else {
            assert_eq!(status, 200, "innocent request {t}: {body}");
        }
    }

    // The engine survived: healthz is green, a fresh request completes,
    // and the quarantine shows up in the runtime metrics.
    assert_eq!(call(addr, "GET", "/healthz", None).unwrap().status, 200);
    let after = call(addr, "POST", "/v1/models/mlp/infer", Some(&infer_body(0.5))).unwrap();
    assert_eq!(after.status, 200, "{}", after.body_str());
    assert!(
        metric(addr, "ant_engine_poisoned_total", "").unwrap_or(0.0) >= 1.0,
        "quarantine not recorded"
    );

    daemon.shutdown();
    daemon.join();
    ant_runtime::chaos::clear();
    std::fs::remove_file(&path).ok();
}

#[test]
fn dead_engine_trips_breaker_then_rebuild_restores_traffic() {
    let _g = lock();
    let path = artifact("breaker", ModelKind::Mlp);
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        models: vec![("mlp".to_string(), path.clone())],
        policy: BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            // No supervision budget: the injected panic kills the
            // engine outright, which is the breaker's cue.
            max_restarts: 0,
            ..BatchPolicy::default()
        },
        // Exactly the first batch execution panics.
        chaos: Some(FaultPlan::parse("seed=12,worker_panic=@1").unwrap()),
        ..DaemonConfig::default()
    })
    .expect("daemon start");
    let addr = daemon.local_addr();

    // The request that rides the panicking batch is answered 503 +
    // Retry-After (not a 500, not a hang) and trips the breaker.
    let first = call(addr, "POST", "/v1/models/mlp/infer", Some(&infer_body(0.2))).unwrap();
    assert_eq!(first.status, 503, "{}", first.body_str());
    assert_eq!(
        first.header("retry-after"),
        Some("1"),
        "breaker 503 must carry Retry-After"
    );

    // Background rebuild + half-open probe: traffic recovers without
    // any operator action. Requests meanwhile only ever see 503.
    let recovered = eventually(|| {
        let resp = call(addr, "POST", "/v1/models/mlp/infer", Some(&infer_body(0.3))).unwrap();
        assert!(
            resp.status == 200 || resp.status == 503,
            "unexpected status {} during recovery: {}",
            resp.status,
            resp.body_str()
        );
        resp.status == 200
    });
    assert!(recovered, "breaker never closed after engine rebuild");

    // The healed generation serves steadily and the episode is visible
    // in the metrics: one trip, one rebuild, breaker closed (0).
    for i in 0..5 {
        let resp = call(
            addr,
            "POST",
            "/v1/models/mlp/infer",
            Some(&infer_body(0.1 * i as f32)),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    }
    let labels = "{model=\"mlp\"}";
    assert!(metric(addr, "antd_breaker_trips_total", labels).unwrap_or(0.0) >= 1.0);
    assert!(metric(addr, "antd_engine_rebuilds_total", labels).unwrap_or(0.0) >= 1.0);
    assert_eq!(metric(addr, "antd_breaker_state", labels), Some(0.0));

    daemon.shutdown();
    daemon.join();
    ant_runtime::chaos::clear();
    std::fs::remove_file(&path).ok();
}

#[test]
fn worker_death_mid_generate_drains_kv_and_recovered_engine_decodes() {
    let _g = lock();
    let path = artifact("kv-drain", ModelKind::Decoder);
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        models: vec![("dec".to_string(), path.clone())],
        policy: BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            max_restarts: 0,
            ..BatchPolicy::default()
        },
        // Batch 1 is the generate prefill; batch 2 (the first decode
        // step) panics and — with no restart budget — kills the engine
        // while the session is open and its KV arena allocated.
        chaos: Some(FaultPlan::parse("seed=13,worker_panic=@2").unwrap()),
        ..DaemonConfig::default()
    })
    .expect("daemon start");
    let addr = daemon.local_addr();

    let gen = |prompt: Vec<u32>| {
        run_generate(GenerateConfig {
            addr: addr.to_string(),
            model: "dec".to_string(),
            prompt,
            max_tokens: 6,
        })
    };
    // The stream dies mid-generate with an error line, never a hang.
    let killed = gen(vec![1, 2, 3]);
    assert!(killed.is_err(), "generate should have died: {killed:?}");

    // Every KV byte and session of the dead stack is released.
    let drained = eventually(|| {
        metric(addr, "ant_kv_cache_bytes", "") == Some(0.0)
            && metric(addr, "ant_kv_sessions", "") == Some(0.0)
    });
    assert!(drained, "dead engine left KV bytes or sessions pinned");

    // The breaker heals the model; a fresh session on the rebuilt
    // engine decodes correctly and deterministically.
    let mut healed = None;
    let recovered = eventually(|| match gen(vec![1, 2, 3]) {
        Ok(report) => {
            healed = Some(report);
            true
        }
        Err(_) => false,
    });
    assert!(recovered, "generate never recovered after engine rebuild");
    let report = healed.unwrap();
    assert!(
        report.contains("generated 6 token(s) from 3 prompt token(s)"),
        "unexpected generate report:\n{report}"
    );
    let again = gen(vec![1, 2, 3]).expect("repeat generate");
    assert_eq!(report, again, "greedy decode drifted after recovery");

    daemon.shutdown();
    daemon.join();
    ant_runtime::chaos::clear();
    std::fs::remove_file(&path).ok();
}

/// Seeded fault storm: with a sustained worker-panic rate under the
/// supervisor's budget, no request ever hangs, every answer is one of
/// the contract's codes, and the daemon ends the run serving. The seed
/// comes from `ANT_CHAOS_SEED` (CI sweeps several), so a failure
/// prints enough to reproduce: rerun with the same seed.
#[test]
fn fault_storm_never_hangs_and_recovers() {
    let _g = lock();
    let seed: u64 = std::env::var("ANT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let spec = format!("seed={seed},worker_panic=0.2,slow_batch=0.1,slow_ms=3");
    let path = artifact("storm", ModelKind::Mlp);
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        models: vec![("mlp".to_string(), path.clone())],
        policy: BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            // A deep budget: the storm must be absorbed, not fatal.
            max_restarts: 1000,
            restart_backoff: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        chaos: Some(FaultPlan::parse(&spec).unwrap()),
        ..DaemonConfig::default()
    })
    .expect("daemon start");
    let addr = daemon.local_addr();

    let mut tally = [0u32; 3]; // 200 / 422 / other-contract codes
    for i in 0..80 {
        let resp = call(
            addr,
            "POST",
            "/v1/models/mlp/infer",
            Some(&infer_body(0.01 * i as f32)),
        )
        .unwrap_or_else(|e| panic!("request {i} failed transport under seed {seed}: {e}"));
        match resp.status {
            200 => tally[0] += 1,
            // A lone request in a panicked batch is indistinguishable
            // from poison: 422 is in-contract during a storm.
            422 => tally[1] += 1,
            429 | 503 | 504 => tally[2] += 1,
            other => panic!(
                "request {i} got out-of-contract status {other} under seed {seed}: {}",
                resp.body_str()
            ),
        }
    }
    assert!(
        tally[0] >= 40,
        "storm seed {seed} starved throughput: {tally:?}"
    );
    // The supervisor absorbed panics (rate 0.2 over 80+ batches) and
    // the daemon ends the run healthy.
    assert!(
        metric(addr, "ant_engine_restarts_total", "").unwrap_or(0.0) >= 1.0,
        "no restart recorded under seed {seed}"
    );
    assert_eq!(call(addr, "GET", "/healthz", None).unwrap().status, 200);
    // Storm over: with the plan disarmed, service is immediately clean —
    // no residual state from the absorbed panics.
    ant_runtime::chaos::clear();
    let last = call(addr, "POST", "/v1/models/mlp/infer", Some(&infer_body(0.9)));
    assert_eq!(last.unwrap().status, 200, "daemon not serving after storm");

    daemon.shutdown();
    daemon.join();
    ant_runtime::chaos::clear();
    std::fs::remove_file(&path).ok();
}
