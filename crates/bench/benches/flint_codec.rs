//! Criterion benches for the flint codec (Tables II/III machinery):
//! encode, decode and the full quantize path at every supported width.

use ant_core::flint::Flint;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("flint_codec");
    for bits in [4u32, 8u32] {
        let f = Flint::new(bits).expect("valid width");
        let values: Vec<u64> = (0..4096u64).map(|i| i % (f.max_value() + 1)).collect();
        group.throughput(Throughput::Elements(values.len() as u64));
        group.bench_function(format!("encode_int/b{bits}"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for &v in &values {
                    acc = acc.wrapping_add(f.encode_int(black_box(v)));
                }
                acc
            })
        });
        let codes: Vec<u32> = (0..4096u32).map(|i| i % f.num_codes()).collect();
        group.bench_function(format!("decode/b{bits}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &code in &codes {
                    acc = acc.wrapping_add(f.decode(black_box(code)));
                }
                acc
            })
        });
        group.bench_function(format!("decode_int/b{bits}"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for &code in &codes {
                    let d = f.decode_int(black_box(code));
                    acc = acc.wrapping_add(d.base + d.exp);
                }
                acc
            })
        });
    }
    // The dynamic-quantization path the activation unit runs per element
    // (Algorithm 1).
    let f4 = Flint::new(4).expect("4-bit flint");
    let reals: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37) % 64.0).collect();
    group.throughput(Throughput::Elements(reals.len() as u64));
    group.bench_function("quantize_f32/b4", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &reals {
                acc = acc.wrapping_add(f4.quantize(black_box(x), 1.0));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
