//! Criterion benches for calibration and fake quantization (the Eq. (2)
//! pipeline): scale search per data type and per-channel application.

use ant_core::{ClipSearch, DataType, Granularity, Quantizer, TensorQuantizer};
use ant_tensor::dist::{sample_tensor, sample_vec, Distribution};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_quantizer(c: &mut Criterion) {
    let data = sample_vec(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        4096,
        1,
    );
    let mut group = c.benchmark_group("quantizer");
    group.throughput(Throughput::Elements(data.len() as u64));
    for dt in [
        DataType::int(4, true).expect("valid"),
        DataType::pot(4, true).expect("valid"),
        DataType::float(4, true).expect("valid"),
        DataType::flint(4, true).expect("valid"),
        DataType::int(8, true).expect("valid"),
    ] {
        group.bench_function(format!("fit_grid64/{dt}"), |b| {
            b.iter(|| {
                Quantizer::fit(dt, black_box(&data), ClipSearch::GridMse { steps: 64 })
                    .expect("fit succeeds")
                    .1
            })
        });
    }
    let dt = DataType::flint(4, true).expect("valid");
    let (q, _) = Quantizer::fit(dt, &data, ClipSearch::default()).expect("fit succeeds");
    group.bench_function("apply_slice/flint4s", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| {
                q.apply_slice(&mut d);
                d
            },
            criterion::BatchSize::SmallInput,
        )
    });
    // Per-channel weight calibration (paper Sec. II-B granularity).
    let w = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 0.05,
        },
        &[64, 576],
        2,
    );
    group.throughput(Throughput::Elements(w.len() as u64));
    group.bench_function("fit_per_channel/flint4s_64x576", |b| {
        b.iter(|| {
            TensorQuantizer::fit(
                dt,
                black_box(&w),
                Granularity::PerChannel,
                ClipSearch::GridMse { steps: 16 },
            )
            .expect("fit succeeds")
            .1
        })
    });
    group.finish();
}

criterion_group!(benches, bench_quantizer);
criterion_main!(benches);
