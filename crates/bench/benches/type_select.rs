//! Criterion benches for Algorithm 2 (the Fig. 10/14 machinery): full
//! type selection over a tensor per distribution family and combination.

use ant_core::select::{select_type, PrimitiveCombo};
use ant_core::{ClipSearch, Granularity};
use ant_tensor::dist::{sample_tensor, Distribution};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("type_select");
    let tensors = [
        (
            "gaussian_tail",
            Distribution::OutlierGaussian {
                std: 1.0,
                outlier_frac: 0.01,
                outlier_scale: 4.0,
            },
        ),
        ("uniform", Distribution::Uniform { lo: -1.0, hi: 1.0 }),
        (
            "outliers",
            Distribution::OutlierGaussian {
                std: 1.0,
                outlier_frac: 0.01,
                outlier_scale: 20.0,
            },
        ),
    ];
    for (name, dist) in tensors {
        let t = sample_tensor(dist, &[4096], 7);
        group.throughput(Throughput::Elements(t.len() as u64));
        for combo in [
            PrimitiveCombo::Int,
            PrimitiveCombo::IntPotFlint,
            PrimitiveCombo::FloatIntPotFlint,
        ] {
            group.bench_function(format!("{name}/{combo}"), |b| {
                b.iter(|| {
                    select_type(
                        black_box(&t),
                        &combo.candidates(4, true).expect("valid"),
                        Granularity::PerTensor,
                        ClipSearch::GridMse { steps: 32 },
                    )
                    .expect("selection succeeds")
                    .mse
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
