//! Criterion benches for the packed-domain runtime: f32 forward vs
//! fake-quantized forward vs packed integer forward, and batched vs
//! unbatched serving through the engine — the perf trajectory of the
//! serving path (all rates are per *request*, so higher elem/s directly
//! means higher request throughput). Conv (im2row-lowered) and attention
//! (integer Q/K/V) plans get their own groups so the packed coverage of
//! the paper's CNN/Transformer workloads is tracked, not just MLPs.

use ant_nn::model::{deep_mlp, small_cnn, transformer_block, Sequential};
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_runtime::gemm::{int_gemm, int_gemm_threaded, PanelGemm};
use ant_runtime::{BatchPolicy, CompiledPlan, Engine, WorkerPool};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

const INPUT: usize = 16;
const BATCH: usize = 32;

fn gaussian(dims: &[usize], seed: u64) -> Tensor {
    sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        dims,
        seed,
    )
}

fn bench_runtime(c: &mut Criterion) {
    // The serving-shaped reference model: deep and narrow, where per-call
    // overhead matters and batching pays.
    let mut fp32_model = deep_mlp(INPUT, 4, 8, 6, 5);
    let mut qat_model = deep_mlp(INPUT, 4, 8, 6, 5);
    let calib = gaussian(&[64, INPUT], 3);
    quantize_model(&mut qat_model, &calib, QuantSpec::default()).expect("quantize");
    let mut plan = CompiledPlan::from_quantized(&qat_model).expect("compile");
    let x32 = gaussian(&[BATCH, INPUT], 9);
    let x1 = Tensor::from_vec(x32.as_slice()[..INPUT].to_vec(), &[1, INPUT]).expect("row");

    let mut group = c.benchmark_group("runtime");

    // Model-level forwards, normalized per request.
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("f32_forward/batch32", |b| {
        b.iter(|| fp32_model.forward(black_box(&x32)).expect("forward"))
    });
    group.bench_function("qat_forward/batch32", |b| {
        b.iter(|| qat_model.forward(black_box(&x32)).expect("forward"))
    });
    group.bench_function("packed_forward/batch32", |b| {
        b.iter(|| plan.forward(black_box(&x32)).expect("forward"))
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("packed_forward/batch1", |b| {
        b.iter(|| plan.forward(black_box(&x1)).expect("forward"))
    });

    // Engine-level serving: 32 concurrent requests coalesced into one
    // batch, vs unbatched serving (one request in flight at a time). The
    // packed-path batching win is the ratio of these two rates.
    group.throughput(Throughput::Elements(BATCH as u64));
    let rows: Vec<&[f32]> = (0..BATCH)
        .map(|i| &x32.as_slice()[i * INPUT..(i + 1) * INPUT])
        .collect();
    let policy = |max_batch| BatchPolicy {
        max_batch,
        max_wait: Duration::from_millis(1),
        ..BatchPolicy::default()
    };
    let batched = Engine::new(plan.clone(), policy(BATCH));
    for row in &rows {
        let id = batched.submit(row).expect("submit");
        let _ = batched.wait(id).expect("warmup");
    }
    group.bench_function("engine_batched/32_concurrent", |b| {
        b.iter(|| {
            let ids: Vec<_> = rows
                .iter()
                .map(|row| batched.submit(row).expect("submit"))
                .collect();
            for id in ids {
                black_box(batched.wait(id).expect("result"));
            }
        })
    });
    let unbatched = Engine::new(plan.clone(), policy(1));
    for row in &rows {
        let id = unbatched.submit(row).expect("submit");
        let _ = unbatched.wait(id).expect("warmup");
    }
    group.bench_function("engine_unbatched/one_in_flight", |b| {
        b.iter(|| {
            for row in &rows {
                let id = unbatched.submit(row).expect("submit");
                black_box(unbatched.wait(id).expect("result"));
            }
        })
    });
    group.finish();
}

/// One packed-vs-fake-quant forward pair for a model family, normalized
/// per request.
fn bench_packed_family(
    c: &mut Criterion,
    group_name: &str,
    mut qat_model: Sequential,
    features: usize,
) {
    let calib = gaussian(&[64, features], 3);
    quantize_model(&mut qat_model, &calib, QuantSpec::default()).expect("quantize");
    // Strict: these families must never silently fall back to f32.
    let mut plan = CompiledPlan::from_quantized_strict(&qat_model).expect("compile");
    assert!(
        plan.coverage() == 1.0,
        "{group_name}: fallback layer in plan"
    );
    let x = gaussian(&[BATCH, features], 9);
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("qat_forward/batch32", |b| {
        b.iter(|| qat_model.forward(black_box(&x)).expect("forward"))
    });
    group.bench_function("packed_forward/batch32", |b| {
        b.iter(|| plan.forward(black_box(&x)).expect("forward"))
    });
    // Engine serving: 32 concurrent requests coalesced into one batch.
    let rows: Vec<&[f32]> = (0..BATCH)
        .map(|i| &x.as_slice()[i * features..(i + 1) * features])
        .collect();
    let engine = Engine::new(
        plan.clone(),
        BatchPolicy {
            max_batch: BATCH,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
    );
    for row in &rows {
        let id = engine.submit(row).expect("submit");
        let _ = engine.wait(id).expect("warmup");
    }
    group.bench_function("engine_batched/32_concurrent", |b| {
        b.iter(|| {
            let ids: Vec<_> = rows
                .iter()
                .map(|row| engine.submit(row).expect("submit"))
                .collect();
            for id in ids {
                black_box(engine.wait(id).expect("result"));
            }
        })
    });
    group.finish();
}

/// Raw dense-GEMM kernels at a serving-typical shape: the scalar `i32`
/// reference vs the panel-packed narrow microkernel (bit-identical
/// results; the rate gap is the whole point of the narrow hot path), plus
/// the pool-threaded driver at the batch-1 wide-layer shape that
/// historically never parallelized.
fn bench_runtime_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_gemm");
    let (m, k, n) = (64usize, 256usize, 256usize);
    let a32: Vec<i32> = (0..m * k).map(|i| (i % 127) as i32 - 63).collect();
    let b32: Vec<i32> = (0..n * k).map(|i| (i % 129) as i32 - 64).collect();
    let a8: Vec<i8> = a32.iter().map(|&v| v as i8).collect();
    let b8: Vec<i8> = b32.iter().map(|&v| v as i8).collect();
    let a16: Vec<i16> = a32.iter().map(|&v| v as i16).collect();
    let b16: Vec<i16> = b32.iter().map(|&v| v as i16).collect();
    let packed8 = PanelGemm::pack(&b8, n, k, 127);
    let packed16 = PanelGemm::pack(&b16, n, k, 127);
    let pool = WorkerPool::global();
    let mut out = vec![0i64; m * n];
    group.throughput(Throughput::Elements((m * k * n) as u64));
    group.bench_function("dense/i32_reference", |bch| {
        bch.iter(|| int_gemm(black_box(&a32), &b32, m, k, n, &mut out))
    });
    group.bench_function("dense/i16_microkernel", |bch| {
        bch.iter(|| packed16.matmul(black_box(&a16), m, &mut out, pool, 1))
    });
    group.bench_function("dense/i8_microkernel", |bch| {
        bch.iter(|| packed8.matmul(black_box(&a8), m, &mut out, pool, 1))
    });
    // The m=1 tall-weight serving shape: the old row-only partitioning
    // pinned this to one thread regardless of budget.
    let (m1, k1, n1) = (1usize, 512usize, 2048usize);
    let a1: Vec<i32> = (0..m1 * k1).map(|i| (i % 127) as i32 - 63).collect();
    let w1: Vec<i32> = (0..n1 * k1).map(|i| (i % 129) as i32 - 64).collect();
    let mut out1 = vec![0i64; m1 * n1];
    group.throughput(Throughput::Elements((m1 * k1 * n1) as u64));
    group.bench_function("batch1_wide/i32_threaded", |bch| {
        bch.iter(|| int_gemm_threaded(black_box(&a1), &w1, m1, k1, n1, &mut out1, 8))
    });
    let a1_8: Vec<i8> = a1.iter().map(|&v| v as i8).collect();
    let w1_8: Vec<i8> = w1.iter().map(|&v| v as i8).collect();
    let packed1 = PanelGemm::pack(&w1_8, n1, k1, 127);
    group.bench_function("batch1_wide/i8_microkernel", |bch| {
        bch.iter(|| packed1.matmul(black_box(&a1_8), m1, &mut out1, pool, 8))
    });
    group.finish();
}

/// The CNN serving path: conv → pool → dense through the integer im2row
/// GEMM pipeline.
fn bench_runtime_conv(c: &mut Criterion) {
    bench_packed_family(c, "runtime_conv", small_cnn(4, 7), 144);
}

/// The Transformer serving path: integer Q/K/V projections with the f32
/// softmax decode boundary.
fn bench_runtime_attn(c: &mut Criterion) {
    bench_packed_family(c, "runtime_attn", transformer_block(6, 16, 4, 9), 96);
}

criterion_group!(
    benches,
    bench_runtime,
    bench_runtime_gemm,
    bench_runtime_conv,
    bench_runtime_attn
);
criterion_main!(benches);
