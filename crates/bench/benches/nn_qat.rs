//! Criterion benches for the DNN substrate and QAT path (Figs. 11/12
//! machinery): forward/backward passes, a training epoch and whole-model
//! PTQ.

use ant_nn::data::blobs;
use ant_nn::model::mlp;
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_nn::train::{train, TrainConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_qat");
    group.sample_size(10);
    let data = blobs(512, 16, 8, 0.4, 1);
    let (train_set, _) = data.split(0.25);

    group.bench_function("forward_batch64/mlp", |b| {
        let mut model = mlp(16, 8, 2);
        let (x, _) = train_set.batch(&(0..64).collect::<Vec<_>>());
        b.iter(|| model.forward(black_box(&x)).expect("forward").sum())
    });

    group.bench_function("train_epoch/mlp", |b| {
        b.iter_batched(
            || mlp(16, 8, 3),
            |mut model| {
                train(
                    &mut model,
                    &train_set,
                    TrainConfig {
                        epochs: 1,
                        batch_size: 32,
                        lr: 0.05,
                        momentum: 0.9,
                        seed: 1,
                    },
                )
                .expect("trains")
                .loss[0]
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("ptq/mlp_ipf4", |b| {
        let mut trained = mlp(16, 8, 4);
        train(
            &mut trained,
            &train_set,
            TrainConfig {
                epochs: 3,
                batch_size: 32,
                lr: 0.05,
                momentum: 0.9,
                seed: 2,
            },
        )
        .expect("trains");
        let (calib, _) = train_set.batch(&(0..64).collect::<Vec<_>>());
        b.iter_batched(
            || trained.clone(),
            |mut m| {
                quantize_model(&mut m, &calib, QuantSpec::default())
                    .expect("quantizes")
                    .len()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
