//! Criterion benches for the accelerator simulator (Fig. 13 / Table I
//! machinery): per-design workload simulation and the Table I sweep.

use ant_sim::design::{simulate, Design, SimConfig};
use ant_sim::report::WorkloadComparison;
use ant_sim::workload::{bert_base, resnet18};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let cfg = SimConfig::default();
    let rn = resnet18(8);
    let bert = bert_base(8, "SST-2");
    for d in [Design::AntOs, Design::BitFusion, Design::AdaFloat] {
        group.bench_function(format!("resnet18/{}", d.name()), |b| {
            b.iter(|| {
                simulate(d, black_box(&rn), &cfg)
                    .expect("simulates")
                    .total_cycles
            })
        });
    }
    group.bench_function("bert_sst2/ANT-OS", |b| {
        b.iter(|| {
            simulate(Design::AntOs, black_box(&bert), &cfg)
                .expect("simulates")
                .total_cycles
        })
    });
    group.bench_function("fig13_row/resnet18_all_designs", |b| {
        b.iter(|| {
            WorkloadComparison::run(black_box(&rn), &cfg)
                .expect("runs")
                .results
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
