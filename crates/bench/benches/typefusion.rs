//! Criterion benches for the TypeFusion PE path (Figs. 5–9 machinery):
//! decoders, the fused MAC, the 8-bit composition and the cycle-stepped
//! systolic array.

use ant_hw::decode::{decode, WireType};
use ant_hw::mac::{mac, mul_int8_via_4bit_pes, Accumulator};
use ant_hw::systolic::{DecodedMatrix, SystolicArray};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn codes(n: usize, seed: u32) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E3779B9).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 13) & 0xF
        })
        .collect()
}

fn bench_typefusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("typefusion");
    let cs = codes(4096, 3);
    group.throughput(Throughput::Elements(cs.len() as u64));
    for ty in [
        ("flint", WireType::Flint { signed: true }),
        ("pot", WireType::Pot { signed: true }),
        ("int", WireType::Int { signed: true }),
    ] {
        group.bench_function(format!("decode/{}", ty.0), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for &code in &cs {
                    let d = decode(black_box(code), 4, ty.1).expect("valid code");
                    acc = acc.wrapping_add(d.value());
                }
                acc
            })
        });
    }
    group.bench_function("mac/flint_x_pot", |b| {
        let a: Vec<_> = cs
            .iter()
            .map(|&c| decode(c, 4, WireType::Flint { signed: true }).expect("valid"))
            .collect();
        let w: Vec<_> = cs
            .iter()
            .rev()
            .map(|&c| decode(c, 4, WireType::Pot { signed: true }).expect("valid"))
            .collect();
        b.iter(|| {
            let mut acc = Accumulator::new(32);
            for (&x, &y) in a.iter().zip(&w) {
                mac(&mut acc, x, y);
            }
            acc.value()
        })
    });
    group.bench_function("mul_int8_via_4bit_pes", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..4096i64 {
                acc = acc.wrapping_add(mul_int8_via_4bit_pes(
                    black_box((i % 255 - 127) as i8),
                    black_box(((i * 7) % 255 - 127) as i8),
                ));
            }
            acc
        })
    });
    // A 32×32×32 GEMM on an 8×8 cycle-stepped array — the Fig. 9 reference.
    let a = DecodedMatrix::from_codes(32, 32, &codes(1024, 5), 4, WireType::Flint { signed: true })
        .expect("valid codes");
    let b_mat =
        DecodedMatrix::from_codes(32, 32, &codes(1024, 6), 4, WireType::Int { signed: true })
            .expect("valid codes");
    let array = SystolicArray::new(8, 32);
    group.throughput(Throughput::Elements(32 * 32 * 32));
    group.bench_function("systolic_gemm_32x32x32_on_8x8", |b| {
        b.iter(|| array.gemm(black_box(&a), black_box(&b_mat)).1.macs)
    });
    group.finish();
}

criterion_group!(benches, bench_typefusion);
criterion_main!(benches);
