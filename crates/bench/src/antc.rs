//! The `antc` command-line tool: train/calibrate → select → save a
//! `.antm` artifact (`quantize`), dump its contents (`inspect`), and
//! smoke-serve it through the batched engine (`serve`).
//!
//! The subcommand logic lives here (not in the binary) so the round-trip
//! behaviour is unit-testable; `src/bin/antc.rs` is a thin argv adapter.

use crate::render_table;
use ant_core::select::PrimitiveCombo;
use ant_nn::data::{blobs, motifs, shapes, Dataset};
use ant_nn::model::{mlp, small_cnn, tiny_transformer, Sequential};
use ant_nn::qat::QuantSpec;
use ant_nn::train::{evaluate, train, TrainConfig};
use ant_nn::NnError;
use ant_runtime::{
    probe, ArtifactError, BatchPolicy, CompiledPlan, Engine, ModelArtifact, Planner, RuntimeError,
};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;
use std::fmt;
use std::path::Path;

/// Structured failure of an `antc` subcommand.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (message includes usage guidance).
    Usage(String),
    /// Artifact (de)serialization failed.
    Artifact(ArtifactError),
    /// Training/quantization failed.
    Nn(NnError),
    /// Plan compilation or serving failed.
    Runtime(RuntimeError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Artifact(e) => write!(f, "{e}"),
            CliError::Nn(e) => write!(f, "{e}"),
            CliError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArtifactError> for CliError {
    fn from(e: ArtifactError) -> Self {
        CliError::Artifact(e)
    }
}

impl From<NnError> for CliError {
    fn from(e: NnError) -> Self {
        CliError::Nn(e)
    }
}

impl From<RuntimeError> for CliError {
    fn from(e: RuntimeError) -> Self {
        CliError::Runtime(e)
    }
}

/// The reference model families `antc quantize` can build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Dense MLP on the blobs task (8 features, 4 classes).
    Mlp,
    /// Small CNN on the 12×12 shapes task.
    Cnn,
    /// Tiny Transformer on the motifs task.
    Transformer,
}

impl ModelKind {
    /// Parses the `--model` flag value.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for unknown names.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "mlp" => Ok(ModelKind::Mlp),
            "cnn" => Ok(ModelKind::Cnn),
            "transformer" => Ok(ModelKind::Transformer),
            other => Err(CliError::Usage(format!(
                "unknown model '{other}' (expected mlp, cnn or transformer)"
            ))),
        }
    }
}

/// Parses the `--combo` flag value (the paper's combination labels).
///
/// # Errors
///
/// [`CliError::Usage`] for unknown labels.
pub fn parse_combo(s: &str) -> Result<PrimitiveCombo, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "int" => Ok(PrimitiveCombo::Int),
        "ip" => Ok(PrimitiveCombo::IntPot),
        "fip" => Ok(PrimitiveCombo::FloatIntPot),
        "ipf" => Ok(PrimitiveCombo::IntPotFlint),
        "fipf" => Ok(PrimitiveCombo::FloatIntPotFlint),
        other => Err(CliError::Usage(format!(
            "unknown combo '{other}' (expected int, ip, fip, ipf or fipf)"
        ))),
    }
}

/// `antc quantize` configuration.
#[derive(Debug, Clone, Copy)]
pub struct QuantizeConfig {
    /// Which reference model family to build.
    pub model: ModelKind,
    /// Bit width handed to Algorithm 2.
    pub bits: u32,
    /// Candidate primitive combination.
    pub combo: PrimitiveCombo,
    /// Pre-quantization training epochs.
    pub epochs: usize,
    /// RNG seed for data, init and training.
    pub seed: u64,
}

impl Default for QuantizeConfig {
    fn default() -> Self {
        QuantizeConfig {
            model: ModelKind::Mlp,
            bits: 4,
            combo: PrimitiveCombo::IntPotFlint,
            epochs: 6,
            seed: 17,
        }
    }
}

fn build_task(kind: ModelKind, seed: u64) -> (Sequential, Dataset) {
    match kind {
        ModelKind::Mlp => (mlp(8, 4, seed), blobs(480, 8, 4, 0.5, seed.wrapping_add(1))),
        ModelKind::Cnn => (small_cnn(4, seed), shapes(240, 0.4, seed.wrapping_add(1))),
        ModelKind::Transformer => (
            tiny_transformer(8, 8, 6, seed),
            motifs(480, 8, 8, 6, seed.wrapping_add(1)),
        ),
    }
}

/// Runs the offline pipeline: train → calibrate → Algorithm-2 selection
/// (through a [`Planner`], so the decisions land in the artifact's cache
/// section) → serialize to `out`. Returns the human-readable report.
///
/// # Errors
///
/// Propagates training, quantization and serialization failures.
pub fn run_quantize<P: AsRef<Path>>(cfg: QuantizeConfig, out: P) -> Result<String, CliError> {
    let (mut model, data) = build_task(cfg.model, cfg.seed);
    let (train_set, test_set) = data.split(0.25);
    if cfg.epochs > 0 {
        train(
            &mut model,
            &train_set,
            TrainConfig {
                epochs: cfg.epochs,
                batch_size: 32,
                lr: 0.05,
                momentum: 0.9,
                seed: cfg.seed,
            },
        )?;
    }
    let fp32_acc = evaluate(&mut model, &test_set)?;
    let calib_indices: Vec<usize> = (0..64.min(train_set.len())).collect();
    let (calib, _) = train_set.batch(&calib_indices);
    let spec = QuantSpec {
        combo: cfg.combo,
        bits: cfg.bits,
        ..QuantSpec::default()
    };
    let mut planner = Planner::new();
    let plan = planner.compile(&mut model, &calib, spec)?;
    let quant_acc = evaluate(&mut model, &test_set)?;
    let artifact = ModelArtifact::from_model(&model)?.with_cache(planner.cache());
    artifact.save_path(&out)?;

    let (packed, f32_bytes) = plan.weight_bytes();
    let mut report = String::new();
    report.push_str(&format!(
        "quantized {:?} model: combo {}, {} bits\n",
        cfg.model,
        cfg.combo.label(),
        cfg.bits
    ));
    report.push_str(&format!(
        "accuracy: fp32 {:.3} -> quantized {:.3}\n",
        fp32_acc, quant_acc
    ));
    let covered = plan
        .layers()
        .iter()
        .filter(|l| !matches!(l, ant_runtime::PlanLayer::Fallback(_)))
        .count();
    report.push_str(&format!(
        "coverage: {:.2} ({covered}/{} layers outside fallback; {} carry packed wire codes)\n",
        plan.coverage(),
        plan.layers().len(),
        plan.packed_layer_count()
    ));
    report.push_str(&format!(
        "weights: {packed} packed bytes vs {f32_bytes} f32 bytes ({:.1}x smaller)\n",
        f32_bytes as f64 / packed.max(1) as f64
    ));
    report.push_str(&format!(
        "cache: {} memoized selection fingerprint(s)\n",
        artifact.cache_entries().len()
    ));
    report.push_str(&format!(
        "wrote {} ({} layers)\n",
        out.as_ref().display(),
        artifact.layer_count()
    ));
    Ok(report)
}

/// Renders the `antc inspect` report: header metadata, the per-layer
/// dtype/bit-width table, and the coverage line.
///
/// Coverage is computed by lenient-compiling the artifact and reading
/// [`ant_runtime::CompiledPlan::coverage`] — the same quantity with the
/// same denominator (all plan layers, fallback included) as the
/// documented API, so the two can never disagree.
///
/// # Errors
///
/// Propagates load and compile failures.
pub fn run_inspect<P: AsRef<Path>>(path: P) -> Result<String, CliError> {
    let bytes = std::fs::read(&path).map_err(|e| CliError::Artifact(ArtifactError::Io(e)))?;
    let info = probe(&bytes[..])?;
    let artifact = ModelArtifact::load(&bytes[..])?;
    let mut plan = None;
    let coverage_line = match artifact.compile() {
        Ok(p) => {
            // Same quantity, same denominator as CompiledPlan::coverage():
            // every plan layer counts, fallback layers included.
            let covered = p
                .layers()
                .iter()
                .filter(|l| !matches!(l, ant_runtime::PlanLayer::Fallback(_)))
                .count();
            let line = format!(
                "coverage: {:.2} ({covered} of {} plan layers packed-executable; \
                 float-typed fallback layers count toward the denominator)",
                p.coverage(),
                p.layers().len()
            );
            plan = Some(p);
            line
        }
        Err(e) => format!("coverage: plan does not compile ({e})"),
    };

    let mut out = String::new();
    out.push_str(&format!(
        "{}: .antm version {}, {} bytes\n",
        path.as_ref().display(),
        info.version,
        bytes.len()
    ));
    for s in &info.sections {
        out.push_str(&format!(
            "  section {}: {} bytes, crc32 {:#010x}\n",
            s.id, s.len, s.crc32
        ));
    }
    out.push('\n');
    let mut rows = Vec::new();
    for (i, l) in artifact.layer_summaries().iter().enumerate() {
        let (dtype, bits, gran, elems, bytes) = if l.weights.is_empty() {
            ("-".to_string(), "-".to_string(), "-", 0, 0)
        } else {
            let dts: Vec<String> = l.weights.iter().map(|w| w.dtype.to_string()).collect();
            let bits: Vec<String> = l
                .weights
                .iter()
                .map(|w| w.dtype.bits().to_string())
                .collect();
            let gran = match l.weights[0].granularity {
                ant_core::Granularity::PerTensor => "tensor",
                ant_core::Granularity::PerChannel => "channel",
            };
            (
                dts.join(","),
                bits.join(","),
                gran,
                l.weights.iter().map(|w| w.elements).sum::<usize>(),
                l.weights.iter().map(|w| w.bytes).sum::<usize>(),
            )
        };
        let act = match &l.activation {
            Some((dt, scale)) => format!("{dt} @{scale:.3e}"),
            None => "-".to_string(),
        };
        rows.push(vec![
            i.to_string(),
            l.name.clone(),
            l.kind.to_string(),
            dtype,
            bits,
            gran.to_string(),
            elems.to_string(),
            bytes.to_string(),
            act,
            if l.packed { "yes" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&render_table(
        &[
            "#",
            "name",
            "kind",
            "dtype",
            "bits",
            "gran",
            "elems",
            "bytes",
            "activation",
            "packed",
        ],
        &rows,
    ));
    out.push('\n');
    out.push_str(&coverage_line);
    out.push('\n');
    if let Some(p) = &plan {
        let (packed, f32b) = p.weight_bytes();
        out.push_str(&format!(
            "weights: {packed} packed bytes vs {f32b} f32 bytes\n"
        ));
    }
    out.push_str(&format!(
        "cache: {} memoized selection fingerprint(s)\n",
        artifact.cache_entries().len()
    ));
    Ok(out)
}

/// Loads an artifact, strict-compiles it, and pushes `requests` seeded
/// random rows through a batched [`Engine`], verifying every response
/// against a direct plan execution. Returns the serving report.
///
/// # Errors
///
/// Propagates load/compile/engine failures; a response that disagrees
/// with the direct execution is a [`CliError::Runtime`].
pub fn run_serve<P: AsRef<Path>>(
    path: P,
    requests: usize,
    max_batch: usize,
) -> Result<String, CliError> {
    let artifact = ModelArtifact::load_path(&path)?;
    let plan = artifact.compile_strict()?;
    let coverage = plan.coverage();
    let features = plan.in_features().ok_or_else(|| {
        CliError::Runtime(RuntimeError::Engine(
            "plan does not pin an input width".to_string(),
        ))
    })?;
    let mut reference = plan.clone();
    let engine = Engine::new(
        plan,
        BatchPolicy {
            max_batch: max_batch.max(1),
            ..BatchPolicy::default()
        },
    );
    let inputs = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[requests.max(1), features],
        99,
    );
    let start = std::time::Instant::now();
    let ids: Vec<_> = (0..requests.max(1))
        .map(|i| engine.submit(inputs.channel(i).expect("row")))
        .collect::<Result<_, _>>()?;
    let mut verified = 0usize;
    for (i, id) in ids.into_iter().enumerate() {
        let got = engine.wait(id)?;
        let row = Tensor::from_vec(inputs.channel(i).expect("row").to_vec(), &[1, features])
            .expect("row tensor");
        let want = reference.forward(&row)?;
        if got != want.as_slice() {
            return Err(CliError::Runtime(RuntimeError::Engine(format!(
                "request {i}: batched response diverges from direct execution"
            ))));
        }
        verified += 1;
    }
    let elapsed = start.elapsed();
    let stats = engine.stats();
    Ok(format!(
        "served {verified} request(s), all verified against direct execution\n\
         coverage: {coverage:.2}; {} batches, largest {}\n\
         elapsed: {:.1} ms ({:.0} req/s)\n",
        stats.batches,
        stats.largest_batch,
        elapsed.as_secs_f64() * 1e3,
        verified as f64 / elapsed.as_secs_f64().max(1e-9)
    ))
}

/// `antc bench` configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Reduced request counts for CI smoke runs.
    pub quick: bool,
    /// Where the machine-readable results land.
    pub out: std::path::PathBuf,
    /// RNG seed for model init and request data.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            quick: false,
            out: std::path::PathBuf::from("BENCH_runtime.json"),
            seed: 17,
        }
    }
}

/// One serving workload's measurements.
#[derive(Debug, Clone)]
pub struct BenchWorkload {
    /// Workload name (`mlp`/`cnn`/`attention`).
    pub name: &'static str,
    /// Input feature count.
    pub features: usize,
    /// Batched plan throughput, requests per second (batch 32 through
    /// [`ant_runtime::CompiledPlan::forward_rows`]).
    pub batched_ops_per_sec: f64,
    /// Engine-serving throughput, requests per second (32 concurrent
    /// submissions coalesced by a batched [`Engine`]).
    pub engine_ops_per_sec: f64,
    /// Single-request (batch-1) latency percentiles in microseconds.
    pub p50_us: f64,
    /// 99th percentile batch-1 latency in microseconds.
    pub p99_us: f64,
    /// Steady-state heap allocations per batch-1 request through the
    /// scratch-arena path; `None` when the counting allocator is not
    /// installed (e.g. library callers).
    pub allocs_per_request: Option<f64>,
}

/// The full `antc bench` result set.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Per-workload serving measurements.
    pub workloads: Vec<BenchWorkload>,
    /// Raw dense-GEMM speedup of the `i8` microkernel over the scalar
    /// `i32` reference on a fixed `(64, 256, 256)` shape, single thread.
    pub gemm_speedup_i8_vs_i32: f64,
    /// Whether any tracked property regressed (currently: nonzero
    /// steady-state allocations while counting). CI greps for the
    /// `REGRESSION` marker this sets in the rendered report.
    pub regression: bool,
}

impl BenchReport {
    /// Serializes the report as JSON (hand-rolled: the workspace is
    /// dependency-free by construction).
    pub fn to_json(&self, quick: bool) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"ant-bench/runtime-v1\",\n");
        s.push_str(&format!("  \"quick\": {},\n", quick));
        s.push_str(&format!(
            "  \"gemm_speedup_i8_vs_i32\": {:.3},\n",
            self.gemm_speedup_i8_vs_i32
        ));
        s.push_str(&format!("  \"regression\": {},\n", self.regression));
        s.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"name\": \"{}\", ", w.name));
            s.push_str(&format!("\"features\": {}, ", w.features));
            s.push_str(&format!(
                "\"batched_ops_per_sec\": {:.1}, ",
                w.batched_ops_per_sec
            ));
            s.push_str(&format!(
                "\"engine_ops_per_sec\": {:.1}, ",
                w.engine_ops_per_sec
            ));
            s.push_str(&format!("\"p50_us\": {:.2}, ", w.p50_us));
            s.push_str(&format!("\"p99_us\": {:.2}, ", w.p99_us));
            match w.allocs_per_request {
                Some(a) => s.push_str(&format!("\"allocs_per_request\": {:.4}", a)),
                None => s.push_str("\"allocs_per_request\": null"),
            }
            s.push('}');
            s.push_str(if i + 1 < self.workloads.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Builds the three fixed serving workloads (quantized, strict-compiled).
fn bench_plans(seed: u64) -> Result<Vec<(&'static str, CompiledPlan, usize)>, CliError> {
    use ant_nn::model::{deep_mlp, small_cnn, transformer_block};
    use ant_nn::qat::quantize_model;
    let mut out = Vec::new();
    for (name, mut model, features) in [
        ("mlp", deep_mlp(16, 10, 24, 6, seed), 16usize),
        ("cnn", small_cnn(4, seed), 144),
        ("attention", transformer_block(6, 16, 4, seed), 96),
    ] {
        let calib = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[64, features],
            seed.wrapping_add(3),
        );
        quantize_model(&mut model, &calib, QuantSpec::default())?;
        let plan = CompiledPlan::from_quantized_strict(&model)?;
        out.push((name, plan, features));
    }
    Ok(out)
}

/// Times `iters` runs of `f` and returns seconds per run.
fn time_per_iter<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters.max(1) as f64
}

/// Runs the fixed MLP/CNN/attention serving workloads and measures
/// throughput, latency percentiles, steady-state allocations per request
/// and the raw microkernel speedup. Pure measurement — rendering and the
/// JSON artifact happen in [`run_bench`].
///
/// # Errors
///
/// Propagates quantization/compilation/engine failures.
pub fn measure_bench(cfg: &BenchConfig) -> Result<BenchReport, CliError> {
    let (warmup, requests, batch_iters) = if cfg.quick {
        (8, 64, 10)
    } else {
        (32, 512, 100)
    };
    const BATCH: usize = 32;
    let counting = crate::alloc::is_counting();
    let mut workloads = Vec::new();
    for (name, mut plan, features) in bench_plans(cfg.seed)? {
        let x = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[BATCH, features],
            cfg.seed.wrapping_add(9),
        );
        let rows: Vec<&[f32]> = (0..BATCH)
            .map(|i| &x.as_slice()[i * features..(i + 1) * features])
            .collect();
        let mut out = Vec::new();
        // Warmup: drive every scratch buffer to its high-water mark for
        // both batch shapes.
        for _ in 0..warmup {
            plan.forward_rows(x.as_slice(), BATCH, &mut out)?;
            plan.forward_rows(rows[0], 1, &mut out)?;
        }
        // Steady-state allocation count over single-row requests.
        let before = crate::alloc::alloc_count();
        for i in 0..requests {
            plan.forward_rows(rows[i % BATCH], 1, &mut out)?;
        }
        let allocs = crate::alloc::alloc_count() - before;
        let allocs_per_request = counting.then(|| allocs as f64 / requests as f64);
        // Batch-1 latency distribution.
        let mut lat_us: Vec<f64> = (0..requests)
            .map(|i| {
                let t = std::time::Instant::now();
                plan.forward_rows(rows[i % BATCH], 1, &mut out)
                    .map(|()| t.elapsed().as_secs_f64() * 1e6)
            })
            .collect::<Result<_, _>>()?;
        lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
        // Batched throughput.
        let per_batch = time_per_iter(batch_iters, || {
            plan.forward_rows(x.as_slice(), BATCH, &mut out)
                .expect("benched forward");
        });
        // Engine serving throughput (32 concurrent, coalesced).
        let engine = Engine::new(
            plan,
            BatchPolicy {
                max_batch: BATCH,
                max_wait: std::time::Duration::from_millis(1),
            },
        );
        for row in &rows {
            let id = engine.submit(row).map_err(CliError::Runtime)?;
            engine.wait(id).map_err(CliError::Runtime)?;
        }
        let per_wave = time_per_iter(batch_iters.min(40), || {
            let ids: Vec<_> = rows
                .iter()
                .map(|row| engine.submit(row).expect("submit"))
                .collect();
            for id in ids {
                engine.wait(id).expect("result");
            }
        });
        workloads.push(BenchWorkload {
            name,
            features,
            batched_ops_per_sec: BATCH as f64 / per_batch,
            engine_ops_per_sec: BATCH as f64 / per_wave,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            allocs_per_request,
        });
    }
    // Raw kernel comparison: the acceptance-criteria dense-GEMM shape.
    let gemm_speedup_i8_vs_i32 = {
        use ant_runtime::gemm::{int_gemm, PanelGemm};
        let (m, k, n) = (64usize, 256usize, 256usize);
        let b32: Vec<i32> = (0..n * k).map(|i| (i % 129) as i32 - 64).collect();
        let a32: Vec<i32> = (0..m * k).map(|i| (i % 127) as i32 - 63).collect();
        let a8: Vec<i8> = a32.iter().map(|&v| v as i8).collect();
        let b8: Vec<i8> = b32.iter().map(|&v| v as i8).collect();
        let packed = PanelGemm::pack(&b8, n, k, 127);
        let pool = ant_runtime::WorkerPool::global();
        let mut acc = vec![0i64; m * n];
        let iters = if cfg.quick { 20 } else { 200 };
        int_gemm(&a32, &b32, m, k, n, &mut acc); // warm
        let t_i32 = time_per_iter(iters, || int_gemm(&a32, &b32, m, k, n, &mut acc));
        packed.matmul(&a8, m, &mut acc, pool, 1); // warm
        let t_i8 = time_per_iter(iters, || packed.matmul(&a8, m, &mut acc, pool, 1));
        t_i32 / t_i8
    };
    let regression = workloads
        .iter()
        .any(|w| w.allocs_per_request.is_some_and(|a| a > 0.0));
    Ok(BenchReport {
        workloads,
        gemm_speedup_i8_vs_i32,
        regression,
    })
}

/// `antc bench`: measure, render the human table, and write the
/// machine-readable `BENCH_runtime.json`.
///
/// # Errors
///
/// Propagates measurement and file-write failures.
pub fn run_bench(cfg: BenchConfig) -> Result<String, CliError> {
    let report = measure_bench(&cfg)?;
    std::fs::write(&cfg.out, report.to_json(cfg.quick))
        .map_err(|e| CliError::Artifact(ArtifactError::Io(e)))?;
    let mut rows = Vec::new();
    for w in &report.workloads {
        rows.push(vec![
            w.name.to_string(),
            w.features.to_string(),
            format!("{:.0}", w.batched_ops_per_sec),
            format!("{:.0}", w.engine_ops_per_sec),
            format!("{:.1}", w.p50_us),
            format!("{:.1}", w.p99_us),
            match w.allocs_per_request {
                Some(a) => format!("{a:.2}"),
                None => "n/a".to_string(),
            },
        ]);
    }
    let mut out = render_table(
        &[
            "workload",
            "features",
            "batched req/s",
            "engine req/s",
            "p50 µs",
            "p99 µs",
            "allocs/req",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\ndense GEMM (64x256x256): i8 microkernel {:.2}x vs scalar i32 reference\n",
        report.gemm_speedup_i8_vs_i32
    ));
    if report.regression {
        out.push_str("REGRESSION: nonzero steady-state allocations per request\n");
    }
    out.push_str(&format!("wrote {}\n", cfg.out.display()));
    Ok(out)
}

/// Usage text for the binary.
pub const USAGE: &str = "antc — ANT quantized-model artifact tool

USAGE:
    antc quantize --out <file.antm> [--model mlp|cnn|transformer]
                  [--bits N] [--combo int|ip|fip|ipf|fipf]
                  [--epochs N] [--seed N]
    antc inspect <file.antm>
    antc serve <file.antm> [--requests N] [--batch N]
    antc bench [--quick] [--out <file.json>] [--seed N]

The quantize subcommand trains a reference model, runs Algorithm-2 type
selection through a memoizing Planner, and saves the packed result (wire
codes + selection-cache fingerprints) as a versioned .antm artifact.
inspect dumps the header, section table and per-layer selections.
serve reloads the artifact, strict-compiles it straight from the wire
codes and smoke-serves verified batched requests.
bench runs fixed MLP/CNN/attention serving workloads through the packed
runtime and writes BENCH_runtime.json (throughput, p50/p99 latency,
steady-state allocations per request, microkernel speedup) so the perf
trajectory is tracked across changes.";

/// Parses argv (without the program name) and runs the selected
/// subcommand, returning its report.
///
/// # Errors
///
/// [`CliError::Usage`] on bad arguments, otherwise the subcommand's
/// failure.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n\n{USAGE}"));
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| usage("missing subcommand"))?;
    match cmd.as_str() {
        "quantize" => {
            let mut cfg = QuantizeConfig::default();
            let mut out: Option<String> = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--out" => out = Some(value("--out")?),
                    "--model" => cfg.model = ModelKind::parse(&value("--model")?)?,
                    "--bits" => {
                        cfg.bits = value("--bits")?
                            .parse()
                            .map_err(|_| usage("--bits needs an integer"))?
                    }
                    "--combo" => cfg.combo = parse_combo(&value("--combo")?)?,
                    "--epochs" => {
                        cfg.epochs = value("--epochs")?
                            .parse()
                            .map_err(|_| usage("--epochs needs an integer"))?
                    }
                    "--seed" => {
                        cfg.seed = value("--seed")?
                            .parse()
                            .map_err(|_| usage("--seed needs an integer"))?
                    }
                    other => return Err(usage(&format!("unknown flag '{other}'"))),
                }
            }
            let out = out.ok_or_else(|| usage("quantize requires --out <file.antm>"))?;
            run_quantize(cfg, out)
        }
        "inspect" => match rest {
            [path] => run_inspect(path),
            _ => Err(usage("inspect takes exactly one artifact path")),
        },
        "serve" => {
            let (path, rest) = rest
                .split_first()
                .ok_or_else(|| usage("serve requires an artifact path"))?;
            let mut requests = 256usize;
            let mut batch = 32usize;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--requests" => {
                        requests = value("--requests")?
                            .parse()
                            .map_err(|_| usage("--requests needs an integer"))?
                    }
                    "--batch" => {
                        batch = value("--batch")?
                            .parse()
                            .map_err(|_| usage("--batch needs an integer"))?
                    }
                    other => return Err(usage(&format!("unknown flag '{other}'"))),
                }
            }
            run_serve(path, requests, batch)
        }
        "bench" => {
            let mut cfg = BenchConfig::default();
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--quick" => cfg.quick = true,
                    "--out" => cfg.out = value("--out")?.into(),
                    "--seed" => {
                        cfg.seed = value("--seed")?
                            .parse()
                            .map_err(|_| usage("--seed needs an integer"))?
                    }
                    other => return Err(usage(&format!("unknown flag '{other}'"))),
                }
            }
            run_bench(cfg)
        }
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(usage(&format!("unknown subcommand '{other}'"))),
    }
}
