//! The `antc` command-line tool: train/calibrate → select → save a
//! `.antm` artifact (`quantize`), dump its contents (`inspect`), and
//! smoke-serve it through the batched engine (`serve`).
//!
//! The subcommand logic lives here (not in the binary) so the round-trip
//! behaviour is unit-testable; `src/bin/antc.rs` is a thin argv adapter.

use crate::json::Json;
use crate::render_table;
use ant_core::select::PrimitiveCombo;
use ant_nn::data::{blobs, motifs, shapes, Dataset};
use ant_nn::model::{decoder_block, mlp, small_cnn, tiny_transformer, Sequential};
use ant_nn::qat::QuantSpec;
use ant_nn::train::{evaluate, train, TrainConfig};
use ant_nn::NnError;
use ant_obs::export::{chrome_trace, prometheus_text};
use ant_obs::{Snapshot, Value};
use ant_runtime::{
    load_copies, probe, ArtifactError, BatchPolicy, CompiledPlan, Engine, MappedArtifact,
    ModelArtifact, Planner, RuntimeError, FORMAT_VERSION,
};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;
use std::fmt;
use std::path::Path;

/// Structured failure of an `antc` subcommand.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (message includes usage guidance).
    Usage(String),
    /// Artifact (de)serialization failed.
    Artifact(ArtifactError),
    /// Training/quantization failed.
    Nn(NnError),
    /// Plan compilation or serving failed.
    Runtime(RuntimeError),
    /// `antc loadgen` could not reach or drive the daemon.
    Loadgen(String),
    /// `antc generate` could not stream tokens from the daemon.
    Generate(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Artifact(e) => write!(f, "{e}"),
            CliError::Nn(e) => write!(f, "{e}"),
            CliError::Runtime(e) => write!(f, "{e}"),
            CliError::Loadgen(msg) => write!(f, "loadgen: {msg}"),
            CliError::Generate(msg) => write!(f, "generate: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArtifactError> for CliError {
    fn from(e: ArtifactError) -> Self {
        CliError::Artifact(e)
    }
}

impl From<NnError> for CliError {
    fn from(e: NnError) -> Self {
        CliError::Nn(e)
    }
}

impl From<RuntimeError> for CliError {
    fn from(e: RuntimeError) -> Self {
        CliError::Runtime(e)
    }
}

/// The reference model families `antc quantize` can build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Dense MLP on the blobs task (8 features, 4 classes).
    Mlp,
    /// Small CNN on the 12×12 shapes task.
    Cnn,
    /// Tiny Transformer on the motifs task.
    Transformer,
    /// Causal decoder (untrained generative reference): the model kind
    /// `antd`'s `/generate` endpoint and the decode bench serve.
    Decoder,
}

impl ModelKind {
    /// Parses the `--model` flag value.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for unknown names.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "mlp" => Ok(ModelKind::Mlp),
            "cnn" => Ok(ModelKind::Cnn),
            "transformer" => Ok(ModelKind::Transformer),
            "decoder" => Ok(ModelKind::Decoder),
            other => Err(CliError::Usage(format!(
                "unknown model '{other}' (expected mlp, cnn, transformer or decoder)"
            ))),
        }
    }
}

/// Parses the `--combo` flag value (the paper's combination labels).
///
/// # Errors
///
/// [`CliError::Usage`] for unknown labels.
pub fn parse_combo(s: &str) -> Result<PrimitiveCombo, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "int" => Ok(PrimitiveCombo::Int),
        "ip" => Ok(PrimitiveCombo::IntPot),
        "fip" => Ok(PrimitiveCombo::FloatIntPot),
        "ipf" => Ok(PrimitiveCombo::IntPotFlint),
        "fipf" => Ok(PrimitiveCombo::FloatIntPotFlint),
        other => Err(CliError::Usage(format!(
            "unknown combo '{other}' (expected int, ip, fip, ipf or fipf)"
        ))),
    }
}

/// `antc quantize` configuration.
#[derive(Debug, Clone, Copy)]
pub struct QuantizeConfig {
    /// Which reference model family to build.
    pub model: ModelKind,
    /// Bit width handed to Algorithm 2.
    pub bits: u32,
    /// Candidate primitive combination.
    pub combo: PrimitiveCombo,
    /// Pre-quantization training epochs.
    pub epochs: usize,
    /// RNG seed for data, init and training.
    pub seed: u64,
}

impl Default for QuantizeConfig {
    fn default() -> Self {
        QuantizeConfig {
            model: ModelKind::Mlp,
            bits: 4,
            combo: PrimitiveCombo::IntPotFlint,
            epochs: 6,
            seed: 17,
        }
    }
}

fn build_task(kind: ModelKind, seed: u64) -> (Sequential, Dataset) {
    match kind {
        ModelKind::Mlp => (mlp(8, 4, seed), blobs(480, 8, 4, 0.5, seed.wrapping_add(1))),
        ModelKind::Cnn => (small_cnn(4, seed), shapes(240, 0.4, seed.wrapping_add(1))),
        ModelKind::Transformer => (
            tiny_transformer(8, 8, 6, seed),
            motifs(480, 8, 8, 6, seed.wrapping_add(1)),
        ),
        // No labeled task exists for the decoder: run_quantize branches
        // into quantize_decoder before ever building one.
        ModelKind::Decoder => unreachable!("decoder quantize path never builds a labeled task"),
    }
}

/// Runs the offline pipeline: train → calibrate → Algorithm-2 selection
/// (through a [`Planner`], so the decisions land in the artifact's cache
/// section) → serialize to `out`. Returns the human-readable report.
///
/// # Errors
///
/// Propagates training, quantization and serialization failures.
pub fn run_quantize<P: AsRef<Path>>(cfg: QuantizeConfig, out: P) -> Result<String, CliError> {
    if cfg.model == ModelKind::Decoder {
        return quantize_decoder(cfg, out);
    }
    let (mut model, data) = build_task(cfg.model, cfg.seed);
    let (train_set, test_set) = data.split(0.25);
    if cfg.epochs > 0 {
        train(
            &mut model,
            &train_set,
            TrainConfig {
                epochs: cfg.epochs,
                batch_size: 32,
                lr: 0.05,
                momentum: 0.9,
                seed: cfg.seed,
            },
        )?;
    }
    let fp32_acc = evaluate(&mut model, &test_set)?;
    let calib_indices: Vec<usize> = (0..64.min(train_set.len())).collect();
    let (calib, _) = train_set.batch(&calib_indices);
    let spec = QuantSpec {
        combo: cfg.combo,
        bits: cfg.bits,
        ..QuantSpec::default()
    };
    let mut planner = Planner::new();
    let plan = planner.compile(&mut model, &calib, spec)?;
    let quant_acc = evaluate(&mut model, &test_set)?;
    let artifact = ModelArtifact::from_model(&model)?.with_cache(planner.cache());
    artifact.save_path(&out)?;

    let (packed, f32_bytes) = plan.weight_bytes();
    let mut report = String::new();
    report.push_str(&format!(
        "quantized {:?} model: combo {}, {} bits\n",
        cfg.model,
        cfg.combo.label(),
        cfg.bits
    ));
    report.push_str(&format!(
        "accuracy: fp32 {:.3} -> quantized {:.3}\n",
        fp32_acc, quant_acc
    ));
    let covered = plan
        .layers()
        .iter()
        .filter(|l| !matches!(l, ant_runtime::PlanLayer::Fallback(_)))
        .count();
    report.push_str(&format!(
        "coverage: {:.2} ({covered}/{} layers outside fallback; {} carry packed wire codes)\n",
        plan.coverage(),
        plan.layers().len(),
        plan.packed_layer_count()
    ));
    report.push_str(&format!(
        "weights: {packed} packed bytes vs {f32_bytes} f32 bytes ({:.1}x smaller)\n",
        f32_bytes as f64 / packed.max(1) as f64
    ));
    report.push_str(&format!(
        "cache: {} memoized selection fingerprint(s)\n",
        artifact.cache_entries().len()
    ));
    report.push_str(&format!(
        "wrote {} ({} layers)\n",
        out.as_ref().display(),
        artifact.layer_count()
    ));
    Ok(report)
}

/// Sequence length the reference decoder artifact is built at. The
/// runtime derives the token count from the input at every call, so
/// sessions may hold more tokens than this — it only sizes calibration.
const DECODER_SEQ: usize = 32;
/// Embedding width of the reference decoder; `antd` exposes it as the
/// synthetic vocabulary for `/generate`.
const DECODER_DIM: usize = 16;
/// Causal attention depth of the reference decoder.
const DECODER_DEPTH: usize = 2;

/// The decoder branch of `antc quantize`: there is no classifier head
/// (the model emits one row per token), so the labeled-dataset
/// train/evaluate steps are meaningless — calibration runs on Gaussian
/// token rows and the report describes the decode surface (token dim,
/// causal layers, KV bytes per token) instead of accuracy.
fn quantize_decoder<P: AsRef<Path>>(cfg: QuantizeConfig, out: P) -> Result<String, CliError> {
    let mut model = decoder_block(DECODER_SEQ, DECODER_DIM, DECODER_DEPTH, cfg.seed);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[24, DECODER_SEQ * DECODER_DIM],
        cfg.seed.wrapping_add(1),
    );
    let spec = QuantSpec {
        combo: cfg.combo,
        bits: cfg.bits,
        ..QuantSpec::default()
    };
    let mut planner = Planner::new();
    let plan = planner.compile(&mut model, &calib, spec)?;
    let artifact = ModelArtifact::from_model(&model)?.with_cache(planner.cache());
    artifact.save_path(&out)?;

    let causal = plan
        .layers()
        .iter()
        .filter(|l| matches!(l, ant_runtime::PlanLayer::PackedCausalAttn(_)))
        .count();
    let kv_per_token = {
        let session = plan.open_session(DECODER_SEQ)?;
        session.kv_bytes() / DECODER_SEQ
    };
    let (packed, f32_bytes) = plan.weight_bytes();
    let mut report = String::new();
    report.push_str(&format!(
        "quantized Decoder model: combo {}, {} bits (untrained generative reference; \
         accuracy not applicable)\n",
        cfg.combo.label(),
        cfg.bits
    ));
    report.push_str(&format!(
        "decode: token dim {} (synthetic vocabulary), {causal} causal attention layer(s), \
         {kv_per_token} KV bytes/token\n",
        plan.token_dim()
            .expect("decoder_block always compiles causal"),
    ));
    report.push_str(&format!(
        "weights: {packed} packed bytes vs {f32_bytes} f32 bytes ({:.1}x smaller)\n",
        f32_bytes as f64 / packed.max(1) as f64
    ));
    report.push_str(&format!(
        "wrote {} ({} layers)\n",
        out.as_ref().display(),
        artifact.layer_count()
    ));
    Ok(report)
}

/// Renders the `antc inspect` report: header metadata, the per-layer
/// dtype/bit-width table, and the coverage line.
///
/// Coverage is computed by lenient-compiling the artifact and reading
/// [`ant_runtime::CompiledPlan::coverage`] — the same quantity with the
/// same denominator (all plan layers, fallback included) as the
/// documented API, so the two can never disagree.
///
/// # Errors
///
/// Propagates load and compile failures.
pub fn run_inspect<P: AsRef<Path>>(path: P) -> Result<String, CliError> {
    let bytes = std::fs::read(&path).map_err(|e| CliError::Artifact(ArtifactError::Io(e)))?;
    let info = probe(&bytes[..])?;
    let copies_before = load_copies();
    let mapped = MappedArtifact::open(&path)?;
    let copies = load_copies() - copies_before;
    let artifact = mapped.artifact();
    let mut plan = None;
    let coverage_line = match mapped.compile() {
        Ok(p) => {
            // Same quantity, same denominator as CompiledPlan::coverage():
            // every plan layer counts, fallback layers included.
            let covered = p
                .layers()
                .iter()
                .filter(|l| !matches!(l, ant_runtime::PlanLayer::Fallback(_)))
                .count();
            let line = format!(
                "coverage: {:.2} ({covered} of {} plan layers packed-executable; \
                 float-typed fallback layers count toward the denominator)",
                p.coverage(),
                p.layers().len()
            );
            plan = Some(p);
            line
        }
        Err(e) => format!("coverage: plan does not compile ({e})"),
    };

    let mut out = String::new();
    out.push_str(&format!(
        "{}: .antm version {}, {} bytes\n",
        path.as_ref().display(),
        info.version,
        bytes.len()
    ));
    for s in &info.sections {
        let align = if s.offset % 64 == 0 {
            "64-byte aligned"
        } else {
            "unaligned"
        };
        out.push_str(&format!(
            "  section {}: offset {} ({align}), {} bytes, crc32 {:#010x}\n",
            s.id, s.offset, s.len, s.crc32
        ));
    }
    let storage = if mapped.is_zero_copy() {
        "mmap zero-copy (wire codes and panel images borrowed from the file mapping)"
    } else if info.version >= 2 {
        "mmap with owned fallback (some ranges copied)"
    } else {
        "owned (v1: eager CRC, decode-and-copy load)"
    };
    out.push_str(&format!("storage: {storage}\n"));
    out.push_str(&format!("on-load weight-byte copies: {copies}\n"));
    out.push('\n');
    let mut rows = Vec::new();
    for (i, l) in artifact.layer_summaries().iter().enumerate() {
        let (dtype, bits, gran, elems, bytes) = if l.weights.is_empty() {
            ("-".to_string(), "-".to_string(), "-", 0, 0)
        } else {
            let dts: Vec<String> = l.weights.iter().map(|w| w.dtype.to_string()).collect();
            let bits: Vec<String> = l
                .weights
                .iter()
                .map(|w| w.dtype.bits().to_string())
                .collect();
            let gran = match l.weights[0].granularity {
                ant_core::Granularity::PerTensor => "tensor",
                ant_core::Granularity::PerChannel => "channel",
            };
            (
                dts.join(","),
                bits.join(","),
                gran,
                l.weights.iter().map(|w| w.elements).sum::<usize>(),
                l.weights.iter().map(|w| w.bytes).sum::<usize>(),
            )
        };
        let act = match &l.activation {
            Some((dt, scale)) => format!("{dt} @{scale:.3e}"),
            None => "-".to_string(),
        };
        rows.push(vec![
            i.to_string(),
            l.name.clone(),
            l.kind.to_string(),
            dtype,
            bits,
            gran.to_string(),
            elems.to_string(),
            bytes.to_string(),
            act,
            if l.packed { "yes" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&render_table(
        &[
            "#",
            "name",
            "kind",
            "dtype",
            "bits",
            "gran",
            "elems",
            "bytes",
            "activation",
            "packed",
        ],
        &rows,
    ));
    out.push('\n');
    out.push_str(&coverage_line);
    out.push('\n');
    if let Some(p) = &plan {
        let (packed, f32b) = p.weight_bytes();
        out.push_str(&format!(
            "weights: {packed} packed bytes vs {f32b} f32 bytes\n"
        ));
    }
    out.push_str(&format!(
        "cache: {} memoized selection fingerprint(s)\n",
        artifact.cache_entries().len()
    ));
    let snap = ant_obs::global().snapshot();
    let counter = |fam: &str| {
        snap.get(fam, None).and_then(|s| match &s.value {
            Value::Counter(v) => Some(*v),
            _ => None,
        })
    };
    match (
        counter("ant_selection_cache_hits_total"),
        counter("ant_selection_cache_misses_total"),
    ) {
        (Some(hits), Some(misses)) => out.push_str(&format!(
            "selection cache this process: {hits} hit(s), {misses} miss(es) (telemetry registry)\n"
        )),
        _ => out.push_str(
            "selection cache this process: counters unavailable (runtime built without the obs feature)\n",
        ),
    }
    Ok(out)
}

/// Loads an artifact, strict-compiles it, and pushes `requests` seeded
/// random rows through a batched [`Engine`], verifying every response
/// against a direct plan execution. Returns the serving report.
///
/// With `metrics_dump`, the process-wide telemetry registry is rendered
/// in the Prometheus text exposition format to that file after the run
/// (queue depth, batch-size distribution, submit→dispatch wait,
/// dispatch→done service time, per-layer-kind timings, …).
///
/// # Errors
///
/// Propagates load/compile/engine failures; a response that disagrees
/// with the direct execution is a [`CliError::Runtime`].
pub fn run_serve<P: AsRef<Path>>(
    path: P,
    requests: usize,
    max_batch: usize,
    metrics_dump: Option<&Path>,
) -> Result<String, CliError> {
    let mapped = MappedArtifact::open(&path)?;
    let plan = mapped.compile_strict()?;
    let storage = if mapped.is_zero_copy() {
        "mmap zero-copy"
    } else {
        "owned"
    };
    let coverage = plan.coverage();
    let features = plan.in_features().ok_or_else(|| {
        CliError::Runtime(RuntimeError::Engine(
            "plan does not pin an input width".to_string(),
        ))
    })?;
    let mut reference = plan.clone();
    let engine = Engine::new(
        plan,
        BatchPolicy {
            max_batch: max_batch.max(1),
            // Every request is submitted before the first wait below;
            // size the admission valve for that open-loop burst so a
            // large --requests run is not shed with `Overloaded`.
            max_queue: requests.max(BatchPolicy::default().max_queue),
            ..BatchPolicy::default()
        },
    );
    let inputs = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[requests.max(1), features],
        99,
    );
    let start = std::time::Instant::now();
    let ids: Vec<_> = (0..requests.max(1))
        .map(|i| engine.submit(inputs.channel(i).expect("row")))
        .collect::<Result<_, _>>()?;
    let mut verified = 0usize;
    for (i, id) in ids.into_iter().enumerate() {
        let got = engine.wait(id)?;
        let row = Tensor::from_vec(inputs.channel(i).expect("row").to_vec(), &[1, features])
            .expect("row tensor");
        let want = reference.forward(&row)?;
        if got != want.as_slice() {
            return Err(CliError::Runtime(RuntimeError::Engine(format!(
                "request {i}: batched response diverges from direct execution"
            ))));
        }
        verified += 1;
    }
    let elapsed = start.elapsed();
    let stats = engine.stats();
    let mut report = format!(
        "served {verified} request(s), all verified against direct execution\n\
         coverage: {coverage:.2}; {} batches, largest {}; weights {storage}\n\
         elapsed: {:.1} ms ({:.0} req/s)\n",
        stats.batches,
        stats.largest_batch,
        elapsed.as_secs_f64() * 1e3,
        verified as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if let Some(dump) = metrics_dump {
        let text = prometheus_text(&ant_obs::global().snapshot());
        std::fs::write(dump, &text).map_err(|e| CliError::Artifact(ArtifactError::Io(e)))?;
        report.push_str(&format!(
            "metrics: wrote {} ({} series line(s), Prometheus text format)\n",
            dump.display(),
            text.lines().filter(|l| !l.starts_with('#')).count()
        ));
    }
    Ok(report)
}

/// `antc verify`: the integrity gate the lazy v2 load path defers to.
/// Checks every section CRC, re-parses the records, and recomputes the
/// `PANL` execution images from the wire codes, comparing bit-for-bit.
///
/// # Errors
///
/// Structured [`ArtifactError`]s for any corruption, truncation or
/// panel/wire-code disagreement.
pub fn run_verify<P: AsRef<Path>>(path: P) -> Result<String, CliError> {
    let info = ModelArtifact::verify_path(&path)?;
    let mut out = format!(
        "{}: OK (.antm version {})\n",
        path.as_ref().display(),
        info.version
    );
    for s in &info.sections {
        out.push_str(&format!(
            "  section {}: {} bytes, crc32 {:#010x} verified\n",
            s.id, s.len, s.crc32
        ));
    }
    if info.version >= 2 {
        out.push_str("  PANL images match a wire-code recompute bit-for-bit\n");
    }
    Ok(out)
}

/// `antc migrate`: rewrites the artifact at `path` in the current format
/// version, in place. The stream is fully verified first (corruption
/// must not be laundered under a fresh CRC), rewritten to a tempfile in
/// the same directory, then atomically renamed over the original.
///
/// # Errors
///
/// Verification, serialization and I/O failures; on failure the original
/// file is left untouched.
pub fn run_migrate<P: AsRef<Path>>(path: P) -> Result<String, CliError> {
    let path = path.as_ref();
    let io = |e: std::io::Error| CliError::Artifact(ArtifactError::Io(e));
    let bytes = std::fs::read(path).map_err(io)?;
    let from_version = ModelArtifact::verify_bytes(&bytes)?.version;
    let artifact = ModelArtifact::load(&bytes[..])?;
    let mut out = Vec::new();
    artifact.save(&mut out)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".migrate-{}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &out).map_err(io)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(io(e));
    }
    Ok(format!(
        "migrated {}: v{from_version} -> v{} ({} -> {} bytes)\n",
        path.display(),
        FORMAT_VERSION,
        bytes.len(),
        out.len()
    ))
}

/// `antc bench` configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Reduced request counts for CI smoke runs.
    pub quick: bool,
    /// Where the machine-readable results land.
    pub out: std::path::PathBuf,
    /// RNG seed for model init and request data.
    pub seed: u64,
    /// A previous `BENCH_runtime.json` to guard against: any workload
    /// whose batched throughput drops more than `tolerance` below its
    /// baseline sets the `REGRESSION` marker.
    pub baseline: Option<std::path::PathBuf>,
    /// Allowed fractional throughput drop vs the baseline (e.g. `0.08`
    /// = 8%; the instrumentation overhead budget is 2%, the rest is
    /// machine noise allowance for CI).
    pub tolerance: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            quick: false,
            out: std::path::PathBuf::from("BENCH_runtime.json"),
            seed: 17,
            baseline: None,
            tolerance: 0.08,
        }
    }
}

/// One serving workload's measurements.
#[derive(Debug, Clone)]
pub struct BenchWorkload {
    /// Workload name (`mlp`/`cnn`/`attention`).
    pub name: &'static str,
    /// Input feature count.
    pub features: usize,
    /// Batched plan throughput, requests per second (batch 32 through
    /// [`ant_runtime::CompiledPlan::forward_rows`]).
    pub batched_ops_per_sec: f64,
    /// Engine-serving throughput, requests per second (32 concurrent
    /// submissions coalesced by a batched [`Engine`]).
    pub engine_ops_per_sec: f64,
    /// Single-request (batch-1) latency percentiles in microseconds,
    /// derived from a log2-bucketed [`ant_obs::Histogram`] of per-request
    /// nanosecond timings (±12.5% sub-octave resolution).
    pub p50_us: f64,
    /// 90th percentile batch-1 latency in microseconds.
    pub p90_us: f64,
    /// 99th percentile batch-1 latency in microseconds.
    pub p99_us: f64,
    /// 99.9th percentile batch-1 latency in microseconds.
    pub p999_us: f64,
    /// Steady-state heap allocations per batch-1 request through the
    /// scratch-arena path; `None` when the counting allocator is not
    /// installed (e.g. library callers).
    pub allocs_per_request: Option<f64>,
    /// Time-to-serving-ready (load + strict compile) from a v1 artifact,
    /// microseconds: eager CRC, owned copy, LUT decode, panel re-pack.
    pub load_us_v1: f64,
    /// Time-to-serving-ready from a mapped v2 artifact, microseconds:
    /// parse in place, borrow wire codes and pre-packed panel images.
    pub load_us_v2: f64,
    /// Whether the v2 handle achieved the full zero-copy contract
    /// (per-handle check, immune to cross-thread counter noise).
    pub mapped_zero_copy: bool,
    /// `Private_Dirty` kB of the v2 mapping after a full strict compile
    /// (`/proc/self/smaps`): this process's private-RSS share of the
    /// weight pages — 0 means every page stays shared across processes
    /// serving the same artifact. `None` when the measurement is
    /// unavailable (off linux) — which the regression marker treats as
    /// "unknown", never as a clean zero.
    pub mapped_private_dirty_kb: Option<u64>,
    /// Per-stage breakdown read back from the telemetry registry delta
    /// over this workload's measurement windows; `None` when the runtime
    /// was built without its `obs` feature (no hooks, nothing recorded).
    pub stages: Option<WorkloadStages>,
}

/// One plan-layer kind's share of a measurement window, read from the
/// registry delta (`ant_layer_time_ns`/`_macs_total`/`_bytes_total`).
#[derive(Debug, Clone)]
pub struct LayerStage {
    /// Layer-kind label (`packed_linear`, `relu`, …).
    pub kind: String,
    /// Layer executions in the window.
    pub calls: u64,
    /// Summed wall time, microseconds.
    pub total_us: f64,
    /// Fraction of the summed per-layer time across all kinds.
    pub share: f64,
    /// Median per-call wall time, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-call wall time, microseconds.
    pub p99_us: f64,
    /// Derived arithmetic rate, giga-ops/s (2 ops per MAC); 0 for
    /// non-GEMM kinds.
    pub gops: f64,
    /// Derived effective bandwidth, GB/s (bytes touched / wall time).
    pub gbps: f64,
}

/// Engine-stage latency split over a measurement window
/// (`ant_engine_submit_wait_ns` / `ant_engine_service_ns`).
#[derive(Debug, Clone)]
pub struct EngineStages {
    /// Median submit→dispatch wait, microseconds.
    pub submit_wait_p50_us: f64,
    /// p99 submit→dispatch wait, microseconds.
    pub submit_wait_p99_us: f64,
    /// Median dispatch→done batch service time, microseconds.
    pub service_p50_us: f64,
    /// p99 dispatch→done batch service time, microseconds.
    pub service_p99_us: f64,
    /// Mean requests coalesced per executed batch.
    pub mean_batch: f64,
}

/// The full stage breakdown attached to a [`BenchWorkload`].
#[derive(Debug, Clone)]
pub struct WorkloadStages {
    /// Per-layer-kind breakdown of the batch-1 latency window, heaviest
    /// first.
    pub layers: Vec<LayerStage>,
    /// Summed per-layer time as a fraction of the end-to-end
    /// `forward_rows` time over the same window (the self-consistency
    /// check: layer-granularity timing must account for ~all of the
    /// request, budgeted at ±10%).
    pub coverage_of_forward: f64,
    /// Engine submit/service split over the engine-throughput window.
    pub engine: Option<EngineStages>,
}

fn delta_hist<'a>(
    delta: &'a Snapshot,
    fam: &str,
    label: Option<&str>,
) -> Option<&'a ant_obs::HistogramSnapshot> {
    match &delta.get(fam, label)?.value {
        Value::Histogram(h) => Some(h),
        _ => None,
    }
}

fn delta_counter(delta: &Snapshot, fam: &str, label: Option<&str>) -> u64 {
    match delta.get(fam, label).map(|s| &s.value) {
        Some(Value::Counter(v)) => *v,
        _ => 0,
    }
}

/// Extracts the per-layer-kind breakdown and forward-time coverage from
/// a registry delta; `None` when the runtime recorded nothing (obs
/// feature off, or no forward ran in the window).
fn layer_stages(delta: &Snapshot) -> Option<(Vec<LayerStage>, f64)> {
    let forward = delta_hist(delta, "ant_forward_time_ns", None)?;
    if forward.count() == 0 {
        return None;
    }
    let mut layers = Vec::new();
    let mut layer_ns_sum = 0u64;
    for kind in ant_runtime::obs::LAYER_KINDS {
        let kind = kind.as_str();
        let Some(time) = delta_hist(delta, "ant_layer_time_ns", Some(kind)) else {
            continue;
        };
        if time.count() == 0 {
            continue;
        }
        let ns = time.sum();
        layer_ns_sum += ns;
        let macs = delta_counter(delta, "ant_layer_macs_total", Some(kind));
        let bytes = delta_counter(delta, "ant_layer_bytes_total", Some(kind));
        layers.push(LayerStage {
            kind: kind.to_string(),
            calls: time.count(),
            total_us: ns as f64 / 1e3,
            share: 0.0, // filled below once the sum is known
            p50_us: time.quantile(0.50) / 1e3,
            p99_us: time.quantile(0.99) / 1e3,
            gops: 2.0 * macs as f64 / ns.max(1) as f64,
            gbps: bytes as f64 / ns.max(1) as f64,
        });
    }
    for l in &mut layers {
        l.share = l.total_us / (layer_ns_sum as f64 / 1e3).max(1e-9);
    }
    layers.sort_by(|a, b| b.total_us.partial_cmp(&a.total_us).expect("finite totals"));
    Some((layers, layer_ns_sum as f64 / forward.sum().max(1) as f64))
}

/// Extracts the engine submit/service split from a registry delta.
fn engine_stages(delta: &Snapshot) -> Option<EngineStages> {
    let wait = delta_hist(delta, "ant_engine_submit_wait_ns", None)?;
    let service = delta_hist(delta, "ant_engine_service_ns", None)?;
    let batch = delta_hist(delta, "ant_engine_batch_size", None)?;
    if service.count() == 0 {
        return None;
    }
    Some(EngineStages {
        submit_wait_p50_us: wait.quantile(0.50) / 1e3,
        submit_wait_p99_us: wait.quantile(0.99) / 1e3,
        service_p50_us: service.quantile(0.50) / 1e3,
        service_p99_us: service.quantile(0.99) / 1e3,
        mean_batch: batch.mean(),
    })
}

/// The decode workload's measurements: a causal decoder serving several
/// sessions of one-token steps through the packed M-ANT KV cache.
#[derive(Debug, Clone)]
pub struct DecodeBench {
    /// Aggregate generation rate across all coalesced sessions
    /// (sessions × steps / wall time).
    pub tokens_per_sec: f64,
    /// Median coalesced decode-step latency, microseconds (one step
    /// advances every session by one token).
    pub step_p50_us: f64,
    /// 99th-percentile coalesced decode-step latency, microseconds.
    pub step_p99_us: f64,
    /// Packed KV cache footprint per token of capacity, bytes — fixed at
    /// `open_session`, never grown by appends.
    pub kv_bytes_per_token: usize,
    /// Sessions coalesced per decode step.
    pub sessions: usize,
}

/// The full `antc bench` result set.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Per-workload serving measurements.
    pub workloads: Vec<BenchWorkload>,
    /// Autoregressive decode measurements (tokens/s, per-step latency,
    /// KV bytes/token).
    pub decode: DecodeBench,
    /// Raw dense-GEMM speedup of the `i8` microkernel over the scalar
    /// `i32` reference on a fixed `(64, 256, 256)` shape, single thread.
    pub gemm_speedup_i8_vs_i32: f64,
    /// Whether any tracked property regressed (currently: nonzero
    /// steady-state allocations while counting). CI greps for the
    /// `REGRESSION` marker this sets in the rendered report.
    pub regression: bool,
}

impl BenchReport {
    /// Serializes the report as JSON (hand-rolled: the workspace is
    /// dependency-free by construction). Schema `ant-bench/runtime-v2`:
    /// v1 plus `p90_us`/`p999_us`, a per-workload `stages` object
    /// (per-layer-kind and engine-stage breakdowns from the telemetry
    /// registry; `null` when the runtime has no hooks compiled in), and
    /// a top-level `decode` object (autoregressive tokens/s, per-step
    /// latency percentiles, KV bytes/token).
    pub fn to_json(&self, quick: bool) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"ant-bench/runtime-v2\",\n");
        s.push_str(&format!("  \"quick\": {},\n", quick));
        s.push_str(&format!(
            "  \"gemm_speedup_i8_vs_i32\": {:.3},\n",
            self.gemm_speedup_i8_vs_i32
        ));
        s.push_str(&format!(
            "  \"decode\": {{\"tokens_per_sec\": {:.1}, \"step_p50_us\": {:.2}, \
             \"step_p99_us\": {:.2}, \"kv_bytes_per_token\": {}, \"sessions\": {}}},\n",
            self.decode.tokens_per_sec,
            self.decode.step_p50_us,
            self.decode.step_p99_us,
            self.decode.kv_bytes_per_token,
            self.decode.sessions
        ));
        s.push_str(&format!("  \"regression\": {},\n", self.regression));
        s.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"name\": \"{}\", ", w.name));
            s.push_str(&format!("\"features\": {}, ", w.features));
            s.push_str(&format!(
                "\"batched_ops_per_sec\": {:.1}, ",
                w.batched_ops_per_sec
            ));
            s.push_str(&format!(
                "\"engine_ops_per_sec\": {:.1}, ",
                w.engine_ops_per_sec
            ));
            s.push_str(&format!("\"p50_us\": {:.2}, ", w.p50_us));
            s.push_str(&format!("\"p90_us\": {:.2}, ", w.p90_us));
            s.push_str(&format!("\"p99_us\": {:.2}, ", w.p99_us));
            s.push_str(&format!("\"p999_us\": {:.2}, ", w.p999_us));
            match w.allocs_per_request {
                Some(a) => s.push_str(&format!("\"allocs_per_request\": {:.4}, ", a)),
                None => s.push_str("\"allocs_per_request\": null, "),
            }
            s.push_str(&format!("\"load_us_v1\": {:.1}, ", w.load_us_v1));
            s.push_str(&format!("\"load_us_v2\": {:.1}, ", w.load_us_v2));
            s.push_str(&format!(
                "\"load_speedup_v2\": {:.2}, ",
                w.load_us_v1 / w.load_us_v2.max(1e-9)
            ));
            s.push_str(&format!("\"mapped_zero_copy\": {}, ", w.mapped_zero_copy));
            match w.mapped_private_dirty_kb {
                Some(kb) => s.push_str(&format!("\"mapped_private_dirty_kb\": {kb}, ")),
                None => s.push_str("\"mapped_private_dirty_kb\": null, "),
            }
            match &w.stages {
                None => s.push_str("\"stages\": null"),
                Some(st) => {
                    s.push_str("\"stages\": {\n");
                    s.push_str(&format!(
                        "      \"coverage_of_forward\": {:.4},\n",
                        st.coverage_of_forward
                    ));
                    s.push_str("      \"layers\": [\n");
                    for (j, l) in st.layers.iter().enumerate() {
                        s.push_str(&format!(
                            "        {{\"kind\": \"{}\", \"calls\": {}, \"total_us\": {:.2}, \
                             \"share\": {:.4}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
                             \"gops\": {:.3}, \"gbps\": {:.3}}}{}\n",
                            l.kind,
                            l.calls,
                            l.total_us,
                            l.share,
                            l.p50_us,
                            l.p99_us,
                            l.gops,
                            l.gbps,
                            if j + 1 < st.layers.len() { "," } else { "" }
                        ));
                    }
                    s.push_str("      ],\n");
                    match &st.engine {
                        None => s.push_str("      \"engine\": null\n"),
                        Some(e) => s.push_str(&format!(
                            "      \"engine\": {{\"submit_wait_p50_us\": {:.3}, \
                             \"submit_wait_p99_us\": {:.3}, \"service_p50_us\": {:.3}, \
                             \"service_p99_us\": {:.3}, \"mean_batch\": {:.2}}}\n",
                            e.submit_wait_p50_us,
                            e.submit_wait_p99_us,
                            e.service_p50_us,
                            e.service_p99_us,
                            e.mean_batch
                        )),
                    }
                    s.push_str("    }");
                }
            }
            s.push('}');
            s.push_str(if i + 1 < self.workloads.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Builds the three fixed serving workloads as strict-compiled plans.
fn bench_plans(seed: u64) -> Result<Vec<(&'static str, CompiledPlan, usize)>, CliError> {
    use ant_nn::model::{deep_mlp, transformer_block};
    use ant_nn::qat::quantize_model;
    let mut out = Vec::new();
    for (name, mut model, features) in [
        ("mlp", deep_mlp(16, 10, 24, 6, seed), 16usize),
        ("cnn", small_cnn(4, seed), 144),
        ("attention", transformer_block(6, 16, 4, seed), 96),
    ] {
        let calib = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[64, features],
            seed.wrapping_add(3),
        );
        quantize_model(&mut model, &calib, QuantSpec::default())?;
        let plan = CompiledPlan::from_quantized_strict(&model)?;
        out.push((name, plan, features));
    }
    Ok(out)
}

/// Builds the quantized load-measurement model for one workload name.
///
/// These are scaled-up variants of the serving archetypes, not the
/// serving workloads themselves: the fixed serving models are
/// deliberately tiny (they exist to pin latency percentiles), so
/// constant per-file overhead would mask the per-weight-byte work —
/// eager CRC, wire-code decode, panel re-pack — that the mapped v2 path
/// eliminates. Load times are only meaningful at a realistic weight
/// volume, so each archetype here carries 0.4–1.6M wire codes (scaled
/// down about 10x under `--quick`, which exists for CI smoke and debug
/// test runs).
fn load_scale_model(name: &str, seed: u64, quick: bool) -> Result<Sequential, CliError> {
    use ant_nn::layer::{Conv2d, Dense, MaxPool2, Relu};
    use ant_nn::model::{deep_mlp, transformer_block, NetLayer};
    use ant_nn::qat::quantize_model;
    let (width, ch, dim) = if quick {
        (160, 24, 128)
    } else {
        (512, 64, 384)
    };
    let (mut model, features) = match name {
        "mlp" => (deep_mlp(256, 32, width, 6, seed), 256usize),
        "cnn" => {
            let conv1 = Conv2d::init("conv1", ch, (16, 24, 24), 3, 1, 1, seed);
            let pool1 = MaxPool2::new("pool1", conv1.out_shape());
            let conv2 = Conv2d::init("conv2", 2 * ch, pool1.out_shape(), 3, 1, 1, seed);
            let pool2 = MaxPool2::new("pool2", conv2.out_shape());
            let (c, h, w) = pool2.out_shape();
            let model = Sequential::new()
                .push(NetLayer::Conv(conv1))
                .push(NetLayer::Relu(Relu::new("relu1")))
                .push(NetLayer::Pool(pool1))
                .push(NetLayer::Conv(conv2))
                .push(NetLayer::Relu(Relu::new("relu2")))
                .push(NetLayer::Pool(pool2))
                .push(NetLayer::Dense(Dense::init(
                    "fc",
                    64,
                    c * h * w,
                    seed.wrapping_add(1),
                )));
            (model, 16 * 24 * 24)
        }
        _ => (transformer_block(8, dim, 16, seed), 8 * dim),
    };
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[16, features],
        seed.wrapping_add(5),
    );
    quantize_model(&mut model, &calib, QuantSpec::default())?;
    Ok(model)
}

/// Reads the `Private_Dirty` (in kB) of the `/proc/self/smaps` entry
/// containing `addr`: the per-process RSS cost of a mapping whose pages
/// are otherwise shared with every other process serving the same file.
/// `None` off linux (no smaps to read).
fn mapping_private_dirty_kb(addr: usize) -> Option<u64> {
    let smaps = std::fs::read_to_string("/proc/self/smaps").ok()?;
    let mut in_target = false;
    for line in smaps.lines() {
        if let Some((range, _)) = line.split_once(' ') {
            if let Some((lo, hi)) = range.split_once('-') {
                if let (Ok(lo), Ok(hi)) =
                    (usize::from_str_radix(lo, 16), usize::from_str_radix(hi, 16))
                {
                    in_target = lo <= addr && addr < hi;
                }
            }
        }
        if in_target {
            if let Some(rest) = line.strip_prefix("Private_Dirty:") {
                return rest.trim().trim_end_matches(" kB").trim().parse().ok();
            }
        }
    }
    None
}

/// Measures time-to-serving-ready for one workload archetype (at
/// [`load_scale_model`] size): the legacy owned v1 path (eager CRC +
/// copy + decode + re-pack) against the mapped v2 path (parse in place,
/// adopt pre-packed images). Returns
/// `(v1_us, v2_us, zero_copy, private_dirty_kb)`.
fn measure_load_path(
    name: &str,
    seed: u64,
    iters: usize,
    quick: bool,
) -> Result<(f64, f64, bool, Option<u64>), CliError> {
    let artifact = ModelArtifact::from_model(&load_scale_model(name, seed, quick)?)?;
    let dir = std::env::temp_dir();
    let v1_path = dir.join(format!("antc-bench-{}-{name}-v1.antm", std::process::id()));
    let v2_path = dir.join(format!("antc-bench-{}-{name}-v2.antm", std::process::id()));
    artifact.save_v1_path(&v1_path)?;
    artifact.save_path(&v2_path)?;
    // Force writeback: a freshly-written file's page-cache pages are
    // dirty until flushed, which smaps would report as Private_Dirty of
    // the mapping — noise, not a copy-on-write by this process.
    std::fs::File::open(&v2_path)
        .and_then(|f| f.sync_all())
        .map_err(|e| CliError::Artifact(ArtifactError::Io(e)))?;
    // Warm the page cache and the selection paths once each.
    ModelArtifact::load_path(&v1_path)?.compile_strict()?;
    let mapped = MappedArtifact::open(&v2_path)?;
    mapped.compile_strict()?;
    let zero_copy = mapped.is_zero_copy();
    // Shared-RSS metric: after a full strict compile, how much of the
    // mapping this process dirtied (0 kB = every weight page stays
    // shared, the multi-process serving story).
    let private_dirty_kb = mapping_private_dirty_kb(mapped.mapped_bytes().as_ptr() as usize);
    drop(mapped);
    let t_v1 = time_per_iter(iters, || {
        let plan = ModelArtifact::load_path(&v1_path)
            .expect("v1 load")
            .compile_strict()
            .expect("v1 compile");
        std::hint::black_box(&plan);
    });
    let t_v2 = time_per_iter(iters, || {
        let mapped = MappedArtifact::open(&v2_path).expect("v2 open");
        let plan = mapped.compile_strict().expect("v2 compile");
        std::hint::black_box(&plan);
    });
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();
    Ok((t_v1 * 1e6, t_v2 * 1e6, zero_copy, private_dirty_kb))
}

/// Measures the autoregressive decode workload: a 2-layer causal
/// decoder, several sessions prefillled then advanced one token per
/// step through [`ant_runtime::CompiledPlan::decode_steps`] (the
/// coalesced path the engine's decode phase uses), every step against
/// the packed M-ANT KV cache. Driven through the plan directly — not
/// the engine — so the step latency histogram measures the quantize +
/// attend + project work itself, without batching-policy wait noise.
fn measure_decode(cfg: &BenchConfig) -> Result<DecodeBench, CliError> {
    use ant_nn::model::decoder_block;
    use ant_nn::qat::quantize_model;
    const SESSIONS: usize = 4;
    const WARMUP: usize = 8;
    let (seq, dim) = (8usize, 32usize);
    let steps = if cfg.quick { 64 } else { 256 };
    let mut model = decoder_block(seq, dim, 2, cfg.seed);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[24, seq * dim],
        cfg.seed.wrapping_add(3),
    );
    quantize_model(&mut model, &calib, QuantSpec::default())?;
    let mut plan = CompiledPlan::from_quantized_strict(&model)?;
    // One prefill token plus every decode step must fit: capacity is
    // fixed at open and appends never grow it.
    let capacity = 1 + WARMUP + steps;
    let mut sessions = Vec::new();
    for _ in 0..SESSIONS {
        sessions.push(plan.open_session(capacity)?);
    }
    let toks = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[SESSIONS, dim],
        cfg.seed.wrapping_add(7),
    );
    let mut out = Vec::new();
    for s in &mut sessions {
        plan.prefill(s, &toks.as_slice()[..dim], &mut out)?;
    }
    let step = |plan: &mut CompiledPlan, sessions: &mut Vec<_>, out: &mut Vec<f32>| {
        let mut refs: Vec<&mut _> = sessions.iter_mut().collect();
        plan.decode_steps(&mut refs, toks.as_slice(), out)
    };
    for _ in 0..WARMUP {
        step(&mut plan, &mut sessions, &mut out)?;
    }
    let lat = ant_obs::Histogram::new();
    let start = std::time::Instant::now();
    for _ in 0..steps {
        let t = std::time::Instant::now();
        step(&mut plan, &mut sessions, &mut out)?;
        lat.record(t.elapsed().as_nanos() as u64);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let lat = lat.snapshot();
    Ok(DecodeBench {
        tokens_per_sec: (steps * SESSIONS) as f64 / elapsed.max(1e-9),
        step_p50_us: lat.quantile(0.50) / 1e3,
        step_p99_us: lat.quantile(0.99) / 1e3,
        kv_bytes_per_token: sessions[0].kv_bytes() / capacity,
        sessions: SESSIONS,
    })
}

/// Times `iters` runs of `f` and returns seconds per run.
fn time_per_iter<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters.max(1) as f64
}

/// Runs the fixed MLP/CNN/attention serving workloads and measures
/// throughput, latency percentiles, steady-state allocations per request
/// and the raw microkernel speedup. Pure measurement — rendering and the
/// JSON artifact happen in [`run_bench`].
///
/// # Errors
///
/// Propagates quantization/compilation/engine failures.
pub fn measure_bench(cfg: &BenchConfig) -> Result<BenchReport, CliError> {
    let (warmup, requests, batch_iters) = if cfg.quick {
        (8, 64, 10)
    } else {
        (32, 512, 100)
    };
    const BATCH: usize = 32;
    let counting = crate::alloc::is_counting();
    let load_iters = if cfg.quick { 5 } else { 25 };
    let mut workloads = Vec::new();
    for (name, mut plan, features) in bench_plans(cfg.seed)? {
        let (load_us_v1, load_us_v2, mapped_zero_copy, mapped_private_dirty_kb) =
            measure_load_path(name, cfg.seed, load_iters, cfg.quick)?;
        let x = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[BATCH, features],
            cfg.seed.wrapping_add(9),
        );
        let rows: Vec<&[f32]> = (0..BATCH)
            .map(|i| &x.as_slice()[i * features..(i + 1) * features])
            .collect();
        let mut out = Vec::new();
        // Warmup: drive every scratch buffer to its high-water mark for
        // both batch shapes.
        for _ in 0..warmup {
            plan.forward_rows(x.as_slice(), BATCH, &mut out)?;
            plan.forward_rows(rows[0], 1, &mut out)?;
        }
        // Steady-state allocation count over single-row requests.
        let before = crate::alloc::alloc_count();
        for i in 0..requests {
            plan.forward_rows(rows[i % BATCH], 1, &mut out)?;
        }
        let allocs = crate::alloc::alloc_count() - before;
        let allocs_per_request = counting.then(|| allocs as f64 / requests as f64);
        // Batch-1 latency distribution, recorded into a log2-bucketed
        // histogram (the same primitive the runtime's telemetry uses),
        // bracketed by registry snapshots so the per-layer stage
        // breakdown covers exactly this window.
        let lat = ant_obs::Histogram::new();
        let batch1_before = ant_obs::global().snapshot();
        for i in 0..requests {
            let t = std::time::Instant::now();
            plan.forward_rows(rows[i % BATCH], 1, &mut out)?;
            lat.record(t.elapsed().as_nanos() as u64);
        }
        let batch1_delta = ant_obs::global().snapshot().delta_since(&batch1_before);
        let lat = lat.snapshot();
        let pct = |p: f64| lat.quantile(p) / 1e3;
        // Batched throughput.
        let per_batch = time_per_iter(batch_iters, || {
            plan.forward_rows(x.as_slice(), BATCH, &mut out)
                .expect("benched forward");
        });
        // Engine serving throughput (32 concurrent, coalesced).
        let engine = Engine::new(
            plan,
            BatchPolicy {
                max_batch: BATCH,
                max_wait: std::time::Duration::from_millis(1),
                ..BatchPolicy::default()
            },
        );
        for row in &rows {
            let id = engine.submit(row).map_err(CliError::Runtime)?;
            engine.wait(id).map_err(CliError::Runtime)?;
        }
        let engine_before = ant_obs::global().snapshot();
        let per_wave = time_per_iter(batch_iters.min(40), || {
            let ids: Vec<_> = rows
                .iter()
                .map(|row| engine.submit(row).expect("submit"))
                .collect();
            for id in ids {
                engine.wait(id).expect("result");
            }
        });
        let engine_delta = ant_obs::global().snapshot().delta_since(&engine_before);
        let stages =
            layer_stages(&batch1_delta).map(|(layers, coverage_of_forward)| WorkloadStages {
                layers,
                coverage_of_forward,
                engine: engine_stages(&engine_delta),
            });
        workloads.push(BenchWorkload {
            name,
            features,
            batched_ops_per_sec: BATCH as f64 / per_batch,
            engine_ops_per_sec: BATCH as f64 / per_wave,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
            allocs_per_request,
            load_us_v1,
            load_us_v2,
            mapped_zero_copy,
            mapped_private_dirty_kb,
            stages,
        });
    }
    // Raw kernel comparison: the acceptance-criteria dense-GEMM shape.
    let gemm_speedup_i8_vs_i32 = {
        use ant_runtime::gemm::{int_gemm, PanelGemm};
        let (m, k, n) = (64usize, 256usize, 256usize);
        let b32: Vec<i32> = (0..n * k).map(|i| (i % 129) as i32 - 64).collect();
        let a32: Vec<i32> = (0..m * k).map(|i| (i % 127) as i32 - 63).collect();
        let a8: Vec<i8> = a32.iter().map(|&v| v as i8).collect();
        let b8: Vec<i8> = b32.iter().map(|&v| v as i8).collect();
        let packed = PanelGemm::pack(&b8, n, k, 127);
        let pool = ant_runtime::WorkerPool::global();
        let mut acc = vec![0i64; m * n];
        let iters = if cfg.quick { 20 } else { 200 };
        int_gemm(&a32, &b32, m, k, n, &mut acc); // warm
        let t_i32 = time_per_iter(iters, || int_gemm(&a32, &b32, m, k, n, &mut acc));
        packed.matmul(&a8, m, &mut acc, pool, 1); // warm
        let t_i8 = time_per_iter(iters, || packed.matmul(&a8, m, &mut acc, pool, 1));
        t_i32 / t_i8
    };
    let decode = measure_decode(cfg)?;
    // Zero-copy is only promised where the borrow gate can hold (unix
    // mmap, little-endian hosts); elsewhere the owned fallback is
    // correct, not a regression. The private-dirty budget only applies
    // where the measurement exists: `None` means "unavailable" (no
    // smaps), which must never pass as a clean zero — it is simply not
    // judged, unlike `Some(kb)` past the budget, which fails.
    let expect_zero_copy = cfg!(all(unix, target_endian = "little"));
    let regression = workloads
        .iter()
        .any(|w| w.allocs_per_request.is_some_and(|a| a > 0.0))
        || (expect_zero_copy && workloads.iter().any(|w| !w.mapped_zero_copy))
        || (expect_zero_copy
            && workloads
                .iter()
                .any(|w| w.mapped_private_dirty_kb.is_some_and(|kb| kb > 64)));
    Ok(BenchReport {
        workloads,
        decode,
        gemm_speedup_i8_vs_i32,
        regression,
    })
}

/// Compares a fresh report against a stored baseline JSON (any schema
/// carrying per-workload `batched_ops_per_sec`): a workload more than
/// `tolerance` slower than its baseline sets the regression flag.
/// Returns the rendered comparison lines.
fn compare_baseline(
    report: &mut BenchReport,
    baseline: &Path,
    tolerance: f64,
) -> Result<String, CliError> {
    let text =
        std::fs::read_to_string(baseline).map_err(|e| CliError::Artifact(ArtifactError::Io(e)))?;
    let doc = Json::parse(&text)
        .map_err(|e| CliError::Usage(format!("--baseline {}: {e}", baseline.display())))?;
    let base_workloads = doc.get("workloads").and_then(Json::as_arr).ok_or_else(|| {
        CliError::Usage(format!(
            "--baseline {}: no \"workloads\" array",
            baseline.display()
        ))
    })?;
    let mut out = format!(
        "\nperf guard vs {} (allowed drop {:.0}%):\n",
        baseline.display(),
        tolerance * 100.0
    );
    for w in &report.workloads {
        let base_ops = base_workloads
            .iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(w.name))
            .and_then(|b| b.get("batched_ops_per_sec"))
            .and_then(Json::as_f64);
        match base_ops {
            Some(base) if base > 0.0 => {
                let change = w.batched_ops_per_sec / base - 1.0;
                let ok = change >= -tolerance;
                if !ok {
                    report.regression = true;
                }
                out.push_str(&format!(
                    "  {}: {:.0} req/s vs baseline {:.0} ({:+.1}%) {}\n",
                    w.name,
                    w.batched_ops_per_sec,
                    base,
                    change * 100.0,
                    if ok { "ok" } else { "REGRESSED" }
                ));
            }
            _ => out.push_str(&format!("  {}: no baseline entry, skipped\n", w.name)),
        }
    }
    Ok(out)
}

/// `antc bench`: measure, apply the optional baseline perf guard,
/// render the human table, and write the machine-readable
/// `BENCH_runtime.json` (schema `ant-bench/runtime-v2`).
///
/// # Errors
///
/// Propagates measurement, baseline-parse and file-write failures.
pub fn run_bench(cfg: BenchConfig) -> Result<String, CliError> {
    let mut report = measure_bench(&cfg)?;
    let baseline_lines = match &cfg.baseline {
        Some(b) => Some(compare_baseline(&mut report, b, cfg.tolerance)?),
        None => None,
    };
    std::fs::write(&cfg.out, report.to_json(cfg.quick))
        .map_err(|e| CliError::Artifact(ArtifactError::Io(e)))?;
    let mut rows = Vec::new();
    for w in &report.workloads {
        rows.push(vec![
            w.name.to_string(),
            w.features.to_string(),
            format!("{:.0}", w.batched_ops_per_sec),
            format!("{:.0}", w.engine_ops_per_sec),
            format!("{:.1}", w.p50_us),
            format!("{:.1}", w.p90_us),
            format!("{:.1}", w.p99_us),
            format!("{:.1}", w.p999_us),
            match w.allocs_per_request {
                Some(a) => format!("{a:.2}"),
                None => "n/a".to_string(),
            },
        ]);
    }
    let mut out = render_table(
        &[
            "workload",
            "features",
            "batched req/s",
            "engine req/s",
            "p50 µs",
            "p90 µs",
            "p99 µs",
            "p999 µs",
            "allocs/req",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\ndense GEMM (64x256x256): i8 microkernel {:.2}x vs scalar i32 reference\n",
        report.gemm_speedup_i8_vs_i32
    ));
    out.push_str(&format!(
        "decode ({} sessions coalesced, packed KV): {:.0} tokens/s, \
         per-step p50 {:.1} µs / p99 {:.1} µs, {} KV bytes/token\n",
        report.decode.sessions,
        report.decode.tokens_per_sec,
        report.decode.step_p50_us,
        report.decode.step_p99_us,
        report.decode.kv_bytes_per_token
    ));
    let mut any_stages = false;
    for w in &report.workloads {
        if let Some(st) = &w.stages {
            if !any_stages {
                out.push_str("\nper-stage breakdown (telemetry registry, batch-1 window):\n");
                any_stages = true;
            }
            let top: Vec<String> = st
                .layers
                .iter()
                .take(3)
                .map(|l| format!("{} {:.0}%", l.kind, l.share * 100.0))
                .collect();
            out.push_str(&format!(
                "  {}: layer timing covers {:.0}% of forward; top: {}\n",
                w.name,
                st.coverage_of_forward * 100.0,
                top.join(", ")
            ));
            if let Some(e) = &st.engine {
                out.push_str(&format!(
                    "    engine: submit-wait p50 {:.1} µs / p99 {:.1} µs, service p50 {:.1} µs, mean batch {:.1}\n",
                    e.submit_wait_p50_us, e.submit_wait_p99_us, e.service_p50_us, e.mean_batch
                ));
            }
        }
    }
    if !any_stages {
        out.push_str("\nper-stage breakdown unavailable (runtime built without the obs feature)\n");
    }
    out.push_str(
        "\nartifact load (time-to-serving-ready, load + strict compile,\nload-scale archetype models of ~0.4-1.6M wire codes):\n",
    );
    for w in &report.workloads {
        out.push_str(&format!(
            "  {}: v1 owned {:.0} us -> v2 mapped {:.0} us ({:.1}x faster{})\n",
            w.name,
            w.load_us_v1,
            w.load_us_v2,
            w.load_us_v1 / w.load_us_v2.max(1e-9),
            if w.mapped_zero_copy {
                ", zero-copy"
            } else {
                ", owned fallback"
            }
        ));
        if let Some(kb) = w.mapped_private_dirty_kb {
            out.push_str(&format!(
                "    mapping private-dirty after compile: {kb} kB (weight pages stay process-shared)\n"
            ));
        }
    }
    if let Some(lines) = baseline_lines {
        out.push_str(&lines);
    }
    if report.regression {
        out.push_str(
            "REGRESSION: steady-state allocations, a non-zero-copy mapped load, \
             dirtied weight pages, or throughput below the baseline budget\n",
        );
    }
    out.push_str(&format!("wrote {}\n", cfg.out.display()));
    Ok(out)
}

/// `antc stats` configuration.
#[derive(Debug, Clone)]
pub struct StatsConfig {
    /// Total request rows to drive through the plan.
    pub requests: usize,
    /// Rows per `forward_rows` call.
    pub batch: usize,
    /// Write the full registry in Prometheus text format here.
    pub prom: Option<std::path::PathBuf>,
    /// Write the span rings as a chrome://tracing JSON trace here.
    pub trace: Option<std::path::PathBuf>,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            requests: 256,
            batch: 8,
            prom: None,
            trace: None,
        }
    }
}

/// `antc stats`: drives seeded requests through a strict-compiled
/// artifact and reports the per-layer-kind timing/work breakdown read
/// back from the telemetry registry — calls, total time, share, per-call
/// p50/p99, derived GOPS and effective GB/s — plus the coverage check
/// (summed per-layer time vs end-to-end forward time, budgeted ±10%).
/// Optionally exports the registry (Prometheus text) and the span rings
/// (chrome://tracing JSON).
///
/// # Errors
///
/// Propagates load/compile/forward and export-write failures.
pub fn run_stats<P: AsRef<Path>>(path: P, cfg: StatsConfig) -> Result<String, CliError> {
    let io = |e: std::io::Error| CliError::Artifact(ArtifactError::Io(e));
    let mapped = MappedArtifact::open(&path)?;
    let mut plan = mapped.compile_strict()?;
    let features = plan.in_features().ok_or_else(|| {
        CliError::Runtime(RuntimeError::Engine(
            "plan does not pin an input width".to_string(),
        ))
    })?;
    let batch = cfg.batch.max(1);
    let iters = cfg.requests.max(1).div_ceil(batch);
    let x = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[batch, features],
        42,
    );
    let mut out_buf = Vec::new();
    // Warmup drives scratch buffers to their high-water mark and runs
    // the cold telemetry-registration edge outside the measured window.
    for _ in 0..3 {
        plan.forward_rows(x.as_slice(), batch, &mut out_buf)?;
    }
    let before = ant_obs::global().snapshot();
    let wall = std::time::Instant::now();
    for _ in 0..iters {
        plan.forward_rows(x.as_slice(), batch, &mut out_buf)?;
    }
    let wall = wall.elapsed();
    let delta = ant_obs::global().snapshot().delta_since(&before);

    let mut out = format!(
        "{}: drove {} request row(s) in {iters} forward call(s) of batch {batch} ({:.2} ms wall)\n",
        path.as_ref().display(),
        iters * batch,
        wall.as_secs_f64() * 1e3,
    );
    match layer_stages(&delta) {
        None => out.push_str(
            "\nno telemetry recorded: the runtime was built without its `obs` feature\n\
             (rebuild with default features to get the per-layer breakdown)\n",
        ),
        Some((layers, coverage)) => {
            let mut rows = Vec::new();
            for l in &layers {
                rows.push(vec![
                    l.kind.clone(),
                    l.calls.to_string(),
                    format!("{:.2}", l.total_us / 1e3),
                    format!("{:.1}%", l.share * 100.0),
                    format!("{:.1}", l.p50_us),
                    format!("{:.1}", l.p99_us),
                    if l.gops > 0.0 {
                        format!("{:.2}", l.gops)
                    } else {
                        "-".to_string()
                    },
                    format!("{:.2}", l.gbps),
                ]);
            }
            out.push('\n');
            out.push_str(&render_table(
                &[
                    "layer kind",
                    "calls",
                    "total ms",
                    "share",
                    "p50 µs",
                    "p99 µs",
                    "GOPS",
                    "GB/s",
                ],
                &rows,
            ));
            if let Some(fwd) = delta_hist(&delta, "ant_forward_time_ns", None) {
                out.push_str(&format!(
                    "\nforward: {} call(s), total {:.2} ms, per-call p50 {:.1} µs / p99 {:.1} µs\n",
                    fwd.count(),
                    fwd.sum() as f64 / 1e6,
                    fwd.quantile(0.50) / 1e3,
                    fwd.quantile(0.99) / 1e3,
                ));
            }
            out.push_str(&format!(
                "per-layer timing covers {:.1}% of end-to-end forward time (budget: within 10%)\n",
                coverage * 100.0
            ));
        }
    }
    if let Some(prom) = &cfg.prom {
        let text = prometheus_text(&ant_obs::global().snapshot());
        std::fs::write(prom, &text).map_err(io)?;
        out.push_str(&format!(
            "wrote {} (Prometheus text exposition)\n",
            prom.display()
        ));
    }
    if let Some(trace) = &cfg.trace {
        let events = ant_obs::snapshot_spans();
        std::fs::write(trace, chrome_trace(&events)).map_err(io)?;
        out.push_str(&format!(
            "wrote {} ({} span event(s), chrome://tracing JSON)\n",
            trace.display(),
            events.len()
        ));
    }
    Ok(out)
}

/// Usage text for the binary.
/// Configuration for `antc loadgen` — drive a running `antd` daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Model name to infer against (must be served by the daemon).
    pub model: String,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// How long to drive load.
    pub duration: std::time::Duration,
    /// Merge the results into this `BENCH_runtime.json` under a
    /// top-level `loadgen` key (created if the file does not exist).
    pub out: Option<std::path::PathBuf>,
    /// Scrape `/metrics` afterwards and validate it structurally.
    pub check_metrics: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7171".to_string(),
            model: String::new(),
            concurrency: 4,
            duration: std::time::Duration::from_secs(5),
            out: None,
            check_metrics: false,
        }
    }
}

/// One HTTP exchange on a fresh connection (control-plane calls).
fn http_once(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<(&str, &[u8])>,
) -> Result<crate::http::ClientResponse, CliError> {
    use std::io::BufReader;
    let lg = CliError::Loadgen;
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| lg(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| lg(e.to_string()))?);
    let mut writer = stream;
    crate::http::write_request(&mut writer, method, path, body)
        .map_err(|e| lg(format!("send {path}: {e}")))?;
    crate::http::read_response(&mut reader).map_err(|e| lg(format!("read {path}: {e}")))
}

/// Per-worker tallies, merged after the run.
#[derive(Default)]
struct LoadgenWorker {
    ok: u64,
    /// 429 answers: the daemon's admission queue was full.
    shed_429: u64,
    /// 503 answers: the daemon was recovering (circuit breaker open or
    /// half-open) or draining.
    shed_503: u64,
    /// Re-sends of a shed request after client-side backoff.
    retries: u64,
    errors: u64,
    /// Round-trip latency of each 200, in ns.
    latencies_ns: Vec<u64>,
}

/// Retry budget per logical request: a shed (429/503) answer is retried
/// after exponential backoff this many times before the client moves
/// on. Keeps a recovering daemon from reading as a wall of hard errors
/// while still bounding how long one request can stall a worker.
const LOADGEN_MAX_ATTEMPTS: u32 = 8;

/// `antc loadgen`: drives a running daemon with concurrent keep-alive
/// connections for a fixed duration and reports achieved req/s and
/// round-trip latency percentiles. 429 (overload) and 503 (recovering
/// or draining) responses count as shed load, not errors: the client
/// backs off exponentially and retries under a bounded budget, and the
/// retry rate is reported alongside throughput.
///
/// # Errors
///
/// [`CliError::Loadgen`] when the daemon is unreachable, does not serve
/// `model`, or (`check_metrics`) its exposition fails validation;
/// [`CliError::Artifact`] on `--out` file errors.
pub fn run_loadgen(cfg: LoadgenConfig) -> Result<String, CliError> {
    use std::io::BufReader;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let lg = CliError::Loadgen;
    // Discover the model's input width from the daemon itself.
    let resp = http_once(&cfg.addr, "GET", "/v1/models", None)?;
    if resp.status != 200 {
        return Err(lg(format!("GET /v1/models returned {}", resp.status)));
    }
    let doc = Json::parse(&resp.body_str()).map_err(|e| lg(format!("bad /v1/models body: {e}")))?;
    let models = doc
        .get("models")
        .and_then(Json::as_arr)
        .ok_or_else(|| lg("missing models array in /v1/models".into()))?;
    let entry = models
        .iter()
        .find(|m| m.get("name").and_then(Json::as_str) == Some(cfg.model.as_str()))
        .ok_or_else(|| {
            let served: Vec<&str> = models
                .iter()
                .filter_map(|m| m.get("name").and_then(Json::as_str))
                .collect();
            lg(format!(
                "daemon does not serve {:?} (serves {served:?})",
                cfg.model
            ))
        })?;
    let in_features = entry
        .get("in_features")
        .and_then(Json::as_f64)
        .map_or(8, |f| f as usize)
        .max(1);

    let infer_path = format!("/v1/models/{}/infer", cfg.model);
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<std::thread::JoinHandle<LoadgenWorker>> = (0..cfg.concurrency.max(1))
        .map(|worker_id| {
            let addr = cfg.addr.clone();
            let infer_path = infer_path.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut w = LoadgenWorker::default();
                let mut conn: Option<(BufReader<std::net::TcpStream>, std::net::TcpStream)> = None;
                let mut iteration = 0u64;
                'requests: while !stop.load(Ordering::Relaxed) {
                    // A deterministic, slowly varying input row.
                    iteration += 1;
                    let row: Vec<String> = (0..in_features)
                        .map(|i| {
                            let v = (worker_id as u64 * 31 + iteration * 7 + i as u64) % 13;
                            format!("{:.1}", (v as f64) * 0.1 - 0.6)
                        })
                        .collect();
                    let body = format!("{{\"input\": [{}]}}", row.join(", "));
                    let mut backoff = Duration::from_millis(2);
                    for attempt in 1..=LOADGEN_MAX_ATTEMPTS {
                        if stop.load(Ordering::Relaxed) {
                            break 'requests;
                        }
                        if conn.is_none() {
                            match std::net::TcpStream::connect(&addr) {
                                Ok(s) => {
                                    s.set_read_timeout(Some(Duration::from_secs(30))).ok();
                                    s.set_nodelay(true).ok();
                                    match s.try_clone() {
                                        Ok(c) => conn = Some((BufReader::new(c), s)),
                                        Err(_) => {
                                            w.errors += 1;
                                            continue 'requests;
                                        }
                                    }
                                }
                                Err(_) => {
                                    w.errors += 1;
                                    std::thread::sleep(Duration::from_millis(5));
                                    continue 'requests;
                                }
                            }
                        }
                        let (reader, writer) = conn.as_mut().expect("connected above");
                        let sent = Instant::now();
                        let outcome = crate::http::write_request(
                            writer,
                            "POST",
                            &infer_path,
                            Some(("application/json", body.as_bytes())),
                        )
                        .map_err(crate::http::HttpError::Io)
                        .and_then(|()| crate::http::read_response(reader));
                        match outcome {
                            Ok(resp) => match resp.status {
                                200 => {
                                    w.ok += 1;
                                    w.latencies_ns.push(sent.elapsed().as_nanos() as u64);
                                    continue 'requests;
                                }
                                // Shed, not failed: back off and retry
                                // this request under the attempt budget.
                                429 => w.shed_429 += 1,
                                503 => w.shed_503 += 1,
                                _ => {
                                    w.errors += 1;
                                    continue 'requests;
                                }
                            },
                            Err(_) => {
                                w.errors += 1;
                                conn = None; // reconnect
                                continue 'requests;
                            }
                        }
                        // A 503 while draining closes the connection
                        // behind the response; reconnect lazily.
                        if attempt == LOADGEN_MAX_ATTEMPTS {
                            continue 'requests; // budget spent: move on
                        }
                        w.retries += 1;
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_millis(50));
                    }
                }
                w
            })
        })
        .collect();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut merged = LoadgenWorker::default();
    for handle in workers {
        let w = handle.join().map_err(|_| lg("a worker panicked".into()))?;
        merged.ok += w.ok;
        merged.shed_429 += w.shed_429;
        merged.shed_503 += w.shed_503;
        merged.retries += w.retries;
        merged.errors += w.errors;
        merged.latencies_ns.extend(w.latencies_ns);
    }
    let elapsed = started.elapsed().as_secs_f64();
    if merged.ok == 0 {
        return Err(lg(format!(
            "no successful requests in {elapsed:.1}s ({} shed 429, {} shed 503, {} errors)",
            merged.shed_429, merged.shed_503, merged.errors
        )));
    }
    merged.latencies_ns.sort_unstable();
    let pct = |q: f64| {
        let idx = ((merged.latencies_ns.len() - 1) as f64 * q).round() as usize;
        merged.latencies_ns[idx] as f64 / 1_000.0 // µs
    };
    let req_per_s = merged.ok as f64 / elapsed;
    let (p50, p90, p99) = (pct(0.50), pct(0.90), pct(0.99));

    let mut out = format!(
        "loadgen http://{}{} — {} conns, {:.1}s\n",
        cfg.addr,
        infer_path,
        cfg.concurrency.max(1),
        elapsed
    );
    let sends = merged.ok + merged.shed_429 + merged.shed_503 + merged.errors;
    let retry_rate = if sends == 0 {
        0.0
    } else {
        merged.retries as f64 / sends as f64
    };
    out.push_str(&format!(
        "requests: {} ok, {} shed (429 overload), {} shed (503 recovering), {} errors\n",
        merged.ok, merged.shed_429, merged.shed_503, merged.errors
    ));
    out.push_str(&format!(
        "retries: {} ({:.1}% of {} sends, backoff-bounded)\n",
        merged.retries,
        retry_rate * 100.0,
        sends
    ));
    out.push_str(&format!("throughput: {req_per_s:.1} req/s\n"));
    out.push_str(&format!(
        "round-trip latency: p50 {p50:.1} µs, p90 {p90:.1} µs, p99 {p99:.1} µs\n"
    ));

    if cfg.check_metrics {
        // The scrape itself retries transport errors: against a daemon
        // with fault injection armed, one dropped connection must not
        // fail the whole load run.
        let mut resp = http_once(&cfg.addr, "GET", "/metrics", None);
        for _ in 0..3 {
            if resp.is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
            resp = http_once(&cfg.addr, "GET", "/metrics", None);
        }
        let resp = resp?;
        if resp.status != 200 {
            return Err(lg(format!("GET /metrics returned {}", resp.status)));
        }
        let samples = crate::promcheck::validate(&resp.body_str())
            .map_err(|e| lg(format!("/metrics failed structural validation: {e}")))?;
        if !samples
            .iter()
            .any(|s| s.name == "antd_http_responses_total")
        {
            return Err(lg("/metrics lacks antd_http_responses_total".into()));
        }
        out.push_str(&format!(
            "metrics: /metrics parses cleanly ({} samples)\n",
            samples.len()
        ));
    }

    if let Some(path) = &cfg.out {
        let io = |e: std::io::Error| CliError::Artifact(ArtifactError::Io(e));
        let mut doc = match std::fs::read_to_string(path) {
            Ok(text) => {
                Json::parse(&text).map_err(|e| lg(format!("--out {}: {e}", path.display())))?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Json::Obj(Vec::new()),
            Err(e) => return Err(io(e)),
        };
        let section = Json::Obj(vec![
            ("model".into(), Json::Str(cfg.model.clone())),
            (
                "concurrency".into(),
                Json::Num(cfg.concurrency.max(1) as f64),
            ),
            ("duration_s".into(), Json::Num(elapsed)),
            ("requests_ok".into(), Json::Num(merged.ok as f64)),
            ("shed_429".into(), Json::Num(merged.shed_429 as f64)),
            ("shed_503".into(), Json::Num(merged.shed_503 as f64)),
            ("retries".into(), Json::Num(merged.retries as f64)),
            ("retry_rate".into(), Json::Num(retry_rate)),
            ("errors".into(), Json::Num(merged.errors as f64)),
            ("req_per_s".into(), Json::Num(req_per_s)),
            ("p50_us".into(), Json::Num(p50)),
            ("p90_us".into(), Json::Num(p90)),
            ("p99_us".into(), Json::Num(p99)),
        ]);
        match &mut doc {
            Json::Obj(fields) => {
                fields.retain(|(k, _)| k != "loadgen");
                fields.push(("loadgen".to_string(), section));
            }
            _ => return Err(lg(format!("--out {}: not a JSON object", path.display()))),
        }
        std::fs::write(path, doc.render()).map_err(io)?;
        out.push_str(&format!("merged loadgen row into {}\n", path.display()));
    }
    Ok(out)
}

/// `antc generate` configuration.
#[derive(Debug, Clone)]
pub struct GenerateConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Model name as registered with the daemon.
    pub model: String,
    /// Prompt token ids (each below the model's synthetic vocabulary,
    /// its token dim).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate.
    pub max_tokens: usize,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig {
            addr: "127.0.0.1:7171".to_string(),
            model: String::new(),
            prompt: vec![0],
            max_tokens: 16,
        }
    }
}

/// `antc generate`: stream tokens from a running antd daemon's
/// `POST /v1/models/{name}/generate` endpoint. The chunked JSON-line
/// stream is consumed incrementally — each token line is parsed as it
/// arrives — and the final `done` line must account for every streamed
/// token, so this doubles as the decode-smoke conformance client.
///
/// # Errors
///
/// [`CliError::Generate`] on connection failures, non-200 responses,
/// malformed stream lines, a trailing error line, or a token-count
/// mismatch between the stream and its `done` line.
pub fn run_generate(cfg: GenerateConfig) -> Result<String, CliError> {
    use crate::http::{read_chunk, read_response_head, write_request};
    use std::io::{BufReader, Read};
    let err = CliError::Generate;
    let body = format!(
        "{{\"prompt\":[{}],\"max_tokens\":{}}}",
        cfg.prompt
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(","),
        cfg.max_tokens
    );
    let path = format!("/v1/models/{}/generate", cfg.model);
    let stream = std::net::TcpStream::connect(&cfg.addr)
        .map_err(|e| err(format!("connect {}: {e}", cfg.addr)))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| err(e.to_string()))?);
    let mut writer = stream;
    write_request(
        &mut writer,
        "POST",
        &path,
        Some(("application/json", body.as_bytes())),
    )
    .map_err(|e| err(format!("send {path}: {e}")))?;
    let head = read_response_head(&mut reader).map_err(|e| err(format!("read {path}: {e}")))?;
    if head.status != 200 {
        // Error responses are plain Content-Length bodies.
        let len: usize = head
            .header("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut buf = vec![0u8; len.min(64 * 1024)];
        reader.read_exact(&mut buf).ok();
        return Err(err(format!(
            "HTTP {}: {}",
            head.status,
            String::from_utf8_lossy(&buf).trim()
        )));
    }
    if !head.is_chunked() {
        return Err(err("expected a chunked token stream".to_string()));
    }
    let mut out = String::new();
    let mut line_buf: Vec<u8> = Vec::new();
    let mut streamed: Vec<u32> = Vec::new();
    let mut tail: Option<(bool, usize, Option<String>)> = None;
    while let Some(chunk) = read_chunk(&mut reader).map_err(|e| err(format!("stream: {e}")))? {
        line_buf.extend_from_slice(&chunk);
        while let Some(pos) = line_buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = line_buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let doc = Json::parse(text).map_err(|e| err(format!("bad stream line: {e}")))?;
            if let Some(done) = doc.get("done").and_then(Json::as_bool) {
                let count = doc.get("tokens").and_then(Json::as_f64).unwrap_or(-1.0) as usize;
                let error = doc
                    .get("error")
                    .and_then(Json::as_str)
                    .map(ToString::to_string);
                tail = Some((done, count, error));
            } else if let Some(tok) = doc.get("token").and_then(Json::as_f64) {
                streamed.push(tok as u32);
                out.push_str(&format!("token[{}] = {}\n", streamed.len() - 1, tok as u32));
            } else {
                return Err(err(format!("unrecognized stream line: {text}")));
            }
        }
    }
    match tail {
        Some((true, count, _)) if count == streamed.len() => {
            out.push_str(&format!(
                "generated {} token(s) from {} prompt token(s); stream complete\n",
                streamed.len(),
                cfg.prompt.len()
            ));
            Ok(out)
        }
        Some((true, count, _)) => Err(err(format!(
            "done line reports {count} token(s) but {} were streamed",
            streamed.len()
        ))),
        Some((false, _, error)) => Err(err(format!(
            "stream ended early after {} token(s): {}",
            streamed.len(),
            error.unwrap_or_else(|| "unknown error".to_string())
        ))),
        None => Err(err(format!(
            "stream closed without a done line ({} token(s) received)",
            streamed.len()
        ))),
    }
}

pub const USAGE: &str = "antc — ANT quantized-model artifact tool

USAGE:
    antc quantize --out <file.antm> [--model mlp|cnn|transformer|decoder]
                  [--bits N] [--combo int|ip|fip|ipf|fipf]
                  [--epochs N] [--seed N]
    antc inspect <file.antm>
    antc verify <file.antm>
    antc migrate <file.antm>
    antc serve <file.antm> [--requests N] [--batch N]
               [--metrics-dump <file.prom>]
    antc stats <file.antm> [--requests N] [--batch N]
               [--prom <file.prom>] [--trace <file.json>]
    antc bench [--quick] [--out <file.json>] [--seed N]
               [--baseline <file.json>] [--tolerance F]
    antc loadgen --model NAME [--addr HOST:PORT] [--concurrency N]
                 [--duration-secs N] [--out <file.json>] [--check-metrics]
    antc generate --model NAME [--addr HOST:PORT] [--prompt 1,2,3]
                  [--max-tokens N]

The quantize subcommand trains a reference model, runs Algorithm-2 type
selection through a memoizing Planner, and saves the packed result (wire
codes + pre-packed panel images + selection-cache fingerprints) as a
versioned .antm artifact (format v2: mmap-ready, 64-byte-aligned).
inspect dumps the header, section table, storage mode, per-layer
selections and the selection-cache fingerprint/hit/miss stats. verify
runs the full integrity gate the lazy v2 load defers: section CRCs plus
a bit-for-bit recompute of the PANL execution images. migrate rewrites
an artifact (v1 or v2) in the current format version, atomically in
place. serve memory-maps the artifact, strict-compiles it borrowing
weights straight from the file pages, and smoke-serves verified batched
requests; --metrics-dump writes the telemetry registry in Prometheus
text format afterwards. stats drives seeded requests through the plan
and prints the per-layer-kind breakdown (calls, time share, p50/p99,
derived GOPS and GB/s) read back from the telemetry registry, with
optional Prometheus and chrome://tracing exports. bench runs fixed
MLP/CNN/attention serving workloads and writes BENCH_runtime.json
(schema ant-bench/runtime-v2: throughput, p50/p90/p99/p999 latency,
steady-state allocations per request, per-stage breakdowns, microkernel
speedup, v1-vs-v2 time-to-serving-ready); --baseline compares batched
throughput against a stored report and flags drops beyond --tolerance
(default 0.08) with the REGRESSION marker. loadgen drives a running
antd daemon with concurrent keep-alive connections for a fixed duration
and reports achieved req/s and round-trip latency percentiles; 429
responses count as shed load (the client backs off), --check-metrics
scrapes and structurally validates /metrics afterwards, and --out
merges the results into BENCH_runtime.json under a `loadgen` key.
generate streams tokens from a running daemon's autoregressive
/v1/models/NAME/generate endpoint (the model must be a causal decoder,
e.g. quantize --model decoder): the chunked JSON-line stream is parsed
incrementally and the final done line must account for every streamed
token, making the command a conformance check as well as a demo
client.";

/// Parses argv (without the program name) and runs the selected
/// subcommand, returning its report.
///
/// # Errors
///
/// [`CliError::Usage`] on bad arguments, otherwise the subcommand's
/// failure.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n\n{USAGE}"));
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| usage("missing subcommand"))?;
    match cmd.as_str() {
        "quantize" => {
            let mut cfg = QuantizeConfig::default();
            let mut out: Option<String> = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--out" => out = Some(value("--out")?),
                    "--model" => cfg.model = ModelKind::parse(&value("--model")?)?,
                    "--bits" => {
                        cfg.bits = value("--bits")?
                            .parse()
                            .map_err(|_| usage("--bits needs an integer"))?
                    }
                    "--combo" => cfg.combo = parse_combo(&value("--combo")?)?,
                    "--epochs" => {
                        cfg.epochs = value("--epochs")?
                            .parse()
                            .map_err(|_| usage("--epochs needs an integer"))?
                    }
                    "--seed" => {
                        cfg.seed = value("--seed")?
                            .parse()
                            .map_err(|_| usage("--seed needs an integer"))?
                    }
                    other => return Err(usage(&format!("unknown flag '{other}'"))),
                }
            }
            let out = out.ok_or_else(|| usage("quantize requires --out <file.antm>"))?;
            run_quantize(cfg, out)
        }
        "inspect" => match rest {
            [path] => run_inspect(path),
            _ => Err(usage("inspect takes exactly one artifact path")),
        },
        "verify" => match rest {
            [path] => run_verify(path),
            _ => Err(usage("verify takes exactly one artifact path")),
        },
        "migrate" => match rest {
            [path] => run_migrate(path),
            _ => Err(usage("migrate takes exactly one artifact path")),
        },
        "serve" => {
            let (path, rest) = rest
                .split_first()
                .ok_or_else(|| usage("serve requires an artifact path"))?;
            let mut requests = 256usize;
            let mut batch = 32usize;
            let mut metrics_dump: Option<std::path::PathBuf> = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--requests" => {
                        requests = value("--requests")?
                            .parse()
                            .map_err(|_| usage("--requests needs an integer"))?
                    }
                    "--batch" => {
                        batch = value("--batch")?
                            .parse()
                            .map_err(|_| usage("--batch needs an integer"))?
                    }
                    "--metrics-dump" => metrics_dump = Some(value("--metrics-dump")?.into()),
                    other => return Err(usage(&format!("unknown flag '{other}'"))),
                }
            }
            run_serve(path, requests, batch, metrics_dump.as_deref())
        }
        "stats" => {
            let (path, rest) = rest
                .split_first()
                .ok_or_else(|| usage("stats requires an artifact path"))?;
            let mut cfg = StatsConfig::default();
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--requests" => {
                        cfg.requests = value("--requests")?
                            .parse()
                            .map_err(|_| usage("--requests needs an integer"))?
                    }
                    "--batch" => {
                        cfg.batch = value("--batch")?
                            .parse()
                            .map_err(|_| usage("--batch needs an integer"))?
                    }
                    "--prom" => cfg.prom = Some(value("--prom")?.into()),
                    "--trace" => cfg.trace = Some(value("--trace")?.into()),
                    other => return Err(usage(&format!("unknown flag '{other}'"))),
                }
            }
            run_stats(path, cfg)
        }
        "bench" => {
            let mut cfg = BenchConfig::default();
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--quick" => cfg.quick = true,
                    "--out" => cfg.out = value("--out")?.into(),
                    "--seed" => {
                        cfg.seed = value("--seed")?
                            .parse()
                            .map_err(|_| usage("--seed needs an integer"))?
                    }
                    "--baseline" => cfg.baseline = Some(value("--baseline")?.into()),
                    "--tolerance" => {
                        cfg.tolerance = value("--tolerance")?
                            .parse()
                            .map_err(|_| usage("--tolerance needs a number"))?
                    }
                    other => return Err(usage(&format!("unknown flag '{other}'"))),
                }
            }
            run_bench(cfg)
        }
        "loadgen" => {
            let mut cfg = LoadgenConfig::default();
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--addr" => cfg.addr = value("--addr")?,
                    "--model" => cfg.model = value("--model")?,
                    "--concurrency" => {
                        cfg.concurrency = value("--concurrency")?
                            .parse()
                            .map_err(|_| usage("--concurrency needs an integer"))?
                    }
                    "--duration-secs" => {
                        cfg.duration = std::time::Duration::from_secs(
                            value("--duration-secs")?
                                .parse()
                                .map_err(|_| usage("--duration-secs needs an integer"))?,
                        )
                    }
                    "--out" => cfg.out = Some(value("--out")?.into()),
                    "--check-metrics" => cfg.check_metrics = true,
                    other => return Err(usage(&format!("unknown flag '{other}'"))),
                }
            }
            if cfg.model.is_empty() {
                return Err(usage("loadgen requires --model NAME"));
            }
            run_loadgen(cfg)
        }
        "generate" => {
            let mut cfg = GenerateConfig::default();
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--addr" => cfg.addr = value("--addr")?,
                    "--model" => cfg.model = value("--model")?,
                    "--prompt" => {
                        cfg.prompt = value("--prompt")?
                            .split(',')
                            .map(|t| t.trim().parse::<u32>())
                            .collect::<Result<_, _>>()
                            .map_err(|_| {
                                usage("--prompt needs comma-separated token ids (e.g. 1,2,3)")
                            })?
                    }
                    "--max-tokens" => {
                        cfg.max_tokens = value("--max-tokens")?
                            .parse()
                            .map_err(|_| usage("--max-tokens needs an integer"))?
                    }
                    other => return Err(usage(&format!("unknown flag '{other}'"))),
                }
            }
            if cfg.model.is_empty() {
                return Err(usage("generate requires --model NAME"));
            }
            run_generate(cfg)
        }
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(usage(&format!("unknown subcommand '{other}'"))),
    }
}
