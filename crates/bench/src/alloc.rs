//! A counting global allocator for allocation-budget measurements.
//!
//! The runtime's serving contract is *zero steady-state heap allocations
//! per request* ([`ant_runtime::CompiledPlan::forward_rows`] +
//! [`ant_runtime::Scratch`]). Counters in this module make that claim
//! measurable from outside: install [`CountingAlloc`] as the binary's
//! `#[global_allocator]` (the `antc` binary and the `alloc_steady`
//! integration test do), snapshot [`alloc_count`] around a request burst,
//! and divide.
//!
//! When the counting allocator is *not* installed (library consumers,
//! other binaries), the counters simply stay at zero; [`is_counting`]
//! distinguishes "zero allocations" from "nobody is counting" by probing
//! with a real heap allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation
/// (`alloc`, `alloc_zeroed`, and growth via `realloc`).
///
/// # Example
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ant_bench::alloc::CountingAlloc = ant_bench::alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations observed so far (0 forever when [`CountingAlloc`]
/// is not the global allocator).
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator so far (`alloc` +
/// `alloc_zeroed` sizes plus `realloc` targets; frees are not
/// subtracted). Together with [`alloc_count`] this separates "many tiny
/// allocations" from "few huge ones" when chasing a budget regression.
pub fn alloc_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Whether allocation counting is live in this process, determined by
/// performing a heap allocation and watching the counter.
pub fn is_counting() -> bool {
    let before = alloc_count();
    let probe = vec![0u8; 64];
    std::hint::black_box(&probe);
    alloc_count() > before
}
