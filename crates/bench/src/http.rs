//! A minimal HTTP/1.1 implementation over `std::net`.
//!
//! crates.io is unavailable to this workspace, so `antd` speaks HTTP
//! through this hand-rolled module instead of hyper/axum: blocking
//! reads via [`BufRead`], explicit `Content-Length` framing for
//! buffered messages, chunked transfer coding for the one place the
//! body length is genuinely unknown up front (the daemon streaming
//! generated tokens), keep-alive by default as HTTP/1.1 specifies, and
//! hard limits on header and body sizes so a malicious or confused
//! client cannot balloon server memory. Both sides live here —
//! [`read_request`] / [`Response`] / [`write_chunked_head`] for the
//! daemon, [`read_response`] / [`read_chunk`] for `antc` and the
//! end-to-end tests — so the framing rules can only drift together.
//! Chunked *requests* stay rejected: nothing in this workspace sends
//! them, so accepting them would be untested attack surface.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Largest accepted request line + header block, in bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request/response body, in bytes.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Why a message could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer sent bytes that are not HTTP (or use framing this
    /// module does not implement, e.g. chunked transfer encoding).
    Malformed(String),
    /// The peer exceeded [`MAX_HEADER_BYTES`] or [`MAX_BODY_BYTES`].
    TooLarge(String),
    /// The connection closed mid-message (clean EOF *before* any bytes
    /// is not an error; see [`read_request`]).
    UnexpectedEof,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed message: {m}"),
            HttpError::TooLarge(m) => write!(f, "message too large: {m}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Method verb, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/models/mlp/infer`.
    pub path: String,
    /// Header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one line terminated by `\n`, stripping the `\r\n`/`\n` tail.
/// Returns `None` on EOF with nothing read.
fn read_line(
    r: &mut impl BufRead,
    budget: &mut usize,
    what: &str,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    // Bound the read: take_mut-style cap via manual loop would be
    // overkill; read_until then check the budget.
    let n = r.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > *budget {
        return Err(HttpError::TooLarge(format!("{what} exceeds header limit")));
    }
    *budget -= n;
    while line.last().is_some_and(|c| *c == b'\n' || *c == b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::Malformed(format!("{what} is not UTF-8")))
}

/// Reads one request from a connection.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly
/// between requests (the normal end of a keep-alive session).
///
/// # Errors
///
/// [`HttpError`] on socket failure, non-HTTP bytes, oversized header
/// block or body, or EOF mid-message.
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = match read_line(r, &mut budget, "request line")? {
        None => return Ok(None),
        Some(l) if l.is_empty() => {
            // Tolerate a stray blank line between pipelined requests.
            match read_line(r, &mut budget, "request line")? {
                None => return Ok(None),
                Some(l) => l,
            }
        }
        Some(l) => l,
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(HttpError::Malformed(format!("bad request line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }
    let headers = read_headers(r, &mut budget)?;
    let body = read_body(r, &headers)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Header block: `name: value` lines up to the blank separator.
fn read_headers(
    r: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, budget, "header")?.ok_or(HttpError::UnexpectedEof)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

/// Body per `Content-Length` (chunked transfer is rejected, not skipped).
fn read_body(r: &mut impl BufRead, headers: &[(String, String)]) -> Result<Vec<u8>, HttpError> {
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let len: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        None => return Ok(Vec::new()),
        Some((_, v)) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length: {v:?}")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!("body of {len} bytes")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::UnexpectedEof
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(body)
}

/// The canonical reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra header fields (Content-Length/Connection are added on write).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header field.
    #[must_use]
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body and its content type.
    #[must_use]
    pub fn body(mut self, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self
    }

    /// JSON body shorthand.
    #[must_use]
    pub fn json(self, body: impl Into<Vec<u8>>) -> Response {
        self.body("application/json", body)
    }

    /// Plain-text body shorthand.
    #[must_use]
    pub fn text(self, body: impl Into<Vec<u8>>) -> Response {
        self.body("text/plain; charset=utf-8", body)
    }

    /// Serializes the response, adding `Content-Length` and, when
    /// `close` is set, `Connection: close`.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        if close {
            write!(w, "Connection: close\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Starts a chunked response: status line, `Content-Type`, and
/// `Transfer-Encoding: chunked` — no `Content-Length`, because the
/// caller does not know the body length yet. Follow with any number of
/// [`write_chunk`] calls and exactly one [`finish_chunked`].
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_chunked_head(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    close: bool,
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", status, reason(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Transfer-Encoding: chunked\r\n")?;
    if close {
        write!(w, "Connection: close\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Writes one chunk of a chunked body and flushes it to the peer.
/// Empty payloads are skipped — a zero-length chunk is the terminator,
/// which only [`finish_chunked`] may write.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_chunk(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", payload.len())?;
    w.write_all(payload)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked body (zero-length chunk, no trailers).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn finish_chunked(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Writes one client request (client side: `antc loadgen`, tests).
/// `body` is `(content_type, bytes)`; omit for body-less methods.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    path: &str,
    body: Option<(&str, &[u8])>,
) -> io::Result<()> {
    write!(w, "{method} {path} HTTP/1.1\r\nHost: antd\r\n")?;
    match body {
        Some((content_type, bytes)) => {
            write!(
                w,
                "Content-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
                bytes.len()
            )?;
            w.write_all(bytes)?;
        }
        None => w.write_all(b"\r\n")?,
    }
    w.flush()
}

/// A response as seen by a client ([`read_response`]).
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header fields, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Status line and headers of a response, before any body bytes.
///
/// Returned by [`read_response_head`] so streaming consumers (`antc
/// generate`) can inspect the status and then pull the body chunk by
/// chunk with [`read_chunk`] instead of buffering it whole.
#[derive(Debug)]
pub struct ResponseHead {
    /// Status code.
    pub status: u16,
    /// Header fields, names lowercased.
    pub headers: Vec<(String, String)>,
}

impl ResponseHead {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the body uses chunked transfer coding.
    pub fn is_chunked(&self) -> bool {
        self.header("transfer-encoding")
            .is_some_and(|v| v.eq_ignore_ascii_case("chunked"))
    }
}

/// Reads a response's status line and headers, leaving the body on the
/// wire for the caller to frame ([`read_chunk`] when
/// [`ResponseHead::is_chunked`], `Content-Length` otherwise).
///
/// # Errors
///
/// [`HttpError`] on socket failure, non-HTTP bytes, an oversized header
/// block, or EOF before the blank separator line.
pub fn read_response_head(r: &mut impl BufRead) -> Result<ResponseHead, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = read_line(r, &mut budget, "status line")?.ok_or(HttpError::UnexpectedEof)?;
    let mut parts = line.split_whitespace();
    let (version, status) = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) => (v, s),
        _ => return Err(HttpError::Malformed(format!("bad status line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| HttpError::Malformed(format!("bad status code in {line:?}")))?;
    let headers = read_headers(r, &mut budget)?;
    Ok(ResponseHead { status, headers })
}

/// Reads one chunk of a chunked body. Returns `Ok(None)` at the
/// terminating zero-length chunk (after consuming any trailer lines),
/// `Ok(Some(payload))` otherwise.
///
/// # Errors
///
/// [`HttpError`] on socket failure, a malformed size line or chunk
/// delimiter, a chunk above [`MAX_BODY_BYTES`], or EOF mid-chunk.
pub fn read_chunk(r: &mut impl BufRead) -> Result<Option<Vec<u8>>, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = read_line(r, &mut budget, "chunk size")?.ok_or(HttpError::UnexpectedEof)?;
    // Chunk extensions (";name=value") are tolerated and ignored.
    let size_str = line.split(';').next().unwrap_or("").trim();
    let size = usize::from_str_radix(size_str, 16)
        .map_err(|_| HttpError::Malformed(format!("bad chunk size: {line:?}")))?;
    if size > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!("chunk of {size} bytes")));
    }
    if size == 0 {
        // Trailer section: header lines up to the blank terminator.
        loop {
            let l = read_line(r, &mut budget, "chunk trailer")?.ok_or(HttpError::UnexpectedEof)?;
            if l.is_empty() {
                return Ok(None);
            }
        }
    }
    let mut payload = vec![0u8; size];
    r.read_exact(&mut payload).map_err(eof_as_truncation)?;
    let mut crlf = [0u8; 2];
    r.read_exact(&mut crlf).map_err(eof_as_truncation)?;
    if &crlf != b"\r\n" {
        return Err(HttpError::Malformed(
            "chunk payload not CRLF-terminated".into(),
        ));
    }
    Ok(Some(payload))
}

fn eof_as_truncation(e: io::Error) -> HttpError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        HttpError::UnexpectedEof
    } else {
        HttpError::Io(e)
    }
}

/// Reads one response from a connection (client side: `antc loadgen`,
/// tests). Chunked bodies are reassembled into one buffer; streaming
/// consumers should use [`read_response_head`] + [`read_chunk`] instead.
///
/// # Errors
///
/// [`HttpError`] on socket failure, non-HTTP bytes, oversized messages,
/// or EOF before a complete response arrived.
pub fn read_response(r: &mut impl BufRead) -> Result<ClientResponse, HttpError> {
    let head = read_response_head(r)?;
    let body = if head.is_chunked() {
        let mut body = Vec::new();
        while let Some(chunk) = read_chunk(r)? {
            if body.len() + chunk.len() > MAX_BODY_BYTES {
                return Err(HttpError::TooLarge(format!(
                    "chunked body beyond {} bytes",
                    MAX_BODY_BYTES
                )));
            }
            body.extend_from_slice(&chunk);
        }
        body
    } else {
        read_body(r, &head.headers)?
    };
    Ok(ClientResponse {
        status: head.status,
        headers: head.headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_with_body_and_keepalive_semantics() {
        let raw = b"POST /v1/models/m/infer HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhelloGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        let first = read_request(&mut r).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.path, "/v1/models/m/infer");
        assert_eq!(first.body, b"hello");
        assert!(!first.wants_close());
        let second = read_request(&mut r).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert!(second.wants_close());
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn rejects_garbage_oversize_and_truncation() {
        let mut r = BufReader::new(&b"not http at all\r\n\r\n"[..]);
        assert!(matches!(read_request(&mut r), Err(HttpError::Malformed(_))));

        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        let mut r = BufReader::new(huge.as_bytes());
        assert!(matches!(read_request(&mut r), Err(HttpError::TooLarge(_))));

        let cut = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        let mut r = BufReader::new(&cut[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(HttpError::UnexpectedEof)
        ));

        let chunked = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let mut r = BufReader::new(&chunked[..]);
        assert!(matches!(read_request(&mut r), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn chunked_response_streams_and_reassembles() {
        let mut wire = Vec::new();
        write_chunked_head(&mut wire, 200, "application/json", false).unwrap();
        write_chunk(&mut wire, b"{\"token\":1}\n").unwrap();
        write_chunk(&mut wire, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut wire, b"{\"token\":2}\n").unwrap();
        finish_chunked(&mut wire).unwrap();

        // Streaming path: head, then chunk by chunk.
        let mut r = BufReader::new(&wire[..]);
        let head = read_response_head(&mut r).unwrap();
        assert_eq!(head.status, 200);
        assert!(head.is_chunked());
        assert_eq!(read_chunk(&mut r).unwrap().unwrap(), b"{\"token\":1}\n");
        assert_eq!(read_chunk(&mut r).unwrap().unwrap(), b"{\"token\":2}\n");
        assert!(read_chunk(&mut r).unwrap().is_none(), "terminator");

        // Buffered path: read_response reassembles the same bytes.
        let mut r = BufReader::new(&wire[..]);
        let resp = read_response(&mut r).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_str(), "{\"token\":1}\n{\"token\":2}\n");
    }

    #[test]
    fn malformed_chunks_are_rejected() {
        let mut r = BufReader::new(&b"zz\r\n"[..]);
        assert!(matches!(read_chunk(&mut r), Err(HttpError::Malformed(_))));

        // Payload not CRLF-terminated.
        let mut r = BufReader::new(&b"3\r\nabcXX"[..]);
        assert!(matches!(read_chunk(&mut r), Err(HttpError::Malformed(_))));

        // Truncated mid-payload.
        let mut r = BufReader::new(&b"10\r\nshort"[..]);
        assert!(matches!(read_chunk(&mut r), Err(HttpError::UnexpectedEof)));

        // Chunked *requests* are still refused outright.
        let chunked = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let mut r = BufReader::new(&chunked[..]);
        assert!(matches!(read_request(&mut r), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_roundtrips_through_client_parser() {
        let mut wire = Vec::new();
        Response::new(429)
            .header("Retry-After", "1")
            .json("{\"error\":\"overloaded\"}")
            .write_to(&mut wire, true)
            .unwrap();
        let mut r = BufReader::new(&wire[..]);
        let resp = read_response(&mut r).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.header("connection"), Some("close"));
        assert_eq!(resp.body_str(), "{\"error\":\"overloaded\"}");
    }
}
