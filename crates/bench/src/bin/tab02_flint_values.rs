//! Table II / Fig. 3 — the flint value tables: every code with its
//! first-one exponent, mantissa width, and decoded value, for widths
//! 3 through 8 (the 4-bit table is printed in full; wider tables are
//! summarised by their lattices).

use ant_bench::render_table;
use ant_core::flint::Flint;

fn main() {
    println!("== Table II: 4-bit unsigned flint (bias −1) ==\n");
    let f4 = Flint::new(4).expect("4-bit flint");
    let mut rows = Vec::new();
    for code in 0..f4.num_codes() {
        let fd = f4.decode_float(code);
        let id = f4.decode_int(code);
        let value = f4.decode(code);
        rows.push(vec![
            format!("{code:04b}"),
            if code == 0 {
                "-".to_string()
            } else {
                format!("{}", fd.exp as i64 - 1)
            },
            if code == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", 1.0 + fd.mantissa as f64 / 8.0)
            },
            format!("{}", id.base),
            format!("{}", id.exp),
            format!("{value}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["bits", "exponent", "fraction", "base int", "shift", "value"],
            &rows,
        )
    );
    println!("(matches paper Table II values: 0,1,2,3,4,5,6,7,8,10,12,14,16,24,32,64)\n");

    println!("== Fig. 3 generalised: flint lattices for b = 3..8 ==\n");
    for b in 3..=8u32 {
        let f = Flint::new(b).expect("valid width");
        let lattice = f.lattice();
        let shown: Vec<String> = if lattice.len() <= 16 {
            lattice.iter().map(|v| v.to_string()).collect()
        } else {
            let mut s: Vec<String> = lattice.iter().take(9).map(|v| v.to_string()).collect();
            s.push("...".to_string());
            s.extend(lattice.iter().rev().take(4).rev().map(|v| v.to_string()));
            s
        };
        println!(
            "flint{b}: {:3} values, max {:6}  [{}]",
            lattice.len(),
            f.max_value(),
            shown.join(", ")
        );
    }
    println!();
    println!("Mantissa bits per interval (b = 4): codes 0001,001x,01xx,11xx,101x,1001,1000");
    let f = Flint::new(4).expect("4-bit flint");
    let mbs: Vec<String> = (1..=7).map(|i| f.mantissa_bits(i).to_string()).collect();
    println!(
        "carry {} mantissa bits — int-like mid-range, PoT-like extremes.",
        mbs.join(",")
    );
}
