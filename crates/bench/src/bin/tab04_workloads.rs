//! Table IV — the evaluated models and datasets. The paper lists its six
//! checkpoint models with FP32 accuracy; this reproduction has two tiers
//! (DESIGN.md §2): the simulator's eight GEMM-level workloads standing in
//! for those checkpoints, and the three trainable reference models used by
//! the accuracy experiments.

use ant_bench::{all_trained_models, render_table};
use ant_sim::workload::all_workloads;

fn main() {
    println!("== Table IV (simulator tier): GEMM-level benchmark workloads ==\n");
    let mut rows = Vec::new();
    for w in all_workloads(1) {
        rows.push(vec![
            w.name.clone(),
            format!("{:?}", w.family),
            w.layers.len().to_string(),
            format!("{:.2}", w.total_macs() as f64 / 1e9),
            format!("{:.1}", w.total_weight_elems() as f64 / 1e6),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "family",
                "GEMM layers",
                "GMACs (batch 1)",
                "M params"
            ],
            &rows
        )
    );
    println!("Paper reference points: VGG16 ≈ 15.5 GMACs / 138M params, ResNet-50 ≈");
    println!("4.1 / 25.6, BERT-Base ≈ 85M encoder params — matched by construction.\n");

    println!("== Table IV (training tier): reference models and tasks ==\n");
    let mut rows = Vec::new();
    for m in all_trained_models(77).expect("models train") {
        let (task, classes) = match m.name {
            "MLP" => ("blobs (10 Gaussian clusters, R^16)", 10),
            "CNN" => ("shapes (12x12 noisy images)", 4),
            _ => ("motifs (token sequences)", 6),
        };
        rows.push(vec![
            m.name.to_string(),
            task.to_string(),
            classes.to_string(),
            m.train_set.len().to_string(),
            m.test_set.len().to_string(),
            format!("{:.1}%", m.fp32_accuracy * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["model", "task", "classes", "train", "test", "fp32 acc"],
            &rows
        )
    );
    println!("(paper Table IV reports ImageNet/GLUE accuracies of its checkpoints;");
    println!("these synthetic tasks are the documented substitution, DESIGN.md §2)");
}
