//! Extension — flint vs Posit (paper Sec. VIII): the paper argues flint
//! differs from Posit in having no variable-length regime and a two-gate
//! decode. This report makes both halves quantitative: quantization MSE of
//! 4-bit posit configurations against the ANT primitives on the paper's
//! tensor families, and the field-boundary variability that drives decoder
//! complexity.

use ant_bench::render_table;
use ant_core::posit::Posit;
use ant_core::select::PrimitiveCombo;
use ant_core::{ClipSearch, Granularity, TensorQuantizer};
use ant_sim::profile::TensorProfile;
use ant_tensor::Tensor;

/// Min-MSE fit of a posit lattice with grid clip search (mirrors the
/// quantizer's behaviour for the built-in types).
fn posit_mse(p: &Posit, data: &[f32]) -> f64 {
    let lattice: Vec<f32> = p.lattice().iter().map(|&v| v as f32).collect();
    let max = *lattice.last().expect("non-empty") as f64;
    let max_abs = data.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
    let mut best = f64::INFINITY;
    for k in 1..=48 {
        let scale = (max_abs * k as f32 / 48.0) / max as f32;
        let mse = data
            .iter()
            .map(|&x| {
                let t = x / scale;
                let pos = lattice.partition_point(|&v| v < t);
                let q = if pos == 0 {
                    lattice[0]
                } else if pos >= lattice.len() {
                    lattice[lattice.len() - 1]
                } else if t - lattice[pos - 1] <= lattice[pos] - t {
                    lattice[pos - 1]
                } else {
                    lattice[pos]
                };
                let d = (x - q * scale) as f64;
                d * d
            })
            .sum::<f64>()
            / data.len() as f64;
        best = best.min(mse);
    }
    best
}

fn main() {
    println!("== Extension: flint vs posit<4, es> (paper Sec. VIII) ==\n");
    let posit40 = Posit::new(4, 0).expect("posit<4,0>");
    let posit41 = Posit::new(4, 1).expect("posit<4,1>");

    let families = [
        ("uniform first-layer act", TensorProfile::FirstLayerAct),
        ("gaussian-tail weight", TensorProfile::cnn_weight()),
        (
            "outlier BERT act",
            TensorProfile::BertAct {
                frac: 0.008,
                scale: 18.0,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, profile) in families {
        let data = profile.sample(8192, 31);
        let t = Tensor::from_slice(&data);
        let signed = !profile.is_non_negative();
        let mut best_ant = (String::new(), f64::INFINITY);
        for dt in PrimitiveCombo::IntPotFlint
            .candidates(4, signed)
            .expect("4-bit candidates")
        {
            let (_, mse) = TensorQuantizer::fit(
                dt,
                &t,
                Granularity::PerTensor,
                ClipSearch::GridMse { steps: 48 },
            )
            .expect("fit succeeds");
            if mse < best_ant.1 {
                best_ant = (dt.to_string(), mse);
            }
        }
        let p0 = posit_mse(&posit40, &data);
        let p1 = posit_mse(&posit41, &data);
        rows.push(vec![
            name.to_string(),
            format!("{} ({:.3e})", best_ant.0, best_ant.1),
            format!("{:.3e} ({:+.0}%)", p0, (p0 / best_ant.1 - 1.0) * 100.0),
            format!("{:.3e} ({:+.0}%)", p1, (p1 / best_ant.1 - 1.0) * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "tensor family",
                "ANT best (MSE)",
                "posit<4,0>",
                "posit<4,1>"
            ],
            &rows
        )
    );

    println!("\n-- decoder complexity: field-boundary variability --\n");
    // flint: the exponent code length varies but is found by ONE leading-
    // zero detect on a fixed field; posit: the regime run length must be
    // counted before the exponent/fraction fields can even be located.
    let p8 = Posit::new(8, 1).expect("posit<8,1>");
    let mut lengths = std::collections::BTreeMap::new();
    for code in 1..128u32 {
        *lengths.entry(p8.regime_length(code)).or_insert(0u32) += 1;
    }
    println!("posit<8,1> regime lengths over positive codes: {lengths:?}");
    println!("flint8: exponent always delimited by the first one in a fixed 8-bit");
    println!("field — one LZD plus one shift (Fig. 6), no sequential run detection.");
    println!("\nConclusion (matches Sec. VIII): posit's tapered lattice is competitive");
    println!("mid-range, but ANT adapts the *type* per tensor, winning on the uniform");
    println!("and outlier families, with a strictly simpler fixed-field decode.");
}
