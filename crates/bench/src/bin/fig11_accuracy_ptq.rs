//! Fig. 11 — accuracy loss *without* fine-tuning (post-training
//! quantization) for each 4-bit primitive combination, on the three
//! reference models (the reproduction's stand-ins for the paper's
//! CNN/Transformer benchmarks; see DESIGN.md §2).

use ant_bench::{accuracy_experiment, render_table};

fn main() {
    println!("== Fig. 11: accuracy loss without fine-tuning (percentage points) ==\n");
    let cells = accuracy_experiment(0, 77).expect("experiment runs");
    let models: Vec<&str> = {
        let mut m: Vec<&str> = cells.iter().map(|c| c.model).collect();
        m.dedup();
        m
    };
    let combos: Vec<String> = cells
        .iter()
        .filter(|c| c.model == models[0])
        .map(|c| c.combo.clone())
        .collect();
    let mut rows = Vec::new();
    for model in &models {
        let fp32 = cells
            .iter()
            .find(|c| c.model == *model)
            .expect("cell exists")
            .fp32;
        let mut row = vec![model.to_string(), format!("{:.1}%", fp32 * 100.0)];
        for combo in &combos {
            let cell = cells
                .iter()
                .find(|c| c.model == *model && &c.combo == combo)
                .expect("cell exists");
            row.push(format!("{:+.1}", cell.loss_points()));
        }
        rows.push(row);
    }
    let mut headers = vec!["model", "fp32 acc"];
    let combo_refs: Vec<&str> = combos.iter().map(String::as_str).collect();
    headers.extend(combo_refs);
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape (paper Fig. 11): large losses for Int-only, shrinking as");
    println!("primitives are added; flint-bearing combos (IP-F / FIP-F) lose the least.");
}
