//! Table V — ANT (IP-F) versus BiScaled without fine-tuning, on the
//! reference models. Both schemes fake-quantize every weight tensor in
//! place (per-tensor scales, no QAT), exactly matching conditions. The
//! paper runs this at 6 bits on ImageNet CNNs; at our model scale 6 bits is
//! near-lossless for both schemes, so the 4-bit rows are where the
//! separation the paper reports becomes visible (EXPERIMENTS.md discusses
//! the scale difference).

use ant_bench::{all_trained_models, render_table};
use ant_core::baselines::BiScaled;
use ant_core::select::{select_type, PrimitiveCombo};
use ant_core::{ClipSearch, Granularity};
use ant_nn::model::Sequential;
use ant_nn::train::evaluate;

/// Fake-quantizes every weight matrix/filter in place with ANT's IP-F
/// selection at `bits`.
fn ant_quantize_weights(model: &mut Sequential, bits: u32) {
    model.for_each_param(&mut |p| {
        if p.value.rank() >= 2 {
            let sel = select_type(
                &p.value,
                &PrimitiveCombo::IntPotFlint
                    .candidates(bits, true)
                    .expect("valid candidates"),
                Granularity::PerTensor,
                ClipSearch::GridMse { steps: 64 },
            )
            .expect("selection succeeds");
            p.value = sel.quantizer.apply(&p.value).expect("apply succeeds");
        }
    });
}

/// Fake-quantizes every weight matrix/filter in place with BiScaled.
fn biscaled_quantize_weights(model: &mut Sequential, bits: u32) {
    model.for_each_param(&mut |p| {
        if p.value.rank() >= 2 {
            let (b, _) = BiScaled::fit(bits, true, p.value.as_slice()).expect("fit succeeds");
            p.value.map_inplace(|x| b.quantize_dequantize(x));
        }
    });
}

fn main() {
    println!("== Table V: ANT vs BiScaled, weight quantization without fine-tuning ==\n");
    let mut rows = Vec::new();
    for reference in all_trained_models(77).expect("models train") {
        for bits in [6u32, 4u32] {
            let mut ant_model = reference.model.clone();
            ant_quantize_weights(&mut ant_model, bits);
            let ant_acc = evaluate(&mut ant_model, &reference.test_set).expect("evaluation");

            let mut bi_model = reference.model.clone();
            biscaled_quantize_weights(&mut bi_model, bits);
            let bi_acc = evaluate(&mut bi_model, &reference.test_set).expect("evaluation");

            rows.push(vec![
                format!("{} ({bits}-bit)", reference.name),
                format!("{:.1}%", ant_acc * 100.0),
                format!("{:.1}%", bi_acc * 100.0),
                format!("{:.1}%", reference.fp32_accuracy * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["model", "ANT", "BiScaled", "source (fp32)"], &rows)
    );
    println!("Expected shape (paper Table V at 6-bit): ANT ≥ BiScaled on every model,");
    println!("with BiScaled dropping several points on the harder workloads.");
}
