//! Fig. 14 — per-tensor MSE of the four 4-bit primitive types, normalized
//! to flint, over the ResNet-18 and BERT-Base layer sequences. Shows ANT's
//! Algorithm 2 always landing on the minimum-MSE type and which type that
//! is per tensor family.

use ant_bench::render_table;
use ant_core::select::{select_type, PrimitiveCombo};
use ant_core::{ClipSearch, Granularity};
use ant_sim::workload::{bert_base, resnet18, Workload};
use ant_tensor::Tensor;

fn series(workload: &Workload, take: usize, tensor: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for (li, layer) in workload.layers.iter().take(take).enumerate() {
        let (profile, salt) = match tensor {
            "weight" => (layer.weight_profile, 2 * li as u64),
            _ => (layer.act_profile, 2 * li as u64 + 1),
        };
        let data = profile.sample(4096, 1234 + salt);
        let t = Tensor::from_slice(&data);
        let signed = !profile.is_non_negative();
        let sel = select_type(
            &t,
            &PrimitiveCombo::FloatIntPotFlint
                .candidates(4, signed)
                .expect("valid candidates"),
            Granularity::PerTensor,
            ClipSearch::GridMse { steps: 64 },
        )
        .expect("selection succeeds");
        let flint_mse = sel
            .per_candidate
            .iter()
            .find(|(dt, _)| dt.to_string().starts_with("flint"))
            .expect("flint is a candidate")
            .1;
        let mut row = vec![layer.name.clone()];
        for (dt, mse) in &sel.per_candidate {
            row.push(format!("{}={:.2}", dt.primitive(), mse / flint_mse));
        }
        row.push(sel.dtype.primitive().to_string());
        rows.push(row);
    }
    rows
}

fn main() {
    println!("== Fig. 14: per-tensor 4-bit MSE normalized to flint ==\n");
    let rn = resnet18(1);
    let bert = bert_base(1, "MNLI");
    for (title, workload, tensor, take) in [
        ("ResNet-18 weights", &rn, "weight", 10),
        ("ResNet-18 activations", &rn, "act", 10),
        ("BERT-Base weights (first 2 blocks)", &bert, "weight", 12),
        ("BERT-Base activations (first 2 blocks)", &bert, "act", 12),
    ] {
        println!("-- {title} --\n");
        let rows = series(workload, take, tensor);
        println!(
            "{}",
            render_table(&["layer", "float", "int", "pot", "flint", "chosen"], &rows)
        );
    }
    println!("Expected shape (paper Fig. 14): flint ≈ best (1.0) for Gaussian-like CNN");
    println!("tensors; int wins the uniform-like first layer; PoT/float win the");
    println!("outlier-heavy BERT activations (signed 4-bit float == PoT, so they tie).");
}
