//! Table III — the int-based flint decomposition `value = base << exp`,
//! produced by the bit-level hardware decoder of Fig. 6 and cross-checked
//! against the arithmetic codec for every supported width.

use ant_bench::render_table;
use ant_core::flint::Flint;
use ant_hw::decode::decode_flint;

fn main() {
    println!("== Table III: int-based flint 4-bit value table (hardware decoder) ==\n");
    let mut rows = Vec::new();
    for code in 0..16u32 {
        let d = decode_flint(code, 4, false).expect("4-bit flint");
        rows.push(vec![
            format!("{code:04b}"),
            d.exp.to_string(),
            d.base.to_string(),
            d.value().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["binary", "exponent", "base integer", "value"], &rows)
    );

    // Cross-check every width against the arithmetic codec.
    let mut checked = 0u32;
    for bits in 3..=8u32 {
        let flint = Flint::new(bits).expect("valid width");
        for code in 0..flint.num_codes() {
            let hw = decode_flint(code, bits, false).expect("valid code");
            assert_eq!(
                hw.value() as u64,
                flint.decode(code),
                "b={bits} code={code:b}"
            );
            checked += 1;
        }
    }
    println!("hardware decoder == arithmetic codec on all {checked} codes (b = 3..8)");

    println!("\nSigned decode (Sec. V-C), 4-bit sign+magnitude:");
    let mut srows = Vec::new();
    for code in 0..16u32 {
        let d = decode_flint(code, 4, true).expect("4-bit signed flint");
        srows.push(vec![
            format!("{code:04b}"),
            d.base.to_string(),
            d.exp.to_string(),
            d.value().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["binary", "base", "shift", "value"], &srows)
    );
}
