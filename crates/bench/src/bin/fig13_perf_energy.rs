//! Fig. 13 — the headline evaluation: tensor type ratios (top), normalized
//! latency (middle) and normalized energy (bottom) for the six iso-area
//! designs over the eight workloads, plus the geomean summary quoted in
//! the paper's abstract (2.8×/2.5× over BitFusion).

use ant_bench::render_table;
use ant_sim::design::{Design, SimConfig};
use ant_sim::report::{summarize, WorkloadComparison};
use ant_sim::workload::all_workloads;

fn main() {
    let batch = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(64);
    println!("== Fig. 13 (batch {batch}) ==\n");
    let cfg = SimConfig::default();
    let workloads = all_workloads(batch);
    let comparisons: Vec<WorkloadComparison> = workloads
        .iter()
        .map(|w| WorkloadComparison::run(w, &cfg).expect("simulation succeeds"))
        .collect();

    // Top: 4-bit MAC fraction per design per workload.
    println!("-- tensor/compute ratio: fraction of MACs executed at 4 bits --\n");
    let mut rows = Vec::new();
    for (c, w) in comparisons.iter().zip(&workloads) {
        let mut row = vec![c.workload.clone()];
        for d in Design::all() {
            row.push(format!(
                "{:.0}%",
                c.result(d).low_bit_mac_fraction(w) * 100.0
            ));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(Design::all().iter().map(|d| d.name()))
        .collect();
    println!("{}", render_table(&headers, &rows));

    // Middle: normalized cycles.
    println!("-- normalized latency (1.0 = slowest design per workload) --\n");
    let mut rows = Vec::new();
    for c in &comparisons {
        let mut row = vec![c.workload.clone()];
        for (_, v) in c.normalized_cycles() {
            row.push(format!("{v:.3}"));
        }
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));

    // Bottom: normalized energy with breakdown for ANT-OS.
    println!("-- normalized energy (1.0 = most energy per workload) --\n");
    let mut rows = Vec::new();
    for c in &comparisons {
        let mut row = vec![c.workload.clone()];
        for (_, v) in c.normalized_energy() {
            row.push(format!("{v:.3}"));
        }
        rows.push(row);
    }
    println!("{}", render_table(&headers, &rows));

    println!("-- ANT-OS energy breakdown per workload (pJ shares) --\n");
    let mut rows = Vec::new();
    for c in &comparisons {
        let e = &c.result(Design::AntOs).total_energy;
        let t = e.total();
        rows.push(vec![
            c.workload.clone(),
            format!("{:.0}%", e.static_pj / t * 100.0),
            format!("{:.0}%", e.dram_pj / t * 100.0),
            format!("{:.0}%", e.buffer_pj / t * 100.0),
            format!("{:.0}%", e.core_pj / t * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["workload", "static", "DRAM", "buffer", "core"], &rows)
    );

    // Geomean summary.
    let s = summarize(&comparisons);
    println!("-- geomean ANT-OS advantage (paper: 2.8x/3.24x/1.48x/4x speedup; 2.53x/1.93x/1.6x/3.33x energy) --\n");
    let mut rows = Vec::new();
    for ((name, sp), (_, en)) in s.speedups.iter().zip(&s.energy_reductions) {
        rows.push(vec![
            name.to_string(),
            format!("{sp:.2}x"),
            format!("{en:.2}x"),
        ]);
    }
    println!(
        "{}",
        render_table(&["baseline", "speedup", "energy reduction"], &rows)
    );
}
