//! Table I — quantization architecture comparison: average memory bits,
//! average compute bits and area overhead per scheme, computed over the
//! paper's workload suite.

use ant_bench::render_table;
use ant_sim::report::table_i;
use ant_sim::workload::all_workloads;

/// Paper-reported Table I values for side-by-side comparison.
const PAPER: [(&str, f64, f64, f64); 7] = [
    ("Int", 8.0, 8.0, 0.0),
    ("AdaFloat", 8.0, 8.0, 0.145),
    ("BitFusion", 7.07, 7.07, 0.0),
    ("BiScaled", 6.16, 6.16, 0.071),
    ("OLAccel", 5.81, 4.36, 0.71),
    ("GOBO", 4.04, 16.0, 0.55),
    ("ANT", 4.23, 4.23, 0.002),
];

fn main() {
    // Batch 4 keeps the run quick; averages are batch-insensitive because
    // weight and activation element counts scale together.
    let workloads = all_workloads(4);
    let rows = table_i(&workloads).expect("assignment succeeds");
    let mut table = Vec::new();
    for row in &rows {
        let paper = PAPER.iter().find(|(n, _, _, _)| *n == row.name);
        table.push(vec![
            row.name.to_string(),
            if row.aligned { "yes" } else { "no" }.to_string(),
            format!("{:.2}", row.mem_bits),
            format!("{:.2}", row.compute_bits),
            format!("{:.1}%", row.area_overhead * 100.0),
            paper.map_or("-".to_string(), |(_, m, c, a)| {
                format!("{m:.2} / {c:.2} / {:.1}%", a * 100.0)
            }),
        ]);
    }
    println!("== Table I: quantization architecture comparison ==\n");
    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "aligned",
                "mem bits",
                "compute bits",
                "area ovh",
                "paper (mem/compute/ovh)"
            ],
            &table,
        )
    );
    println!("Area overheads are the paper's synthesis results (see ant-hw::area);");
    println!("bit averages are measured over this reproduction's workload suite.");
}
