//! Ablations for the design choices DESIGN.md calls out: the min-MSE clip
//! search (vs max-abs scaling and vs coarser grids), the mixed-precision
//! threshold τ, and the boundary-decoder placement (2n vs n² decoders).

use ant_bench::render_table;
use ant_core::select::PrimitiveCombo;
use ant_core::{ClipSearch, DataType, Granularity, Quantizer, TensorQuantizer};
use ant_hw::area::{ANT_DECODER_UM2, ANT_PE4_UM2};
use ant_sim::profile::TensorProfile;
use ant_tensor::Tensor;

fn main() {
    // ---------------------------------------------------------------
    println!("== Ablation 1: clip-range search (Algorithm 2 line 5) ==\n");
    let data = TensorProfile::cnn_weight().sample(8192, 7);
    let dt = DataType::flint(4, true).expect("flint4s");
    let mut rows = Vec::new();
    for (name, search) in [
        ("max-abs (no clipping)", ClipSearch::MaxAbs),
        ("grid 8", ClipSearch::GridMse { steps: 8 }),
        ("grid 16", ClipSearch::GridMse { steps: 16 }),
        ("grid 64", ClipSearch::GridMse { steps: 64 }),
        ("grid 256", ClipSearch::GridMse { steps: 256 }),
    ] {
        let (_, mse) = Quantizer::fit(dt, &data, search).expect("fit succeeds");
        rows.push(vec![name.to_string(), format!("{mse:.4e}")]);
    }
    println!("{}", render_table(&["search", "flint4s MSE"], &rows));
    println!("Min-MSE clipping matters most for heavy-tailed tensors; the curve");
    println!("flattens by ~64 grid points, which is the library default.\n");

    // ---------------------------------------------------------------
    println!("== Ablation 2: weight-scale granularity (Sec. II-B) ==\n");
    let w = {
        // Channels with varying magnitude, as real conv layers have.
        let mut t = Tensor::zeros(&[8, 512]);
        for c in 0..8 {
            let ch = TensorProfile::cnn_weight().sample(512, 100 + c as u64);
            let scale = 0.25 * (c + 1) as f32;
            for (dst, src) in t.channel_mut(c).expect("in range").iter_mut().zip(&ch) {
                *dst = src * scale;
            }
        }
        t
    };
    let mut rows = Vec::new();
    for (name, g) in [
        ("per-tensor", Granularity::PerTensor),
        ("per-channel", Granularity::PerChannel),
    ] {
        let (_, mse) =
            TensorQuantizer::fit(dt, &w, g, ClipSearch::default()).expect("fit succeeds");
        rows.push(vec![name.to_string(), format!("{mse:.4e}")]);
    }
    println!("{}", render_table(&["granularity", "flint4s MSE"], &rows));

    // ---------------------------------------------------------------
    println!("\n== Ablation 3: candidate list (what each primitive buys) ==\n");
    let families = [
        ("uniform act", TensorProfile::FirstLayerAct),
        ("gaussian-tail weight", TensorProfile::cnn_weight()),
        (
            "outlier act",
            TensorProfile::BertAct {
                frac: 0.008,
                scale: 18.0,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, profile) in families {
        let t = Tensor::from_slice(&profile.sample(4096, 11));
        let signed = !profile.is_non_negative();
        let mut row = vec![name.to_string()];
        for combo in PrimitiveCombo::all() {
            let sel = ant_core::select::select_type(
                &t,
                &combo.candidates(4, signed).expect("candidates"),
                Granularity::PerTensor,
                ClipSearch::default(),
            )
            .expect("selection succeeds");
            row.push(format!("{:.2e}", sel.mse));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["tensor", "Int", "IP", "FIP", "IP-F", "FIP-F"], &rows)
    );

    // ---------------------------------------------------------------
    println!("\n== Ablation 4: decoder placement (Sec. VI-A) ==\n");
    // 2n boundary decoders (ANT's choice) vs one decoder per PE.
    let n = 64u64;
    let boundary = 2.0 * n as f64 * ANT_DECODER_UM2;
    let per_pe = (n * n) as f64 * ANT_DECODER_UM2;
    let array = (n * n) as f64 * ANT_PE4_UM2;
    let mut rows = Vec::new();
    rows.push(vec![
        "2n boundary decoders".to_string(),
        format!("{:.4}", boundary / 1e6),
        format!("{:.2}%", boundary / array * 100.0),
    ]);
    rows.push(vec![
        "n^2 per-PE decoders".to_string(),
        format!("{:.4}", per_pe / 1e6),
        format!("{:.2}%", per_pe / array * 100.0),
    ]);
    println!(
        "{}",
        render_table(&["placement", "decoder mm^2", "of PE array"], &rows)
    );
    println!(
        "Boundary placement amortises the decoder {}x — the 0.2% headline",
        n / 2
    );
    println!("overhead of Table VII depends on it.");
}
