//! Table VI — weight-only quantization: ANT versus GOBO at 3 and 4 bits on
//! the Transformer reference model (the paper's comparison is BERT on
//! MNLI). GOBO keeps ~0.3% outlier weights at full precision (reporting
//! 3.04/4.04 effective bits); ANT stays fixed-length.

use ant_bench::{render_table, trained_transformer};
use ant_core::baselines::Gobo;
use ant_core::select::{select_type, PrimitiveCombo};
use ant_core::{ClipSearch, Granularity};
use ant_nn::train::evaluate;

fn main() {
    println!("== Table VI: weight-only quantization, ANT vs GOBO (Transformer) ==\n");
    let reference = trained_transformer(77).expect("model trains");
    let mut rows = Vec::new();
    for bits in [3u32, 4u32] {
        // ANT weight-only: per-tensor IP-F selection. 3-bit flint needs a
        // 4-bit signed container, so at 3 bits the candidates are int/pot.
        let mut ant_model = reference.model.clone();
        ant_model.for_each_param(&mut |p| {
            if p.value.rank() >= 2 {
                let combo = if bits >= 4 {
                    PrimitiveCombo::IntPotFlint
                } else {
                    PrimitiveCombo::IntPot
                };
                let sel = select_type(
                    &p.value,
                    &combo.candidates(bits, true).expect("valid candidates"),
                    Granularity::PerTensor,
                    ClipSearch::GridMse { steps: 64 },
                )
                .expect("selection succeeds");
                p.value = sel.quantizer.apply(&p.value).expect("apply succeeds");
            }
        });
        let ant_acc = evaluate(&mut ant_model, &reference.test_set).expect("evaluation");

        // GOBO weight-only with 3σ outlier detection.
        let mut gobo_model = reference.model.clone();
        let mut eff_bits = Vec::new();
        gobo_model.for_each_param(&mut |p| {
            if p.value.rank() >= 2 {
                let (g, _) = Gobo::fit(bits, 3.0, p.value.as_slice()).expect("fit succeeds");
                eff_bits.push(g.mem_bits());
                p.value.map_inplace(|x| g.quantize_dequantize(x));
            }
        });
        let gobo_acc = evaluate(&mut gobo_model, &reference.test_set).expect("evaluation");
        let avg_eff: f64 = eff_bits.iter().sum::<f64>() / eff_bits.len().max(1) as f64;

        rows.push(vec![
            format!("{bits}-bit"),
            format!("{:.1}%", ant_acc * 100.0),
            format!("{:.1}% ({avg_eff:.2} bit)", gobo_acc * 100.0),
            format!("{:.1}%", reference.fp32_accuracy * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["width", "ANT", "GOBO (eff. bits)", "source"], &rows)
    );
    println!("Expected shape (paper Table VI): the two schemes are within a fraction of");
    println!("a point of each other at both widths; ANT achieves it with fixed-length");
    println!("codes while GOBO needs variable-length outlier storage.");
}
