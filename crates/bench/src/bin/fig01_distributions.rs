//! Fig. 1 — intra-/inter-tensor adaptivity: value histograms of the three
//! distribution families alongside the resolution maps of the 4-bit
//! numeric types, showing why each family prefers a different primitive.

use ant_bench::render_table;
use ant_core::{Codec, DataType};
use ant_sim::profile::TensorProfile;
use ant_tensor::stats::{classify, Histogram};

fn spark(densities: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = densities.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    densities
        .iter()
        .map(|d| BARS[((d / max) * 7.0).round() as usize])
        .collect()
}

fn main() {
    println!("== Fig. 1: tensor distribution families and 4-bit type lattices ==\n");
    let profiles = [
        (
            "ResNet18 first-layer act (uniform-like)",
            TensorProfile::FirstLayerAct,
        ),
        (
            "CNN/BERT weight (Gaussian-like)",
            TensorProfile::cnn_weight(),
        ),
        (
            "BERT activation (Laplace-like, outliers)",
            TensorProfile::BertAct {
                frac: 0.01,
                scale: 20.0,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, p) in profiles {
        let data = p.sample(50_000, 11);
        let lo = data.iter().copied().fold(f32::INFINITY, f32::min) as f64;
        let hi = data.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let h = Histogram::build(&data, 32, lo, hi).expect("valid range");
        rows.push(vec![
            name.to_string(),
            format!("{:?}", classify(&data).expect("non-empty")),
            spark(&h.densities()),
        ]);
    }
    println!(
        "{}",
        render_table(&["tensor", "classified as", "histogram"], &rows)
    );

    println!("4-bit type lattices (normalized magnitudes; '|' marks each representable value):\n");
    for dt in [
        DataType::int(4, false).expect("valid"),
        DataType::float(4, false).expect("valid"),
        DataType::pot(4, false).expect("valid"),
        DataType::flint(4, false).expect("valid"),
    ] {
        let codec = Codec::new(dt).expect("valid");
        let max = codec.max_value();
        let mut line = vec![' '; 65];
        for &v in codec.magnitudes() {
            let pos = ((v / max) * 64.0).round() as usize;
            line[pos.min(64)] = '|';
        }
        println!("{:>8}  {}", dt.to_string(), line.iter().collect::<String>());
    }
    println!();
    println!("int has uniform resolution over a narrow range; PoT covers an extreme range");
    println!("with log spacing; flint keeps int-like resolution mid-range and PoT-like");
    println!("range at the extremes (paper Fig. 3).");
}
