//! Table VII — configuration and area breakdown of the iso-area designs at
//! 28 nm, from the synthesis constants in `ant-hw::area`.

use ant_bench::render_table;
use ant_hw::area::{AreaModel, BUFFER_KB, BUFFER_MM2};

fn main() {
    println!("== Table VII: design configuration and area breakdown (28 nm) ==\n");
    let mut rows = Vec::new();
    for d in AreaModel.all() {
        rows.push(vec![
            d.name.to_string(),
            d.pe_count.to_string(),
            format!("{:.2}", d.pe_um2),
            d.decoder_count.to_string(),
            format!("{:.3}", d.core_mm2()),
            format!("{:.2}%", d.decoder_overhead() * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "design",
                "PEs",
                "PE um^2",
                "decoders",
                "core mm^2",
                "decoder ovh"
            ],
            &rows,
        )
    );
    println!("shared on-chip buffer: {BUFFER_KB} KB = {BUFFER_MM2} mm^2 (CACTI, from the paper)");
    println!("\nPaper check: ANT core 0.327 mm^2 with 4096 4-bit PEs + 128 decoders;");
    println!("decoder overhead ~0.2% (Sec. VII-C).");
}
