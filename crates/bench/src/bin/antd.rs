//! `antd` — the ANT serving daemon: loads `.antm` artifacts and serves
//! inference over HTTP/1.1 with continuous batching across connections.
//! All logic lives in [`ant_bench::antd`]; this binary only adapts argv,
//! installs signal handlers, and blocks until drain.

use ant_bench::antd::{parse_args, serve_until_shutdown, signal, Daemon};

// Match the antc binary: the counting allocator keeps the daemon honest
// about steady-state allocations when profiled.
#[global_allocator]
static ALLOC: ant_bench::alloc::CountingAlloc = ant_bench::alloc::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("antd: {msg}");
            eprintln!(
                "usage: antd --model NAME=PATH [--model ...] [--addr HOST:PORT] \
                 [--max-batch N] [--max-wait-ms N] [--max-queue N] [--timeout-ms N] \
                 [--max-restarts N] [--chaos SPEC]"
            );
            std::process::exit(2);
        }
    };
    signal::install();
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("antd: {e}");
            std::process::exit(1);
        }
    };
    println!("antd: serving on http://{}", daemon.local_addr());
    serve_until_shutdown(daemon);
    println!("antd: drained, exiting");
}
