//! Fig. 10 — quantization MSE of the primitive-type combinations (Int, IP,
//! FIP, IP-F, FIP-F) at 4 bits across the eight workloads, normalized to
//! the Int baseline per workload (the paper normalizes the same way).

use ant_bench::render_table;
use ant_core::select::{select_type, PrimitiveCombo};
use ant_core::{ClipSearch, Granularity};
use ant_sim::workload::all_workloads;
use ant_tensor::Tensor;

fn main() {
    println!(
        "== Fig. 10: quantization MSE by primitive combination (4-bit, normalized to Int) ==\n"
    );
    let workloads = all_workloads(1);
    let combos = PrimitiveCombo::all();
    let mut rows = Vec::new();
    for w in &workloads {
        // Element-weighted mean relative MSE over every tensor in the model.
        let mut per_combo = vec![0.0f64; combos.len()];
        let mut weight_sum = 0.0f64;
        for (li, layer) in w.layers.iter().enumerate() {
            for (profile, elems, salt) in [
                (layer.weight_profile, layer.weight_elems(), 2 * li as u64),
                (layer.act_profile, layer.act_elems(), 2 * li as u64 + 1),
            ] {
                let data = profile.sample(2048, 977 + salt);
                let t = Tensor::from_slice(&data);
                let signed = !profile.is_non_negative();
                let share = elems as f64;
                for (ci, combo) in combos.iter().enumerate() {
                    let sel = select_type(
                        &t,
                        &combo.candidates(4, signed).expect("4-bit candidates"),
                        Granularity::PerTensor,
                        ClipSearch::GridMse { steps: 48 },
                    )
                    .expect("selection succeeds");
                    per_combo[ci] += sel.mse * share;
                }
                weight_sum += share;
            }
        }
        let base = per_combo[0] / weight_sum;
        let mut row = vec![w.name.clone()];
        for v in &per_combo {
            row.push(format!("{:.3}", (v / weight_sum) / base));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(combos.iter().map(|c| c.label()))
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape (paper Fig. 10): MSE falls monotonically as primitives are");
    println!("added; the flint-bearing combos (IP-F, FIP-F) are the lowest, with the");
    println!("largest gains on the Transformer workloads.");
}
