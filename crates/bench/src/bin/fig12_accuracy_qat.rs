//! Fig. 12 — accuracy loss *with* fine-tuning (QAT) for each 4-bit
//! combination, plus the mixed-precision ANT4-8 row that recovers the
//! original accuracy (paper Sec. VII-B).

use ant_bench::{accuracy_experiment, all_trained_models, render_table};
use ant_core::mixed::{run_mixed_precision, MixedPrecisionConfig};
use ant_nn::qat::{QatHarness, QuantSpec};
use ant_nn::train::TrainConfig;

fn main() {
    println!("== Fig. 12: accuracy loss with fine-tuning (percentage points) ==\n");
    let cells = accuracy_experiment(4, 77).expect("experiment runs");
    let models: Vec<&str> = {
        let mut m: Vec<&str> = cells.iter().map(|c| c.model).collect();
        m.dedup();
        m
    };
    let combos: Vec<String> = cells
        .iter()
        .filter(|c| c.model == models[0])
        .map(|c| c.combo.clone())
        .collect();

    // ANT4-8: mixed precision on the IP-F config until within 1 point.
    println!("running ANT4-8 mixed precision...\n");
    let mut ant48 = Vec::new();
    for reference in all_trained_models(77).expect("models train") {
        let (calib, _) = reference
            .train_set
            .batch(&(0..100.min(reference.train_set.len())).collect::<Vec<_>>());
        let mut harness = QatHarness::new(
            reference.model.clone(),
            QuantSpec::default(),
            calib,
            reference.train_set.clone(),
            reference.test_set.clone(),
            TrainConfig {
                epochs: 2,
                batch_size: 32,
                lr: 0.02,
                momentum: 0.9,
                seed: 99,
            },
        )
        .expect("harness builds");
        let report = run_mixed_precision(
            &mut harness,
            reference.fp32_accuracy,
            MixedPrecisionConfig {
                threshold: 0.01,
                max_promotions: None,
            },
        );
        let final_acc = *report.metric_trace.last().expect("at least one evaluation");
        ant48.push((
            reference.name,
            reference.fp32_accuracy,
            final_acc,
            report.low_bit_ratio(),
        ));
    }

    let mut rows = Vec::new();
    for model in &models {
        let fp32 = cells
            .iter()
            .find(|c| c.model == *model)
            .expect("cell exists")
            .fp32;
        let mut row = vec![model.to_string(), format!("{:.1}%", fp32 * 100.0)];
        for combo in &combos {
            let cell = cells
                .iter()
                .find(|c| c.model == *model && &c.combo == combo)
                .expect("cell exists");
            row.push(format!("{:+.1}", cell.loss_points()));
        }
        let (_, fp, acc, low) = ant48.iter().find(|(n, _, _, _)| n == model).expect("row");
        row.push(format!("{:+.1}", (fp - acc) * 100.0));
        row.push(format!("{:.0}%", low * 100.0));
        rows.push(row);
    }
    let mut headers = vec!["model", "fp32 acc"];
    let combo_refs: Vec<&str> = combos.iter().map(String::as_str).collect();
    headers.extend(combo_refs);
    headers.push("ANT4-8");
    headers.push("4-bit ratio");
    println!("{}", render_table(&headers, &rows));
    println!("Expected shape (paper Fig. 12): fine-tuning recovers most of the loss;");
    println!("IP-F/FIP-F are near zero, and ANT4-8 reaches the original accuracy while");
    println!("keeping most layers at 4 bits (up to 91% in the paper).");
}
