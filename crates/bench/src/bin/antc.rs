//! `antc` — quantize once, serve anywhere: build, inspect and smoke-serve
//! versioned `.antm` model artifacts. All logic lives in
//! [`ant_bench::antc`]; this binary only adapts argv and exit codes.

// The counting allocator makes `antc bench` report real
// allocations-per-request numbers (library callers see `null`).
#[global_allocator]
static ALLOC: ant_bench::alloc::CountingAlloc = ant_bench::alloc::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ant_bench::antc::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("antc: {e}");
            std::process::exit(1);
        }
    }
}
