//! Structural validation of Prometheus text expositions.
//!
//! Originally an assertion helper inside the exporter tests, promoted
//! to a library so `antc loadgen --check-metrics`, the `antd`
//! end-to-end tests, and the CI `antd-smoke` job all validate `/metrics`
//! with the *same* parser instead of substring checks. The rules:
//! `# HELP`/`# TYPE` exactly once per family and before its first
//! sample, known types only, no duplicate series, and histogram
//! integrity (cumulative buckets whose `+Inf` count equals `_count`,
//! with a `_sum` present).

use std::collections::HashMap;

/// One parsed sample line: series identity (name + raw label block,
/// `le` included) and its numeric value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric name as written (`family`, `family_bucket`, ...).
    pub name: String,
    /// Raw label block including braces, `""` when unlabeled.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Parses a text exposition, returning the samples in document order.
///
/// # Errors
///
/// A description of the first structural violation found.
pub fn validate(text: &str) -> Result<Vec<Sample>, String> {
    // family -> (help_seen, type_seen, kind)
    let mut families: HashMap<String, (bool, bool, String)> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut seen_series: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            return Err("blank line in exposition".into());
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (fam, help) = rest.split_once(' ').ok_or("HELP without text")?;
            if help.is_empty() {
                return Err(format!("empty HELP for {fam}"));
            }
            let e = families
                .entry(fam.to_string())
                .or_insert((false, false, String::new()));
            if e.0 {
                return Err(format!("duplicate # HELP for {fam}"));
            }
            e.0 = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (fam, kind) = rest.split_once(' ').ok_or("TYPE without kind")?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("unknown TYPE {kind} for {fam}"));
            }
            let e = families
                .entry(fam.to_string())
                .or_insert((false, false, String::new()));
            if e.1 {
                return Err(format!("duplicate # TYPE for {fam}"));
            }
            if !e.0 {
                return Err(format!("# TYPE for {fam} precedes its # HELP"));
            }
            e.1 = true;
            e.2 = kind.to_string();
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("unknown comment line: {line}"));
        }
        // Sample: name[{labels}] value
        let (name, labels, value_part) = match line.find('{') {
            Some(b) => {
                // The label block may contain escaped quotes; scan for
                // the closing brace outside a string.
                let bytes = line.as_bytes();
                let (mut i, mut in_str, mut esc, mut end) = (b + 1, false, false, 0usize);
                while i < bytes.len() {
                    let c = bytes[i];
                    if esc {
                        esc = false;
                    } else if in_str && c == b'\\' {
                        esc = true;
                    } else if c == b'"' {
                        in_str = !in_str;
                    } else if !in_str && c == b'}' {
                        end = i;
                        break;
                    }
                    i += 1;
                }
                if end <= b {
                    return Err(format!("unterminated label block: {line}"));
                }
                (&line[..b], &line[b..=end], &line[end + 1..])
            }
            None => {
                let sp = line.find(' ').ok_or_else(|| format!("no value: {line}"))?;
                (&line[..sp], "", &line[sp..])
            }
        };
        let value: f64 = value_part
            .trim()
            .parse()
            .map_err(|_| format!("sample value does not parse as a number: {line}"))?;
        // Resolve which declared family this sample belongs to:
        // histograms own their _bucket/_sum/_count suffixed series.
        let fam = families
            .keys()
            .filter(|f| {
                name == f.as_str()
                    || (families[*f].2 == "histogram"
                        && [
                            format!("{f}_bucket"),
                            format!("{f}_sum"),
                            format!("{f}_count"),
                        ]
                        .iter()
                        .any(|s| s == name))
            })
            .max_by_key(|f| f.len())
            .ok_or_else(|| format!("sample {name} has no declared family"))?
            .clone();
        let (help, ty, _) = &families[&fam];
        if !(*help && *ty) {
            return Err(format!("sample for {fam} before its HELP/TYPE pair"));
        }
        let series = format!("{name}{labels}");
        if seen_series.contains(&series) {
            return Err(format!("duplicate series line: {series}"));
        }
        seen_series.push(series);
        samples.push(Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    // Histogram integrity: buckets are cumulative and end at _count.
    for (fam, (_, _, kind)) in &families {
        if kind != "histogram" {
            continue;
        }
        // Group buckets by their label block minus `le`.
        let mut groups: HashMap<String, Vec<f64>> = HashMap::new();
        for s in &samples {
            if s.name == format!("{fam}_bucket") {
                let base: String = s
                    .labels
                    .trim_matches(['{', '}'])
                    .split(',')
                    .filter(|kv| !kv.starts_with("le="))
                    .collect::<Vec<_>>()
                    .join(",");
                groups.entry(base).or_default().push(s.value);
            }
        }
        if groups.is_empty() {
            return Err(format!("histogram {fam} exported no buckets"));
        }
        for (base, cum) in groups {
            if !cum.windows(2).all(|w| w[0] <= w[1]) {
                return Err(format!("{fam}{{{base}}} buckets not cumulative: {cum:?}"));
            }
            let count = samples
                .iter()
                .find(|s| {
                    s.name == format!("{fam}_count") && s.labels.trim_matches(['{', '}']) == base
                })
                .ok_or_else(|| format!("{fam} has buckets but no _count"))?
                .value;
            if *cum.last().unwrap() != count {
                return Err(format!("{fam} +Inf bucket disagrees with _count"));
            }
            if !samples.iter().any(|s| {
                s.name == format!("{fam}_sum") && s.labels.trim_matches(['{', '}']) == base
            }) {
                return Err(format!("{fam} missing _sum"));
            }
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "\
# HELP ant_requests_total Requests served
# TYPE ant_requests_total counter
ant_requests_total 12
# HELP ant_latency_ns Latency
# TYPE ant_latency_ns histogram
ant_latency_ns_bucket{le=\"10\"} 1
ant_latency_ns_bucket{le=\"+Inf\"} 2
ant_latency_ns_sum 15
ant_latency_ns_count 2
";
        let samples = validate(text).unwrap();
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0].name, "ant_requests_total");
        assert_eq!(samples[0].value, 12.0);
    }

    #[test]
    fn rejects_structural_violations() {
        for (text, why) in [
            ("ant_x 1\n", "sample without family"),
            (
                "# HELP ant_x X\n# TYPE ant_x counter\nant_x 1\nant_x 1\n",
                "duplicate series",
            ),
            (
                "# TYPE ant_x counter\n# HELP ant_x X\nant_x 1\n",
                "TYPE before HELP",
            ),
            (
                "# HELP ant_h H\n# TYPE ant_h histogram\nant_h_bucket{le=\"1\"} 5\n\
                 ant_h_bucket{le=\"+Inf\"} 4\nant_h_sum 1\nant_h_count 4\n",
                "non-cumulative buckets",
            ),
        ] {
            assert!(validate(text).is_err(), "accepted {why}");
        }
    }
}
