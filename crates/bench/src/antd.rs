//! `antd`: the ANT serving daemon.
//!
//! Everything below PR 8 served a single process through the in-crate
//! [`Engine`] API; this module is the network front end that the
//! ROADMAP's "millions of users" require. The shape is deliberately
//! boring: a blocking accept loop over `std::net` (crates.io is
//! unavailable, so HTTP is the hand-rolled [`crate::http`] module), one
//! OS thread per connection, and every inference request funneled into
//! a per-model [`Engine`] — so *continuous batching happens across
//! connections*: concurrent users land in the same gather window and
//! share one LUT-decode + GEMM pass per layer.
//!
//! Serving policies the daemon adds on top of the engine:
//!
//! * **Admission control.** The engine's submit queue is bounded
//!   ([`BatchPolicy::max_queue`]); [`RuntimeError::Overloaded`] maps to
//!   HTTP 429 with a `Retry-After` header instead of unbounded memory
//!   growth.
//! * **Deadlines.** Waits go through [`Engine::wait_timeout`]; an
//!   expired deadline cancels the request ([`Engine::cancel`]) and
//!   returns 504 rather than trusting worker liveness.
//! * **Hot reload.** `POST /v1/models/{name}/reload` re-maps the
//!   artifact and swaps the model's engine behind an
//!   `RwLock<Arc<ModelState>>`; in-flight requests keep the old engine
//!   (and, through the plan's owner tokens, the old mmap) alive until
//!   they finish.
//! * **Graceful drain.** `shutdown()` / SIGTERM stops accepting, lets
//!   each connection finish its in-flight exchange (responses carry
//!   `Connection: close`), and joins every worker before `join`
//!   returns.
//! * **Self-healing.** A per-model circuit breaker watches for engine
//!   death (the engine's supervisor only dies once its restart budget
//!   is exhausted): a dead engine trips the breaker open, requests
//!   answer 503 with `Retry-After` while a background task rebuilds
//!   the engine from the still-mapped artifact, and the first request
//!   through the half-open breaker proves the rebuilt engine before
//!   traffic fully resumes. `--chaos SPEC` arms the runtime's
//!   deterministic fault-injection plan (`ant_runtime::chaos`) for
//!   drills and the chaos e2e suite.
//!
//! * **Token streaming.** `POST /v1/models/{name}/generate` drives a
//!   causal model's decode loop through the engine's prefill/decode
//!   phases and streams one JSON line per generated token over chunked
//!   transfer coding — the client sees tokens as they decode, not a
//!   buffered blob after the fact. The per-session packed KV cache is
//!   opened before the first chunk and closed on *every* exit path
//!   (drop guard), so an abandoned stream cannot pin cache bytes.
//!
//! Endpoints: `GET /healthz`, `GET /metrics` (Prometheus text via
//! `ant-obs`), `GET /v1/models`, `POST /v1/models/{name}/infer`,
//! `POST /v1/models/{name}/generate`, `POST /v1/models/{name}/reload`,
//! `POST /shutdown`. See `docs/serving.md` for the wire contract.

use crate::http::{
    finish_chunked, read_request, write_chunk, write_chunked_head, HttpError, Request, Response,
};
use crate::json::Json;
use ant_obs::export::prometheus_text;
use ant_obs::{global, Counter, Gauge, Histogram};
use ant_runtime::{ArtifactError, BatchPolicy, Engine, FaultPlan, MappedArtifact, RuntimeError};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// How a daemon failed to start or run.
#[derive(Debug)]
pub enum DaemonError {
    /// Socket setup or accept-loop failure.
    Io(io::Error),
    /// An artifact failed to load or compile.
    Artifact(ArtifactError),
    /// Invalid configuration (duplicate model names, no models, ...).
    Config(String),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "i/o error: {e}"),
            DaemonError::Artifact(e) => write!(f, "artifact error: {e}"),
            DaemonError::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<io::Error> for DaemonError {
    fn from(e: io::Error) -> Self {
        DaemonError::Io(e)
    }
}

impl From<ArtifactError> for DaemonError {
    fn from(e: ArtifactError) -> Self {
        DaemonError::Artifact(e)
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (`:0` for an ephemeral
    /// port — `Daemon::local_addr` reports what was bound).
    pub addr: String,
    /// Served models: display name → `.antm` artifact path.
    pub models: Vec<(String, PathBuf)>,
    /// Batching/admission policy for every model's engine.
    pub policy: BatchPolicy,
    /// Per-request deadline: a wait past this cancels the request and
    /// answers 504.
    pub request_timeout: Duration,
    /// Fault-injection plan installed process-wide at startup
    /// (`--chaos SPEC`). Dormant unless the runtime's `chaos` feature
    /// is compiled in; `None` leaves whatever plan is already active.
    pub chaos: Option<FaultPlan>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            models: Vec::new(),
            policy: BatchPolicy::default(),
            request_timeout: Duration::from_secs(30),
            chaos: None,
        }
    }
}

/// One model's serving state. Immutable once built — reload builds a
/// fresh `ModelState` and swaps the `Arc`, so in-flight requests keep
/// batching through the generation they started on.
struct ModelState {
    engine: Engine,
    in_features: Option<usize>,
    /// `Some(dim)` when the model is a causal decoder that can serve
    /// `/generate`; the dim doubles as the synthetic vocabulary size.
    token_dim: Option<usize>,
    /// Bumped on every successful reload or rebuild (starts at 1).
    generation: u64,
    /// The mapped artifact the engine was compiled from, kept so the
    /// breaker's background rebuild can recompile without re-reading
    /// the file (the bytes that already served are known-good even if
    /// the path was replaced or deleted since).
    mapped: Arc<MappedArtifact>,
}

/// Circuit-breaker position for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Engine dead: requests answer 503 while a rebuild runs.
    Open,
    /// Engine rebuilt: one probe request is let through; its success
    /// closes the breaker, its death re-opens it.
    HalfOpen,
}

/// Mutable breaker bookkeeping, behind the slot's `breaker` mutex.
struct BreakerInner {
    state: BreakerState,
    /// A half-open probe has been admitted and has not reported back.
    probe_in_flight: bool,
    /// A background rebuild thread is running (or about to).
    rebuilding: bool,
}

/// `antd_breaker_state` gauge encoding.
fn breaker_gauge_value(state: BreakerState) -> i64 {
    match state {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

/// A served model: its name, artifact path, swappable state, and the
/// circuit breaker guarding admission to its engine.
struct ModelSlot {
    name: String,
    path: PathBuf,
    state: RwLock<Arc<ModelState>>,
    /// Serializes reloads (the compile happens outside the state lock).
    reload_lock: Mutex<()>,
    breaker: Mutex<BreakerInner>,
    /// `antd_breaker_state{model=...}`: 0 closed, 1 open, 2 half-open.
    breaker_state: Arc<Gauge>,
    /// `antd_breaker_trips_total{model=...}`.
    breaker_trips: Arc<Counter>,
    /// `antd_engine_rebuilds_total{model=...}`.
    engine_rebuilds: Arc<Counter>,
}

impl ModelSlot {
    fn new(name: String, path: PathBuf, state: ModelState) -> ModelSlot {
        let r = global();
        ModelSlot {
            breaker: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                probe_in_flight: false,
                rebuilding: false,
            }),
            breaker_state: r.gauge_with(
                "antd_breaker_state",
                "model",
                &name,
                "Per-model circuit breaker: 0 closed, 1 open, 2 half-open",
            ),
            breaker_trips: r.counter_with(
                "antd_breaker_trips_total",
                "model",
                &name,
                "Breaker trips: engine deaths that opened the circuit",
            ),
            engine_rebuilds: r.counter_with(
                "antd_engine_rebuilds_total",
                "model",
                &name,
                "Engines rebuilt from the still-mapped artifact after death",
            ),
            name,
            path,
            state: RwLock::new(Arc::new(state)),
            reload_lock: Mutex::new(()),
        }
    }

    /// The current generation's state (cheap: one `Arc` clone).
    fn current(&self) -> Arc<ModelState> {
        Arc::clone(&self.state.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Locks the breaker, recovering from poison (a panicking rebuild
    /// thread must not wedge admission forever).
    fn breaker(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.breaker.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Daemon-level metrics, registered once in the process-global `ant-obs`
/// registry so `/metrics` exposes them alongside the runtime's engine
/// and layer series.
struct DaemonMetrics {
    /// Responses by status code.
    by_code: HashMap<u16, Arc<Counter>>,
    /// Fallback for codes outside the precreated set.
    other: Arc<Counter>,
    connections_open: Arc<Gauge>,
    reloads: Arc<Counter>,
    request_time_ns: Arc<Histogram>,
}

impl DaemonMetrics {
    fn new() -> DaemonMetrics {
        let r = global();
        let help = "antd responses by HTTP status code";
        let by_code = [200u16, 400, 404, 405, 408, 413, 422, 429, 500, 503, 504]
            .into_iter()
            .map(|code| {
                let c =
                    r.counter_with("antd_http_responses_total", "code", &code.to_string(), help);
                (code, c)
            })
            .collect();
        DaemonMetrics {
            by_code,
            other: global().counter_with("antd_http_responses_total", "code", "other", help),
            connections_open: r.gauge("antd_connections_open", "Open client connections"),
            reloads: r.counter("antd_reloads_total", "Successful hot artifact reloads"),
            request_time_ns: r.histogram(
                "antd_request_time_ns",
                "Wall time from parsed request to written response",
            ),
        }
    }

    fn count(&self, status: u16) {
        self.by_code.get(&status).unwrap_or(&self.other).add(1);
    }
}

/// State shared by the accept loop and every connection worker.
struct Inner {
    models: Vec<ModelSlot>,
    policy: BatchPolicy,
    request_timeout: Duration,
    /// Drain flag: set once, never cleared.
    draining: AtomicBool,
    metrics: DaemonMetrics,
}

impl Inner {
    fn model(&self, name: &str) -> Option<&ModelSlot> {
        self.models.iter().find(|m| m.name == name)
    }

    fn model_idx(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|m| m.name == name)
    }
}

/// A running serving daemon. Dropping it without [`Daemon::join`]
/// initiates shutdown and detaches the worker threads.
pub struct Daemon {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

/// Loads and strict-compiles one artifact into a fresh engine.
fn build_state(
    path: &PathBuf,
    policy: BatchPolicy,
    generation: u64,
) -> Result<ModelState, DaemonError> {
    let mapped = Arc::new(MappedArtifact::open(path)?);
    let plan = mapped.compile_strict()?;
    let in_features = plan.in_features();
    let token_dim = plan.token_dim();
    Ok(ModelState {
        engine: Engine::new(plan, policy),
        in_features,
        token_dim,
        generation,
        mapped,
    })
}

/// Recompiles a model's engine from its still-mapped artifact — the
/// breaker's background self-heal. No file I/O: the mapping that
/// already served requests is the trusted source.
fn rebuild_state(slot: &ModelSlot, policy: BatchPolicy) -> Result<ModelState, DaemonError> {
    let old = slot.current();
    #[cfg(feature = "chaos")]
    if ant_runtime::chaos::maybe_fail(ant_runtime::chaos::FaultSite::ReloadCorrupt) {
        return Err(DaemonError::Artifact(ArtifactError::Io(io::Error::other(
            "chaos: injected artifact-reload corruption",
        ))));
    }
    let plan = old.mapped.compile_strict()?;
    let in_features = plan.in_features();
    let token_dim = plan.token_dim();
    Ok(ModelState {
        engine: Engine::new(plan, policy),
        in_features,
        token_dim,
        generation: old.generation + 1,
        mapped: Arc::clone(&old.mapped),
    })
}

/// Rebuild attempts per breaker trip. Exhausting them leaves the
/// breaker open; the next refused request re-arms a fresh rebuild, so
/// a transiently failing recompile (e.g. injected reload corruption)
/// never strands the model permanently.
const REBUILD_ATTEMPTS: u32 = 10;

/// The breaker's refusal: same shape as overload shedding (503 +
/// `Retry-After`) so clients reuse their backoff path.
fn breaker_refuse(name: &str) -> Response {
    Response::new(503)
        .header("Retry-After", "1")
        .text(format!("model {name:?} is recovering; retry shortly\n"))
}

/// Admission through the model's circuit breaker. `Ok(probe)` admits
/// the request (`probe` marks the single half-open canary);
/// `Err(resp)` is the 503 to send instead. An open breaker with no
/// rebuild running re-arms one — traffic keeps the self-heal alive
/// even after a rebuild gave up.
fn breaker_admit(inner: &Arc<Inner>, idx: usize) -> Result<bool, Response> {
    let slot = &inner.models[idx];
    let mut b = slot.breaker();
    match b.state {
        BreakerState::Closed => Ok(false),
        BreakerState::Open => {
            if !b.rebuilding {
                b.rebuilding = true;
                spawn_rebuild(inner, idx);
            }
            Err(breaker_refuse(&slot.name))
        }
        BreakerState::HalfOpen => {
            if b.probe_in_flight {
                Err(breaker_refuse(&slot.name))
            } else {
                b.probe_in_flight = true;
                Ok(true)
            }
        }
    }
}

/// Post-request breaker bookkeeping: an engine found dead (on the
/// still-current generation) trips the breaker open and arms a
/// rebuild; a surviving half-open probe closes it.
fn breaker_report(inner: &Arc<Inner>, idx: usize, probe: bool, engine_dead: bool) {
    let slot = &inner.models[idx];
    let mut b = slot.breaker();
    if engine_dead {
        if b.state != BreakerState::Open {
            slot.breaker_trips.add(1);
            eprintln!(
                "[antd] model {:?}: engine dead; breaker open, rebuilding",
                slot.name
            );
        }
        b.state = BreakerState::Open;
        b.probe_in_flight = false;
        slot.breaker_state.set(breaker_gauge_value(b.state));
        if !b.rebuilding {
            b.rebuilding = true;
            spawn_rebuild(inner, idx);
        }
    } else if probe {
        b.state = BreakerState::Closed;
        b.probe_in_flight = false;
        slot.breaker_state.set(breaker_gauge_value(b.state));
        eprintln!(
            "[antd] model {:?}: probe succeeded; breaker closed",
            slot.name
        );
    }
}

/// Background self-heal: recompile the engine from the still-mapped
/// artifact under a bounded retry budget, then move the breaker to
/// half-open. The caller must have set `rebuilding` before spawning.
fn spawn_rebuild(inner: &Arc<Inner>, idx: usize) {
    let inner = Arc::clone(inner);
    std::thread::spawn(move || {
        let slot = &inner.models[idx];
        let mut backoff = Duration::from_millis(10);
        for attempt in 1..=REBUILD_ATTEMPTS {
            match rebuild_state(slot, inner.policy) {
                Ok(fresh) => {
                    let generation = fresh.generation;
                    *slot.state.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(fresh);
                    slot.engine_rebuilds.add(1);
                    let mut b = slot.breaker();
                    b.state = BreakerState::HalfOpen;
                    b.probe_in_flight = false;
                    b.rebuilding = false;
                    slot.breaker_state.set(breaker_gauge_value(b.state));
                    eprintln!(
                        "[antd] model {:?}: engine rebuilt (generation {generation}); \
                         breaker half-open",
                        slot.name
                    );
                    return;
                }
                Err(e) => {
                    eprintln!(
                        "[antd] model {:?}: rebuild attempt {attempt}/{REBUILD_ATTEMPTS} \
                         failed: {e}",
                        slot.name
                    );
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                }
            }
        }
        // Give up for now; stay open. The next refused request re-arms.
        slot.breaker().rebuilding = false;
    });
}

impl Daemon {
    /// Binds the listen socket, loads every configured artifact, and
    /// starts the accept loop.
    ///
    /// # Errors
    ///
    /// [`DaemonError`] when the config is empty or duplicated, an
    /// artifact fails to load/compile, or the socket cannot bind.
    pub fn start(config: DaemonConfig) -> Result<Daemon, DaemonError> {
        if config.models.is_empty() {
            return Err(DaemonError::Config("no models configured".into()));
        }
        if let Some(plan) = &config.chaos {
            // Installed before the first artifact opens so mmap-load
            // faults can hit startup paths too. A no-op (plan never
            // consulted) unless the runtime's `chaos` feature is on.
            eprintln!("[antd] chaos plan armed: {plan:?}");
            ant_runtime::chaos::install(plan.clone());
        }
        let mut models = Vec::new();
        for (name, path) in &config.models {
            if models.iter().any(|m: &ModelSlot| m.name == *name) {
                return Err(DaemonError::Config(format!(
                    "duplicate model name {name:?}"
                )));
            }
            let state = build_state(path, config.policy, 1)?;
            models.push(ModelSlot::new(name.clone(), path.clone(), state));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept so the loop can poll the drain flag; 10ms
        // granularity is far below any human-visible shutdown latency.
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            models,
            policy: config.policy,
            request_timeout: config.request_timeout,
            draining: AtomicBool::new(false),
            metrics: DaemonMetrics::new(),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_inner));
        Ok(Daemon {
            inner,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound listen address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Initiates a graceful drain: stop accepting, finish in-flight
    /// exchanges, close every connection. Idempotent; returns
    /// immediately — use [`Daemon::join`] to wait for completion.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been initiated (by [`Daemon::shutdown`] or
    /// `POST /shutdown`).
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop and every connection worker to finish.
    /// Call after [`Daemon::shutdown`] (or after `POST /shutdown`
    /// arrived) for a clean exit; the engines drain on drop afterwards.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Accept connections until drain, then join the connection workers.
fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !inner.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                workers.push(std::thread::spawn(move || {
                    conn_inner.metrics.connections_open.add(1);
                    let _ = handle_connection(&conn_inner, stream);
                    conn_inner.metrics.connections_open.add(-1);
                }));
                // Opportunistically reap finished workers so a
                // long-lived daemon does not accumulate handles.
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    for h in workers {
        let _ = h.join();
    }
}

/// Serves one connection: HTTP/1.1 keep-alive, one exchange at a time.
///
/// Reads poll at 100ms so the worker notices a drain between requests;
/// an idle timeout mid-exchange only drops clients that stall longer
/// than that *inside* a request, which local serving tolerates.
fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        // Idle wait: sleep on the socket until bytes arrive, EOF, or a
        // drain begins. `fill_buf` does not consume, so a request that
        // arrives in pieces is intact when `read_request` takes over.
        loop {
            match reader.fill_buf() {
                Ok([]) => return Ok(()), // clean EOF between requests
                Ok(_) => break,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if inner.draining.load(Ordering::SeqCst) {
                        return Ok(()); // idle at drain: just close
                    }
                }
                Err(_) => return Ok(()),
            }
        }
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(HttpError::Io(_) | HttpError::UnexpectedEof) => return Ok(()),
            Err(HttpError::TooLarge(m)) => {
                let resp = Response::new(413).text(format!("{m}\n"));
                inner.metrics.count(resp.status);
                let _ = resp.write_to(&mut writer, true);
                return Ok(());
            }
            Err(HttpError::Malformed(m)) => {
                let resp = Response::new(400).text(format!("{m}\n"));
                inner.metrics.count(resp.status);
                let _ = resp.write_to(&mut writer, true);
                return Ok(());
            }
        };
        let started = ant_obs::now_ns();
        #[cfg(feature = "chaos")]
        if ant_runtime::chaos::maybe_fail(ant_runtime::chaos::FaultSite::ConnDrop) {
            return Ok(()); // chaos: hang up without answering
        }
        let close = req.wants_close() || inner.draining.load(Ordering::SeqCst);
        // `/generate` streams its body chunk by chunk, so it writes the
        // socket itself instead of returning a buffered `Response`.
        let status = match generate_target(&req) {
            Some(name) if req.method == "POST" => {
                generate(inner, &name, &req.body, &mut writer, close)?
            }
            Some(_) => {
                Response::new(405)
                    .text("use POST\n")
                    .write_to(&mut writer, close)?;
                405
            }
            None => {
                let resp = route(inner, &req);
                let status = resp.status;
                resp.write_to(&mut writer, close)?;
                status
            }
        };
        inner.metrics.count(status);
        inner
            .metrics
            .request_time_ns
            .record(ant_obs::now_ns().saturating_sub(started));
        if close {
            return Ok(());
        }
    }
}

/// Dispatches one request to its endpoint handler.
fn route(inner: &Arc<Inner>, req: &Request) -> Response {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            if inner.draining.load(Ordering::SeqCst) {
                // Same contract as overload shedding: tell pollers when
                // to come back instead of leaving them to guess.
                Response::new(503)
                    .header("Retry-After", "1")
                    .text("draining\n")
            } else {
                Response::new(200).text("ok\n")
            }
        }
        ("GET", "/metrics") => Response::new(200).body(
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(&global().snapshot()),
        ),
        ("GET", "/v1/models") => list_models(inner),
        ("POST", "/shutdown") => {
            inner.draining.store(true, Ordering::SeqCst);
            Response::new(200).text("draining\n")
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/v1/models/") {
                if let Some(name) = rest.strip_suffix("/infer") {
                    return if req.method == "POST" {
                        infer(inner, name, &req.body)
                    } else {
                        Response::new(405).text("use POST\n")
                    };
                }
                if let Some(name) = rest.strip_suffix("/reload") {
                    return if req.method == "POST" {
                        reload(inner, name)
                    } else {
                        Response::new(405).text("use POST\n")
                    };
                }
            }
            Response::new(404).text("no such endpoint\n")
        }
    }
}

/// `GET /v1/models`: the served models and their current generations.
fn list_models(inner: &Inner) -> Response {
    let models = inner
        .models
        .iter()
        .map(|m| {
            let state = m.current();
            Json::Obj(vec![
                ("name".into(), Json::Str(m.name.clone())),
                (
                    "in_features".into(),
                    state
                        .in_features
                        .map_or(Json::Null, |f| Json::Num(f as f64)),
                ),
                (
                    "token_dim".into(),
                    state.token_dim.map_or(Json::Null, |d| Json::Num(d as f64)),
                ),
                ("generation".into(), Json::Num(state.generation as f64)),
                ("max_queue".into(), Json::Num(inner.policy.max_queue as f64)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![("models".into(), Json::Arr(models))]);
    Response::new(200).json(doc.render())
}

/// Extracts the input row from an infer body: `{"input": [..]}` or a
/// bare array of numbers.
fn parse_input(body: &[u8]) -> Result<Vec<f32>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let arr = match doc.get("input") {
        Some(v) => v,
        None => &doc,
    };
    let items = arr
        .as_arr()
        .ok_or_else(|| "expected {\"input\": [numbers]} or a bare array".to_string())?;
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .map(|n| n as f32)
                .ok_or_else(|| "input array must hold numbers".to_string())
        })
        .collect()
}

/// Maps an unexpected engine error to HTTP: a dead engine answers like
/// the breaker's refusal (the trip itself happens in the caller's
/// `breaker_report`), anything else is a plain 500.
fn engine_failure(name: &str, engine: &Engine, e: &RuntimeError) -> Response {
    if engine.is_dead() {
        breaker_refuse(name)
    } else {
        Response::new(500).text(format!("{e}\n"))
    }
}

/// `POST /v1/models/{name}/infer`: admit through the breaker, submit
/// through the model's engine, wait under the request deadline, map
/// engine errors to HTTP, and report the outcome back to the breaker.
fn infer(inner: &Arc<Inner>, name: &str, body: &[u8]) -> Response {
    let Some(idx) = inner.model_idx(name) else {
        return Response::new(404).text(format!("no model {name:?}\n"));
    };
    let input = match parse_input(body) {
        Ok(v) => v,
        Err(m) => return Response::new(400).text(format!("{m}\n")),
    };
    let probe = match breaker_admit(inner, idx) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let slot = &inner.models[idx];
    // Pin this request to the current generation: a concurrent reload
    // swaps the slot, but this Arc keeps the old engine (and its mmap)
    // alive until the response is out.
    let state = slot.current();
    let resp = infer_on(inner, name, &state, &input);
    // Only the still-current generation can trip the breaker: a dead
    // engine pinned from before a reload/rebuild says nothing about
    // the engine now serving.
    let dead = state.engine.is_dead() && Arc::ptr_eq(&state, &slot.current());
    breaker_report(inner, idx, probe, dead);
    resp
}

/// The engine round-trip of [`infer`], after breaker admission.
fn infer_on(inner: &Inner, name: &str, state: &ModelState, input: &[f32]) -> Response {
    let id = match state.engine.submit(input) {
        Ok(id) => id,
        Err(RuntimeError::Overloaded { queued, max_queue }) => {
            return Response::new(429)
                .header("Retry-After", "1")
                .text(format!("overloaded: queue {queued}/{max_queue}\n"));
        }
        Err(e @ RuntimeError::ShapeMismatch { .. }) => {
            return Response::new(400).text(format!("{e}\n"));
        }
        Err(e) => return engine_failure(name, &state.engine, &e),
    };
    match state.engine.wait_timeout(id, inner.request_timeout) {
        Ok(Some(output)) => {
            let doc = Json::Obj(vec![
                (
                    "output".into(),
                    Json::Arr(output.iter().map(|v| Json::Num(f64::from(*v))).collect()),
                ),
                ("generation".into(), Json::Num(state.generation as f64)),
            ]);
            Response::new(200).json(doc.render())
        }
        Ok(None) => {
            // Deadline expired: drop the eventual result so it does not
            // park in the engine forever.
            state.engine.cancel(id);
            Response::new(504).text("request deadline exceeded\n")
        }
        // The quarantine isolated this request as the one that poisons
        // its batch: a client bug, not a server fault — don't retry.
        Err(e @ RuntimeError::PoisonedRequest { .. }) => Response::new(422).text(format!("{e}\n")),
        Err(e) => engine_failure(name, &state.engine, &e),
    }
}

/// `/v1/models/{name}/generate` path match (any method; the caller
/// enforces POST).
fn generate_target(req: &Request) -> Option<String> {
    req.path
        .strip_prefix("/v1/models/")
        .and_then(|rest| rest.strip_suffix("/generate"))
        .map(str::to_string)
}

/// Longest accepted prompt, in tokens.
const MAX_PROMPT_TOKENS: usize = 1024;
/// Largest accepted `max_tokens` (bounds the per-request KV arena).
const MAX_GENERATE_TOKENS: usize = 1024;

/// Parsed `/generate` body: `{"prompt": [ids], "max_tokens": N}`.
struct GenerateParams {
    prompt: Vec<u32>,
    max_tokens: usize,
}

fn parse_generate(body: &[u8]) -> Result<GenerateParams, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let items = doc
        .get("prompt")
        .and_then(Json::as_arr)
        .ok_or_else(|| "expected {\"prompt\": [token ids], \"max_tokens\": N}".to_string())?;
    let prompt: Vec<u32> = items
        .iter()
        .map(|v| match v.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= f64::from(u32::MAX) => Ok(n as u32),
            _ => Err("prompt must hold non-negative integer token ids".to_string()),
        })
        .collect::<Result<_, _>>()?;
    if prompt.is_empty() {
        return Err("prompt must hold at least one token".to_string());
    }
    if prompt.len() > MAX_PROMPT_TOKENS {
        return Err(format!("prompt beyond {MAX_PROMPT_TOKENS} tokens"));
    }
    let max_tokens = match doc.get("max_tokens") {
        None => 16,
        Some(v) => match v.as_f64() {
            Some(n) if n >= 1.0 && n.fract() == 0.0 && n <= MAX_GENERATE_TOKENS as f64 => {
                n as usize
            }
            _ => {
                return Err(format!(
                    "max_tokens must be an integer in 1..={MAX_GENERATE_TOKENS}"
                ))
            }
        },
    };
    Ok(GenerateParams { prompt, max_tokens })
}

/// SplitMix64: the deterministic token embedding's bit mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic hash embedding: token id → `dim` floats in [-1, 1).
/// The daemon serves synthetic decoders with no trained embedding
/// table, so the mapping only has to be fixed and well-spread — the
/// conformance suite proves the *decode math*, this proves the wiring.
fn embed_token(id: u32, dim: usize, out: &mut Vec<f32>) {
    for j in 0..dim {
        let z = splitmix((u64::from(id) << 32) | j as u64);
        // Top 24 bits → [0, 1) → [-1, 1).
        out.push(((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0);
    }
}

/// Greedy sampling: the model's last output row is read as logits over
/// the synthetic vocabulary (one entry per token dim).
fn argmax(row: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, v) in row.iter().enumerate() {
        if *v > row[best] {
            best = i;
        }
    }
    best as u32
}

/// Closes the session on every exit path out of [`generate`] — an
/// abandoned or failed stream must not pin KV cache bytes.
struct SessionGuard<'a> {
    engine: &'a Engine,
    sid: ant_runtime::SessionId,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.engine.close_session(self.sid);
    }
}

/// Writes a buffered (non-streaming) response and returns its status.
fn buffered(w: &mut impl Write, resp: Response, close: bool) -> io::Result<u16> {
    let status = resp.status;
    resp.write_to(w, close)?;
    Ok(status)
}

/// `POST /v1/models/{name}/generate`: admit through the breaker, then
/// prefill the prompt and stream one greedy-sampled token per decode
/// step as a JSON line over chunked transfer coding, ending with a
/// `{"done": true, ...}` line. Errors before the first chunk are
/// ordinary buffered responses; errors mid-stream become a final
/// `{"error": ...}` line (the HTTP status is already on the wire).
/// Returns the status for metrics.
fn generate(
    inner: &Arc<Inner>,
    name: &str,
    body: &[u8],
    w: &mut impl Write,
    close: bool,
) -> io::Result<u16> {
    let Some(idx) = inner.model_idx(name) else {
        return buffered(
            w,
            Response::new(404).text(format!("no model {name:?}\n")),
            close,
        );
    };
    let params = match parse_generate(body) {
        Ok(p) => p,
        Err(m) => return buffered(w, Response::new(400).text(format!("{m}\n")), close),
    };
    let probe = match breaker_admit(inner, idx) {
        Ok(p) => p,
        Err(resp) => return buffered(w, resp, close),
    };
    let slot = &inner.models[idx];
    let state = slot.current();
    let status = stream_generate(inner, name, &state, &params, w, close);
    let dead = state.engine.is_dead() && Arc::ptr_eq(&state, &slot.current());
    breaker_report(inner, idx, probe, dead);
    status
}

/// The streaming body of [`generate`], after breaker admission.
fn stream_generate(
    inner: &Inner,
    name: &str,
    state: &ModelState,
    params: &GenerateParams,
    w: &mut impl Write,
    close: bool,
) -> io::Result<u16> {
    let Some(dim) = state.token_dim else {
        return buffered(
            w,
            Response::new(400).text(format!("model {name:?} is not a causal decoder\n")),
            close,
        );
    };
    // One KV slot per prompt token plus one per generated token; the
    // last generated token is sampled without being fed back, so this
    // bound is never hit mid-stream.
    let capacity = params.prompt.len() + params.max_tokens;
    let sid = match state.engine.open_session(capacity) {
        Ok(sid) => sid,
        Err(e) => return buffered(w, Response::new(500).text(format!("{e}\n")), close),
    };
    let guard = SessionGuard {
        engine: &state.engine,
        sid,
    };
    let mut rows = Vec::with_capacity(capacity * dim);
    for id in &params.prompt {
        embed_token(*id, dim, &mut rows);
    }
    // Prefill before committing to a 200: its errors (overload, a
    // mid-flight reload closing the session) still map to clean HTTP.
    let mut last = match submit_and_wait(inner, name, &state.engine, sid, &rows, true) {
        Ok(row) => row,
        Err(resp) => return buffered(w, resp, close),
    };
    drop(rows);
    write_chunked_head(w, 200, "application/json", close)?;
    let mut produced = 0usize;
    let mut error = None;
    let mut step = Vec::with_capacity(dim);
    while produced < params.max_tokens {
        let token = argmax(&last);
        write_chunk(w, format!("{{\"token\":{token}}}\n").as_bytes())?;
        #[cfg(feature = "chaos")]
        if ant_runtime::chaos::maybe_fail(ant_runtime::chaos::FaultSite::ConnDrop) {
            // The guard closes the session; the io error closes the
            // connection — exactly what a dropped client looks like.
            return Err(io::Error::other(
                "chaos: injected mid-stream connection drop",
            ));
        }
        produced += 1;
        if produced == params.max_tokens {
            break;
        }
        step.clear();
        embed_token(token, dim, &mut step);
        match submit_and_wait(inner, name, &state.engine, sid, &step, false) {
            Ok(row) => last = row,
            Err(resp) => {
                // Already streaming: the failure rides the body.
                error = Some(String::from_utf8_lossy(&resp.body).trim().to_string());
                break;
            }
        }
    }
    let tail = match &error {
        None => format!("{{\"done\":true,\"tokens\":{produced}}}\n"),
        Some(m) => format!(
            "{{\"done\":false,\"tokens\":{produced},\"error\":{}}}\n",
            Json::Str(m.clone()).render()
        ),
    };
    write_chunk(w, tail.as_bytes())?;
    finish_chunked(w)?;
    drop(guard);
    Ok(200)
}

/// One engine round-trip of the generate loop (prefill or single decode
/// step) under the request deadline, with engine errors mapped to the
/// HTTP response the caller would have sent.
fn submit_and_wait(
    inner: &Inner,
    name: &str,
    engine: &Engine,
    sid: ant_runtime::SessionId,
    rows: &[f32],
    prefill: bool,
) -> Result<Vec<f32>, Response> {
    let submit = if prefill {
        engine.submit_prefill(sid, rows)
    } else {
        engine.submit_decode(sid, rows)
    };
    let id = match submit {
        Ok(id) => id,
        Err(RuntimeError::Overloaded { queued, max_queue }) => {
            return Err(Response::new(429)
                .header("Retry-After", "1")
                .text(format!("overloaded: queue {queued}/{max_queue}\n")));
        }
        Err(e @ RuntimeError::ShapeMismatch { .. }) => {
            return Err(Response::new(400).text(format!("{e}\n")));
        }
        Err(e) => return Err(engine_failure(name, engine, &e)),
    };
    match engine.wait_timeout(id, inner.request_timeout) {
        Ok(Some(row)) => Ok(row),
        Ok(None) => {
            engine.cancel(id);
            Err(Response::new(504).text("request deadline exceeded\n"))
        }
        Err(e @ RuntimeError::PoisonedRequest { .. }) => {
            Err(Response::new(422).text(format!("{e}\n")))
        }
        Err(e) => Err(engine_failure(name, engine, &e)),
    }
}

/// `POST /v1/models/{name}/reload`: re-map the artifact, strict-compile,
/// swap the engine. The old generation keeps serving until the swap.
fn reload(inner: &Inner, name: &str) -> Response {
    let Some(slot) = inner.model(name) else {
        return Response::new(404).text(format!("no model {name:?}\n"));
    };
    // One reload at a time per model; the expensive compile runs outside
    // the state lock so serving never blocks on it.
    let _serialized = slot.reload_lock.lock().unwrap_or_else(|e| e.into_inner());
    let generation = slot.current().generation + 1;
    let fresh = match build_state(&slot.path, inner.policy, generation) {
        Ok(s) => s,
        Err(e) => return Response::new(500).text(format!("reload failed: {e}\n")),
    };
    *slot.state.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(fresh);
    inner.metrics.reloads.add(1);
    {
        // An operator-driven reload installed a known-fresh engine: any
        // open breaker can close without waiting out a probe.
        let mut b = slot.breaker();
        b.state = BreakerState::Closed;
        b.probe_in_flight = false;
        slot.breaker_state.set(breaker_gauge_value(b.state));
    }
    let doc = Json::Obj(vec![
        ("model".into(), Json::Str(name.to_string())),
        ("generation".into(), Json::Num(generation as f64)),
    ]);
    Response::new(200).json(doc.render())
}

/// SIGTERM/SIGINT wiring for the `antd` binary: installs handlers that
/// set a process-wide flag the serve loop polls. Declared here (not in
/// the binary) so the e2e test can exercise the same code path.
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    mod sys {
        //! The libc surface this module needs, declared directly: std
        //! links libc on unix, so these resolve without any external
        //! crate (same pattern as `ant_runtime`'s mmap shim).
        #![allow(non_camel_case_types)]

        pub type c_int = i32;
        pub type sighandler_t = usize;

        pub const SIGINT: c_int = 2;
        pub const SIGTERM: c_int = 15;

        extern "C" {
            pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
        }
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: anything more is not async-signal-safe.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Installs SIGTERM/SIGINT handlers that record the request.
    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            sys::signal(sys::SIGTERM, handler);
            sys::signal(sys::SIGINT, handler);
        }
    }

    /// Whether a termination signal has arrived since [`install`].
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }

    /// Test hook: simulate a signal delivery.
    pub fn request() {
        REQUESTED.store(true, Ordering::SeqCst);
    }
}

/// Runs a daemon until shutdown: blocks the calling thread, polling the
/// signal flag, and drains cleanly on SIGTERM/SIGINT or `POST
/// /shutdown`. This is the whole `antd` binary behind argument parsing.
pub fn serve_until_shutdown(daemon: Daemon) {
    while !signal::requested() && !daemon.is_draining() {
        std::thread::sleep(Duration::from_millis(50));
    }
    daemon.shutdown();
    daemon.join();
}

/// Parses `antd` binary arguments into a config.
///
/// Usage: `antd --model NAME=PATH [--model ...] [--addr HOST:PORT]
/// [--max-batch N] [--max-wait-ms N] [--max-queue N] [--timeout-ms N]
/// [--max-restarts N] [--chaos SPEC]`
///
/// `--chaos` arms the runtime's deterministic fault-injection plan
/// (e.g. `seed=42,worker_panic=0.05,poison=1000000`); see
/// `ant_runtime::chaos` for the grammar. Dormant in builds without the
/// `chaos` feature.
///
/// # Errors
///
/// A usage string when the arguments do not parse.
pub fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:7171".to_string(),
        ..DaemonConfig::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} expects {what}"))
        };
        match arg.as_str() {
            "--model" => {
                let spec = value("NAME=PATH")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--model expects NAME=PATH, got {spec:?}"))?;
                config.models.push((name.to_string(), PathBuf::from(path)));
            }
            "--addr" => config.addr = value("HOST:PORT")?,
            "--max-batch" => {
                config.policy.max_batch = parse_num(&value("N")?)?;
            }
            "--max-wait-ms" => {
                config.policy.max_wait = Duration::from_millis(parse_num(&value("N")?)? as u64);
            }
            "--max-queue" => {
                config.policy.max_queue = parse_num(&value("N")?)?;
            }
            "--timeout-ms" => {
                config.request_timeout = Duration::from_millis(parse_num(&value("N")?)? as u64);
            }
            "--max-restarts" => {
                config.policy.max_restarts = parse_num(&value("N")?)? as u32;
            }
            "--chaos" => {
                let spec = value("SPEC")?;
                config.chaos = Some(FaultPlan::parse(&spec).map_err(|e| format!("--chaos: {e}"))?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if config.models.is_empty() {
        return Err("at least one --model NAME=PATH is required".to_string());
    }
    Ok(config)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_into_a_config() {
        let args: Vec<String> = [
            "--model",
            "mlp=/tmp/m.antm",
            "--addr",
            "127.0.0.1:0",
            "--max-queue",
            "8",
            "--max-batch",
            "16",
            "--max-wait-ms",
            "2",
            "--timeout-ms",
            "5000",
            "--max-restarts",
            "5",
            "--chaos",
            "seed=7,worker_panic=0.25,poison=1000000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let c = parse_args(&args).unwrap();
        assert_eq!(c.models.len(), 1);
        assert_eq!(c.models[0].0, "mlp");
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.policy.max_queue, 8);
        assert_eq!(c.policy.max_batch, 16);
        assert_eq!(c.policy.max_wait, Duration::from_millis(2));
        assert_eq!(c.request_timeout, Duration::from_millis(5000));
        assert_eq!(c.policy.max_restarts, 5);
        let plan = c.chaos.expect("--chaos parses into a plan");
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.poison(), Some(1_000_000.0));
    }

    #[test]
    fn args_reject_bad_chaos_specs() {
        let bad: Vec<String> = ["--model", "m=/tmp/m.antm", "--chaos", "seed=nope"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&bad).is_err());
    }

    #[test]
    fn args_reject_missing_models_and_bad_specs() {
        assert!(parse_args(&[]).is_err());
        let bad: Vec<String> = ["--model", "no-equals"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&bad).is_err());
        let unknown: Vec<String> = ["--frob"].iter().map(|s| s.to_string()).collect();
        assert!(parse_args(&unknown).is_err());
    }

    #[test]
    fn generate_body_parses_and_validates() {
        let p = parse_generate(b"{\"prompt\": [3, 0, 7], \"max_tokens\": 4}").unwrap();
        assert_eq!(p.prompt, vec![3, 0, 7]);
        assert_eq!(p.max_tokens, 4);
        // max_tokens defaults when omitted.
        assert_eq!(parse_generate(b"{\"prompt\": [1]}").unwrap().max_tokens, 16);
        assert!(parse_generate(b"{\"prompt\": []}").is_err());
        assert!(parse_generate(b"{\"prompt\": [1.5]}").is_err());
        assert!(parse_generate(b"{\"prompt\": [-1]}").is_err());
        assert!(parse_generate(b"{\"prompt\": [1], \"max_tokens\": 0}").is_err());
        assert!(parse_generate(b"{\"prompt\": [1], \"max_tokens\": 1000000}").is_err());
        assert!(parse_generate(b"{\"max_tokens\": 4}").is_err());
        assert!(parse_generate(b"not json").is_err());
    }

    #[test]
    fn token_embedding_is_deterministic_and_spread() {
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        embed_token(42, 16, &mut a);
        embed_token(42, 16, &mut b);
        embed_token(43, 16, &mut c);
        assert_eq!(a, b, "same token must embed identically");
        assert_ne!(a, c, "distinct tokens must embed differently");
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        // Not degenerate: the row is not a constant.
        assert!(a.iter().any(|v| (v - a[0]).abs() > 1e-3));
    }

    #[test]
    fn greedy_argmax_picks_first_maximum() {
        assert_eq!(argmax(&[0.1, 3.0, -2.0, 3.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn infer_body_parses_both_shapes() {
        assert_eq!(
            parse_input(b"{\"input\": [1, 2.5, -3]}").unwrap(),
            vec![1.0, 2.5, -3.0]
        );
        assert_eq!(parse_input(b"[0.5, 0.5]").unwrap(), vec![0.5, 0.5]);
        assert!(parse_input(b"{\"input\": \"nope\"}").is_err());
        assert!(parse_input(b"not json").is_err());
        assert!(parse_input(b"{\"input\": [1, null]}").is_err());
    }
}
