//! Shared helpers for the ANT reproduction's report binaries and benches.
//!
//! Each table/figure in the paper has a binary in `src/bin/` that prints
//! the corresponding rows/series (see DESIGN.md §4 for the index); the
//! helpers here cover the pieces several binaries share: table rendering
//! and the three trained reference models used by the accuracy
//! experiments.

pub mod alloc;
pub mod antc;
pub mod antd;
pub mod http;
pub mod json;
pub mod promcheck;

use ant_nn::data::{blobs, motifs, shapes, Dataset};
use ant_nn::model::{deep_mlp, small_cnn, tiny_transformer, Sequential};
use ant_nn::train::{train, TrainConfig};
use ant_nn::NnError;

/// Renders an aligned text table: a header row plus data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A trained reference model with its datasets, ready for quantization
/// experiments.
pub struct TrainedModel {
    /// Display name ("MLP", "CNN", "Transformer").
    pub name: &'static str,
    /// The trained network.
    pub model: Sequential,
    /// Training split.
    pub train_set: Dataset,
    /// Held-out split.
    pub test_set: Dataset,
    /// FP32 test accuracy after training.
    pub fp32_accuracy: f64,
}

fn finish(
    name: &'static str,
    mut model: Sequential,
    data: Dataset,
    cfg: TrainConfig,
) -> Result<TrainedModel, NnError> {
    let (train_set, test_set) = data.split(0.25);
    train(&mut model, &train_set, cfg)?;
    let fp32_accuracy = ant_nn::train::evaluate(&mut model, &test_set)?;
    Ok(TrainedModel {
        name,
        model,
        train_set,
        test_set,
        fp32_accuracy,
    })
}

/// Trains the deep MLP on the hard blobs task (10 near-overlapping
/// clusters): depth compounds quantization error, so the combo ordering of
/// Fig. 11 is measurable at this scale.
///
/// # Errors
///
/// Propagates training failures.
pub fn trained_mlp(seed: u64) -> Result<TrainedModel, NnError> {
    finish(
        "MLP",
        deep_mlp(16, 10, 24, 6, seed),
        blobs(1600, 16, 10, 1.0, seed.wrapping_add(1)),
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            seed,
        },
    )
}

/// Trains the CNN on the noisy shapes task.
///
/// # Errors
///
/// Propagates training failures.
pub fn trained_cnn(seed: u64) -> Result<TrainedModel, NnError> {
    finish(
        "CNN",
        small_cnn(4, seed),
        shapes(480, 0.4, seed.wrapping_add(1)),
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.9,
            seed,
        },
    )
}

/// Trains the tiny Transformer on the six-motif task with a narrow
/// embedding (quantization-sensitive).
///
/// # Errors
///
/// Propagates training failures.
pub fn trained_transformer(seed: u64) -> Result<TrainedModel, NnError> {
    finish(
        "Transformer",
        tiny_transformer(8, 8, 6, seed),
        motifs(960, 8, 8, 6, seed.wrapping_add(1)),
        TrainConfig {
            epochs: 25,
            batch_size: 32,
            lr: 0.03,
            momentum: 0.9,
            seed,
        },
    )
}

/// All three reference models (used by Figs. 11/12 and Tables V/VI).
///
/// # Errors
///
/// Propagates training failures.
pub fn all_trained_models(seed: u64) -> Result<Vec<TrainedModel>, NnError> {
    Ok(vec![
        trained_mlp(seed)?,
        trained_cnn(seed)?,
        trained_transformer(seed)?,
    ])
}

/// One row of the Figs. 11/12 accuracy experiment: a model × combo cell.
#[derive(Debug, Clone)]
pub struct AccuracyCell {
    /// Model name.
    pub model: &'static str,
    /// Combination label ("Int", "IP", ..., "ANT4-8").
    pub combo: String,
    /// FP32 reference accuracy.
    pub fp32: f64,
    /// Quantized accuracy (PTQ or post-QAT depending on the experiment).
    pub quantized: f64,
}

impl AccuracyCell {
    /// Accuracy loss in percentage points (the paper's y-axis).
    pub fn loss_points(&self) -> f64 {
        (self.fp32 - self.quantized) * 100.0
    }
}

/// Runs the Fig. 11 (PTQ, `fine_tune_epochs == 0`) or Fig. 12 (QAT)
/// experiment over the reference models and all five combinations.
///
/// # Errors
///
/// Propagates training/quantization failures.
pub fn accuracy_experiment(
    fine_tune_epochs: usize,
    seed: u64,
) -> Result<Vec<AccuracyCell>, NnError> {
    use ant_core::select::PrimitiveCombo;
    use ant_nn::qat::{QatHarness, QuantSpec};
    let mut cells = Vec::new();
    for reference in all_trained_models(seed)? {
        for combo in PrimitiveCombo::all() {
            let spec = QuantSpec {
                combo,
                ..QuantSpec::default()
            };
            let (calib, _) = reference
                .train_set
                .batch(&(0..100.min(reference.train_set.len())).collect::<Vec<_>>());
            let mut harness = QatHarness::new(
                reference.model.clone(),
                spec,
                calib,
                reference.train_set.clone(),
                reference.test_set.clone(),
                TrainConfig {
                    epochs: fine_tune_epochs,
                    batch_size: 32,
                    lr: 0.02,
                    momentum: 0.9,
                    seed: seed.wrapping_add(99),
                },
            )?;
            if fine_tune_epochs > 0 {
                harness.fine_tune()?;
            }
            cells.push(AccuracyCell {
                model: reference.name,
                combo: combo.label().to_string(),
                fp32: reference.fp32_accuracy,
                quantized: harness.test_accuracy()?,
            });
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let s = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1.00".to_string()],
                vec!["longer".to_string(), "2".to_string()],
            ],
        );
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn reference_models_train_to_usable_accuracy() {
        let m = trained_mlp(5).unwrap();
        assert!(m.fp32_accuracy > 0.6, "MLP fp32 {}", m.fp32_accuracy);
    }
}
