//! A minimal JSON value and recursive-descent parser.
//!
//! The workspace is dependency-free by construction, and the bench
//! tooling both writes JSON (hand-rolled in `antc.rs`) and now needs to
//! *read* it back: the `antc bench --baseline` perf guard compares a
//! fresh run against a stored `BENCH_runtime.json`, and the CLI tests
//! validate the schema structurally instead of by substring. This
//! parser covers exactly the JSON subset those artifacts use (no
//! surrogate-pair escapes, numbers via `f64`).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value
    /// on lookup but both entries are retained for key-set checks).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys in source order; empty for non-objects.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True for `null` (distinct from an absent key).
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as pretty-printed JSON (2-space indent, a
    /// trailing newline at top level) — the inverse of [`Json::parse`]
    /// for everything this module represents. `antc loadgen --out` uses
    /// it to merge a new section into an existing `BENCH_runtime.json`
    /// without re-deriving the rest of the document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_value(self, 0, &mut out);
        out.push('\n');
        out
    }
}

fn render_value(v: &Json, indent: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            // `{}` on f64 round-trips through the parser (shortest
            // representation that parses back to the same value).
            out.push_str(&n.to_string());
        }
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                render_value(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                render_string(k, out);
                out.push_str(": ");
                render_value(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(at: usize, msg: &str) -> JsonError {
    JsonError {
        at,
        msg: msg.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| err(start, "invalid number"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| err(*pos, "invalid UTF-8 in string"));
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b
                    .get(*pos)
                    .ok_or_else(|| err(*pos, "unterminated escape"))?;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "invalid \\u escape"))?;
                        let c = char::from_u32(hex)
                            .ok_or_else(|| err(*pos, "\\u escape outside the BMP scalar range"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after key"));
        }
        *pos += 1;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {"d": -3e2}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert!(arr[1].is_null());
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-300.0));
        assert_eq!(v.keys(), vec!["a", "b", "c"]);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"abc").is_err());
        let e = Json::parse("[1, nul]").unwrap_err();
        assert!(e.at >= 4, "{e}");
    }

    #[test]
    fn render_parse_roundtrip_is_identity() {
        let doc =
            r#"{"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {"d": -300, "e": [], "f": {}}}"#;
        let v = Json::parse(doc).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v, "{rendered}");
        // Rendering is stable: render(parse(render(v))) == render(v).
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
        // Control characters escape; integers print without a fraction.
        assert_eq!(Json::Str("a\u{1}b".into()).render(), "\"a\\u0001b\"\n");
        assert_eq!(Json::Num(42.0).render(), "42\n");
    }

    #[test]
    fn roundtrips_a_bench_style_document() {
        let doc = "{\n  \"schema\": \"ant-bench/runtime-v2\",\n  \"quick\": true,\n  \"workloads\": [\n    {\"name\": \"mlp\", \"p999_us\": 12.34, \"allocs_per_request\": null}\n  ]\n}\n";
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("ant-bench/runtime-v2")
        );
        let w = &v.get("workloads").unwrap().as_arr().unwrap()[0];
        assert_eq!(w.get("p999_us").unwrap().as_f64(), Some(12.34));
        assert!(w.get("allocs_per_request").unwrap().is_null());
        assert!(w.get("missing").is_none());
    }
}
