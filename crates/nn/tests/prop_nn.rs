//! Property-based tests for the DNN substrate: gradient correctness on
//! random shapes and quantization-invariance properties of the QAT path.

use ant_nn::layer::{Dense, Layer, Relu};
use ant_nn::loss::softmax_cross_entropy;
use ant_nn::model::{deep_mlp, mlp};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;
use proptest::prelude::*;

fn gaussian(dims: &[usize], seed: u64) -> Tensor {
    sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        dims,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense input gradients match central differences for random shapes.
    #[test]
    fn dense_gradient_random_shapes(
        out in 1usize..5, inp in 1usize..6, batch in 1usize..4, seed in 0u64..200,
    ) {
        let mut d = Dense::init("fc", out, inp, seed);
        let x = gaussian(&[batch, inp], seed + 1);
        let y = d.forward(&x).unwrap();
        let dx = d.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2;
        for i in 0..x.len().min(8) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric = (d.forward(&xp).unwrap().sum() - d.forward(&xm).unwrap().sum())
                / (2.0 * eps);
            prop_assert!(
                (numeric - dx.as_slice()[i]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "grad[{i}]: {numeric} vs {}", dx.as_slice()[i]
            );
        }
    }

    /// ReLU backward zeroes exactly the positions its forward zeroed.
    #[test]
    fn relu_mask_consistency(n in 1usize..64, seed in 0u64..200) {
        let mut r = Relu::new("relu");
        let x = gaussian(&[1, n], seed);
        let y = r.forward(&x).unwrap();
        let dx = r.backward(&Tensor::ones(y.dims())).unwrap();
        for i in 0..n {
            let alive = x.as_slice()[i] > 0.0;
            prop_assert_eq!(y.as_slice()[i] > 0.0, alive && x.as_slice()[i] > 0.0);
            prop_assert_eq!(dx.as_slice()[i] != 0.0, alive);
        }
    }

    /// Cross-entropy loss is non-negative and gradient rows sum to zero.
    #[test]
    fn cross_entropy_invariants(batch in 1usize..6, classes in 2usize..6, seed in 0u64..200) {
        let logits = gaussian(&[batch, classes], seed);
        let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(loss >= 0.0);
        for i in 0..batch {
            let row_sum: f32 = grad.channel(i).unwrap().iter().sum();
            prop_assert!(row_sum.abs() < 1e-5, "row {i} sums to {row_sum}");
        }
    }

    /// Model forward is deterministic and permutation-consistent: batching
    /// two inputs gives the same logits as running them separately.
    #[test]
    fn batching_is_row_independent(seed in 0u64..100) {
        let mut m = mlp(6, 3, seed);
        let a = gaussian(&[1, 6], seed + 1);
        let b = gaussian(&[1, 6], seed + 2);
        let ya = m.forward(&a).unwrap();
        let yb = m.forward(&b).unwrap();
        let mut both = Vec::new();
        both.extend_from_slice(a.as_slice());
        both.extend_from_slice(b.as_slice());
        let batch = Tensor::from_vec(both, &[2, 6]).unwrap();
        let y = m.forward(&batch).unwrap();
        for (x, y2) in ya.as_slice().iter().chain(yb.as_slice()).zip(y.as_slice()) {
            prop_assert!((x - y2).abs() < 1e-5);
        }
    }

    /// Quantizing a model never changes its parameter shapes, and
    /// dequantizing restores bit-identical forward results.
    #[test]
    fn quantize_dequantize_restores_model(seed in 0u64..50) {
        use ant_nn::qat::{dequantize_layer, quantize_model, QuantSpec};
        let mut m = deep_mlp(6, 3, 8, 2, seed);
        let x = gaussian(&[4, 6], seed + 3);
        let before = m.forward(&x).unwrap();
        let calib = gaussian(&[16, 6], seed + 4);
        quantize_model(&mut m, &calib, QuantSpec::default()).unwrap();
        for layer in m.layers_mut() {
            dequantize_layer(layer);
        }
        let after = m.forward(&x).unwrap();
        prop_assert_eq!(before, after);
    }
}
