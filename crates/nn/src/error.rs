use std::error::Error;
use std::fmt;

/// Error type for the DNN substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A layer received an input whose shape it cannot consume.
    BadInput {
        /// Layer name.
        layer: String,
        /// Explanation of the mismatch.
        reason: String,
    },
    /// `backward` was called before `forward` (no cached activations).
    NoForwardState {
        /// Layer name.
        layer: String,
    },
    /// A dataset/batch construction problem.
    BadDataset(String),
    /// An underlying tensor operation failed.
    Tensor(ant_tensor::TensorError),
    /// A quantization step failed.
    Quant(ant_core::QuantError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::BadInput { layer, reason } => write!(f, "layer {layer}: bad input: {reason}"),
            NnError::NoForwardState { layer } => {
                write!(f, "layer {layer}: backward called before forward")
            }
            NnError::BadDataset(msg) => write!(f, "bad dataset: {msg}"),
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Quant(e) => write!(f, "quantization error: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ant_tensor::TensorError> for NnError {
    fn from(e: ant_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<ant_core::QuantError> for NnError {
    fn from(e: ant_core::QuantError) -> Self {
        NnError::Quant(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = NnError::BadInput {
            layer: "fc1".into(),
            reason: "rank 3".into(),
        };
        assert!(e.to_string().contains("fc1"));
        assert!(e.source().is_none());
        let t: NnError = ant_tensor::TensorError::Empty.into();
        assert!(t.source().is_some());
        let q: NnError = ant_core::QuantError::EmptyCalibration.into();
        assert!(q.source().is_some());
        assert!(!NnError::NoForwardState { layer: "x".into() }
            .to_string()
            .is_empty());
        assert!(!NnError::BadDataset("empty".into()).to_string().is_empty());
    }
}
