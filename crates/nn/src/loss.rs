//! Loss functions: softmax cross-entropy for the classification tasks and
//! plain MSE for regression-style checks.

use crate::NnError;
use ant_tensor::Tensor;

/// Softmax cross-entropy over `[batch, classes]` logits.
///
/// Returns the mean loss and `d(loss)/d(logits)` (already divided by the
/// batch size, ready to feed `Sequential::backward`).
///
/// # Errors
///
/// Returns [`NnError::BadDataset`] when labels disagree with the batch or a
/// label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
    if logits.rank() != 2 || logits.dims()[0] != labels.len() {
        return Err(NnError::BadDataset(format!(
            "logits {:?} vs {} labels",
            logits.dims(),
            labels.len()
        )));
    }
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    let mut grad = Tensor::zeros(&[b, c]);
    let mut loss = 0.0f64;
    for i in 0..b {
        if labels[i] >= c {
            return Err(NnError::BadDataset(format!("label {} >= {c}", labels[i])));
        }
        let row = &logits.as_slice()[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let p_label = exps[labels[i]] / sum;
        loss -= (p_label.max(1e-12) as f64).ln();
        let g = grad.channel_mut(i)?;
        for j in 0..c {
            let p = exps[j] / sum;
            g[j] = (p - if j == labels[i] { 1.0 } else { 0.0 }) / b as f32;
        }
    }
    Ok(((loss / b as f64) as f32, grad))
}

/// Classification accuracy of `[batch, classes]` logits against labels.
///
/// # Errors
///
/// Returns [`NnError::BadDataset`] when shapes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f64, NnError> {
    if logits.rank() != 2 || logits.dims()[0] != labels.len() {
        return Err(NnError::BadDataset(format!(
            "logits {:?} vs {} labels",
            logits.dims(),
            labels.len()
        )));
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let c = logits.dims()[1];
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.as_slice()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred == label {
            correct += 1;
        }
    }
    Ok(correct as f64 / labels.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient: p - onehot = 0.25 everywhere except 0.25-1 at label.
        assert!((grad.as_slice()[2] + 0.75).abs() < 1e-6);
        assert!((grad.as_slice()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1]).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &[1]).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, &[1]).unwrap();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grad.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn loss_validates_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.9, 0.1], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
        assert!(accuracy(&logits, &[0]).is_err());
    }
}
