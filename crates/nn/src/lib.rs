//! # Minimal DNN substrate with ANT quantization-aware training
//!
//! The ANT paper's accuracy evaluation (Sec. VII-A/B) fine-tunes quantized
//! DNNs; this crate provides the training substrate the reproduction runs
//! it on: layers with explicit backprop, optimizers, losses, seeded
//! synthetic datasets and the QAT/mixed-precision harness. Quantizers from
//! `ant-core` attach directly to compute layers — forward passes see
//! quantized weights/activations while the optimizer updates full-precision
//! masters (the straight-through estimator).
//!
//! # Example: PTQ then QAT on a small MLP
//!
//! ```
//! use ant_nn::data::blobs;
//! use ant_nn::model::mlp;
//! use ant_nn::qat::{quantize_model, QuantSpec};
//! use ant_nn::train::{evaluate, train, TrainConfig};
//!
//! let data = blobs(200, 8, 4, 0.4, 1);
//! let (train_set, test_set) = data.split(0.25);
//! let mut model = mlp(8, 4, 2);
//! train(&mut model, &train_set, TrainConfig { epochs: 5, ..Default::default() })?;
//!
//! // Post-training 4-bit ANT quantization (Algorithm 2 per tensor).
//! let (calib, _) = train_set.batch(&(0..32).collect::<Vec<_>>());
//! let reports = quantize_model(&mut model, &calib, QuantSpec::default())?;
//! assert_eq!(reports.len(), 3);
//! let acc = evaluate(&mut model, &test_set)?;
//! assert!(acc > 0.2); // still far above the 25% chance level after 4-bit PTQ
//! # Ok::<(), ant_nn::NnError>(())
//! ```

#![deny(missing_docs)]

mod error;

pub mod attention;
pub mod data;
pub mod gelu;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod qat;
pub mod train;

pub use error::NnError;
