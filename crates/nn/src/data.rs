//! Seeded synthetic classification datasets.
//!
//! The paper fine-tunes on ImageNet and GLUE; neither is available here, so
//! the accuracy experiments (Figs. 11/12, Tables V/VI) run on three synthetic
//! tasks matched to the three model families (see DESIGN.md §2):
//!
//! * [`blobs`] — Gaussian clusters in R^d, the MLP's task,
//! * [`shapes`] — procedurally drawn 12×12 images (disk / frame / cross /
//!   stripes) with noise, the CNN's task,
//! * [`motifs`] — token sequences embedding one of several 3-token motifs,
//!   the Transformer's task.
//!
//! All generators are deterministic in their seed.

use crate::NnError;
use ant_tensor::dist::standard_normal;
use ant_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An in-memory classification dataset: `[n, features]` inputs with one
/// label per row.
#[derive(Debug, Clone)]
pub struct Dataset {
    inputs: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Builds a dataset, validating shapes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadDataset`] on inconsistent sizes or labels out
    /// of range.
    pub fn new(inputs: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self, NnError> {
        if inputs.rank() != 2 || inputs.dims()[0] != labels.len() {
            return Err(NnError::BadDataset(format!(
                "inputs {:?} vs {} labels",
                inputs.dims(),
                labels.len()
            )));
        }
        if labels.iter().any(|&l| l >= num_classes) {
            return Err(NnError::BadDataset("label out of range".to_string()));
        }
        Ok(Dataset {
            inputs,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature count per sample.
    pub fn features(&self) -> usize {
        self.inputs.dims()[1]
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// All inputs as one `[n, features]` tensor.
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Splits off the last `frac` of samples as a held-out set.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frac < 1`.
    pub fn split(&self, frac: f64) -> (Dataset, Dataset) {
        assert!(frac > 0.0 && frac < 1.0, "split fraction {frac}");
        let n = self.len();
        let cut = ((1.0 - frac) * n as f64).round() as usize;
        let f = self.features();
        let take = |lo: usize, hi: usize| {
            let data = self.inputs.as_slice()[lo * f..hi * f].to_vec();
            Dataset {
                inputs: Tensor::from_vec(data, &[hi - lo, f]).expect("sizes consistent"),
                labels: self.labels[lo..hi].to_vec(),
                num_classes: self.num_classes,
            }
        };
        (take(0, cut), take(cut, n))
    }

    /// Extracts a batch by sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let f = self.features();
        let mut data = Vec::with_capacity(indices.len() * f);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.inputs.as_slice()[i * f..(i + 1) * f]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(data, &[indices.len(), f]).expect("sizes consistent"),
            labels,
        )
    }

    /// Deterministically shuffled index order for an epoch.
    pub fn shuffled_indices(&self, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        // Fisher–Yates.
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx
    }
}

/// Gaussian-cluster classification: `classes` cluster centres on a sphere
/// in `dim` dimensions, unit within-cluster noise scaled by `spread`.
pub fn blobs(n: usize, dim: usize, classes: usize, spread: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Fixed class centres, then noisy samples.
    let centres: Vec<Vec<f32>> = (0..classes)
        .map(|_| {
            let v: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            v.iter().map(|x| 3.0 * x / norm).collect()
        })
        .collect();
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        labels.push(c);
        for &centre in &centres[c] {
            data.push(centre + spread * standard_normal(&mut rng));
        }
    }
    Dataset::new(
        Tensor::from_vec(data, &[n, dim]).expect("sizes consistent"),
        labels,
        classes,
    )
    .expect("construction is valid")
}

/// 12×12 single-channel images of four shapes (disk, frame, cross,
/// diagonal stripes) with positional jitter and Gaussian pixel noise.
pub fn shapes(n: usize, noise: f32, seed: u64) -> Dataset {
    const SIDE: usize = 12;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * SIDE * SIDE);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 4;
        labels.push(class);
        let cx: i32 = rng.gen_range(4..8);
        let cy: i32 = rng.gen_range(4..8);
        let r: i32 = rng.gen_range(2..4);
        let mut img = [0.0f32; SIDE * SIDE];
        for y in 0..SIDE as i32 {
            for x in 0..SIDE as i32 {
                let dx = x - cx;
                let dy = y - cy;
                let on = match class {
                    0 => dx * dx + dy * dy <= r * r,                          // disk
                    1 => dx.abs().max(dy.abs()) == r,                         // square frame
                    2 => (dx == 0 || dy == 0) && dx.abs().max(dy.abs()) <= r, // cross
                    _ => (x + y).rem_euclid(3) == 0,                          // diagonal stripes
                };
                let v = if on { 1.0 } else { 0.0 };
                img[(y as usize) * SIDE + x as usize] = v + noise * standard_normal(&mut rng);
            }
        }
        data.extend_from_slice(&img);
    }
    Dataset::new(
        Tensor::from_vec(data, &[n, SIDE * SIDE]).expect("sizes consistent"),
        labels,
        4,
    )
    .expect("construction is valid")
}

/// Token-sequence motif detection: each sequence of `seq` tokens embeds one
/// of `classes` fixed 3-token motifs at a random position; tokens are
/// embedded with a fixed random `vocab × dim` table so inputs are dense
/// `[n, seq*dim]` reals (the embedding is treated as frozen preprocessing).
pub fn motifs(n: usize, seq: usize, dim: usize, classes: usize, seed: u64) -> Dataset {
    assert!(seq >= 3, "sequence too short for 3-token motifs");
    const VOCAB: usize = 12;
    let mut rng = StdRng::seed_from_u64(seed);
    // Frozen embedding table.
    let embed: Vec<f32> = (0..VOCAB * dim)
        .map(|_| standard_normal(&mut rng))
        .collect();
    // Distinct motifs.
    let motifs: Vec<[usize; 3]> = (0..classes)
        .map(|c| [(c * 2) % VOCAB, (c * 2 + 1) % VOCAB, (c * 2 + 2) % VOCAB])
        .collect();
    let mut data = Vec::with_capacity(n * seq * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        labels.push(class);
        let mut tokens: Vec<usize> = (0..seq).map(|_| rng.gen_range(0..VOCAB)).collect();
        let pos = rng.gen_range(0..=(seq - 3));
        tokens[pos..pos + 3].copy_from_slice(&motifs[class]);
        for &t in &tokens {
            data.extend_from_slice(&embed[t * dim..(t + 1) * dim]);
        }
    }
    Dataset::new(
        Tensor::from_vec(data, &[n, seq * dim]).expect("sizes consistent"),
        labels,
        classes,
    )
    .expect("construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_validation() {
        let t = Tensor::zeros(&[4, 2]);
        assert!(Dataset::new(t.clone(), vec![0, 1, 0, 1], 2).is_ok());
        assert!(Dataset::new(t.clone(), vec![0, 1], 2).is_err());
        assert!(Dataset::new(t, vec![0, 1, 2, 0], 2).is_err());
    }

    #[test]
    fn split_preserves_counts() {
        let d = blobs(100, 4, 5, 0.5, 1);
        let (train, test) = d.split(0.2);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(train.num_classes(), 5);
        assert_eq!(test.features(), 4);
    }

    #[test]
    fn batch_extracts_rows() {
        let d = blobs(10, 3, 2, 0.1, 2);
        let (x, y) = d.batch(&[0, 5]);
        assert_eq!(x.dims(), &[2, 3]);
        assert_eq!(y.len(), 2);
        assert_eq!(x.channel(0).unwrap(), &d.inputs().as_slice()[0..3]);
    }

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let d = blobs(50, 2, 2, 0.1, 3);
        let a = d.shuffled_indices(7);
        let b = d.shuffled_indices(7);
        let c = d.shuffled_indices(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn blobs_are_separable_by_centroid_rule() {
        // Nearest-centroid classification should do far better than chance
        // at low spread — the dataset is learnable.
        let d = blobs(400, 8, 4, 0.3, 4);
        let f = d.features();
        let mut centres = vec![vec![0.0f32; f]; 4];
        let mut counts = [0usize; 4];
        for i in 0..d.len() {
            let row = &d.inputs().as_slice()[i * f..(i + 1) * f];
            let c = d.labels()[i];
            counts[c] += 1;
            for (acc, &v) in centres[c].iter_mut().zip(row) {
                *acc += v;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            for v in centres[c].iter_mut() {
                *v /= *count as f32;
            }
        }
        let mut correct = 0;
        for i in 0..d.len() {
            let row = &d.inputs().as_slice()[i * f..(i + 1) * f];
            let pred = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = centres[a]
                        .iter()
                        .zip(row)
                        .map(|(c, v)| (c - v) * (c - v))
                        .sum();
                    let db: f32 = centres[b]
                        .iter()
                        .zip(row)
                        .map(|(c, v)| (c - v) * (c - v))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if pred == d.labels()[i] {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.95);
    }

    #[test]
    fn shapes_have_expected_geometry() {
        let d = shapes(40, 0.0, 5);
        assert_eq!(d.features(), 144);
        assert_eq!(d.num_classes(), 4);
        // Disks (class 0) light more pixels than crosses (class 2) on
        // average: a single pair can tie (disk r=2 and cross r=3 both lit
        // 13 pixels), so compare class means over the whole dataset.
        let lit = |i: usize| {
            d.inputs().as_slice()[i * 144..(i + 1) * 144]
                .iter()
                .filter(|&&v| v > 0.5)
                .count()
        };
        let class_mean = |class: usize| {
            let idx: Vec<usize> = (0..d.len()).filter(|&i| d.labels()[i] == class).collect();
            idx.iter().map(|&i| lit(i)).sum::<usize>() as f64 / idx.len() as f64
        };
        assert!(
            class_mean(0) > class_mean(2),
            "disk {} vs cross {}",
            class_mean(0),
            class_mean(2)
        );
    }

    #[test]
    fn motifs_deterministic_and_shaped() {
        let a = motifs(20, 8, 4, 4, 6);
        let b = motifs(20, 8, 4, 4, 6);
        assert_eq!(a.inputs(), b.inputs());
        assert_eq!(a.features(), 32);
        assert_eq!(a.labels()[3], 3);
    }

    #[test]
    #[should_panic(expected = "sequence too short")]
    fn motifs_reject_short_sequences() {
        let _ = motifs(10, 2, 4, 2, 1);
    }
}
