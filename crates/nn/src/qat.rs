//! ANT quantization of whole models: calibration, type selection,
//! post-training quantization (PTQ), quantization-aware fine-tuning (QAT)
//! and the mixed-precision harness (paper Sec. IV-C and VII-A/B).
//!
//! The flow mirrors the paper: run calibration samples through the
//! full-precision model to collect per-layer input statistics (about 100
//! samples suffice, Sec. IV-C), run Algorithm 2 per weight and activation
//! tensor, attach the winning quantizers to the layers, and optionally
//! fine-tune with the straight-through estimator. The
//! [`QatHarness`] implements `ant-core`'s [`MixedPrecisionTarget`] so the
//! 4→8-bit promotion loop (Sec. V-D) runs unchanged on real models.

use crate::data::Dataset;
use crate::model::{NetLayer, Sequential};
use crate::train::{evaluate, train, TrainConfig};
use crate::NnError;
use ant_core::mixed::{MixedPrecisionTarget, Precision};
use ant_core::select::{select_type, PrimitiveCombo};
use ant_core::{ClipSearch, DataType, Granularity, Quantizer};
use ant_tensor::Tensor;

/// How to quantize a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantSpec {
    /// Candidate primitive combination (the paper ships IP-F).
    pub combo: PrimitiveCombo,
    /// Bit width (4 in the paper's main results).
    pub bits: u32,
    /// Clip-range search strategy.
    pub search: ClipSearch,
    /// Weight granularity (per-channel in the paper).
    pub weight_granularity: Granularity,
}

impl Default for QuantSpec {
    fn default() -> Self {
        QuantSpec {
            combo: PrimitiveCombo::IntPotFlint,
            bits: 4,
            search: ClipSearch::default(),
            weight_granularity: Granularity::PerChannel,
        }
    }
}

/// Per-layer quantization outcome.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Index into the model's layer list.
    pub layer_index: usize,
    /// Layer name.
    pub name: String,
    /// Chosen weight type and MSE per weight tensor (dense/conv have one,
    /// attention has four).
    pub weights: Vec<(DataType, f64)>,
    /// Chosen activation type and MSE.
    pub activation: Option<(DataType, f64)>,
    /// Effective bit width of this layer.
    pub bits: u32,
}

impl LayerReport {
    /// Total quantization MSE (weights + activation), the ranking key for
    /// mixed-precision promotion.
    pub fn total_mse(&self) -> f64 {
        self.weights.iter().map(|(_, m)| m).sum::<f64>()
            + self.activation.map(|(_, m)| m).unwrap_or(0.0)
    }
}

/// Captures each quantizable layer's *input* under the current model state
/// by replaying the forward pass layer by layer.
///
/// # Errors
///
/// Propagates layer errors.
pub fn capture_layer_inputs(
    model: &mut Sequential,
    x: &Tensor,
) -> Result<Vec<Option<Tensor>>, NnError> {
    let mut inputs = Vec::with_capacity(model.layers().len());
    let mut cur = x.clone();
    for layer in model.layers_mut() {
        inputs.push(if layer.is_quantizable() {
            Some(cur.clone())
        } else {
            None
        });
        cur = layer.forward(&cur)?;
    }
    Ok(inputs)
}

/// Algorithm 2 for a scalar (per-tensor) activation quantizer: picks the
/// minimum-MSE candidate, inferring signedness from the data (unsigned
/// after ReLU, Sec. II-B).
fn select_activation(
    data: &[f32],
    combo: PrimitiveCombo,
    bits: u32,
    search: ClipSearch,
) -> Result<(Quantizer, DataType, f64), NnError> {
    let signed = data.iter().any(|&v| v < 0.0);
    let mut best: Option<(Quantizer, DataType, f64)> = None;
    for dt in combo.candidates(bits, signed)? {
        let (q, mse) = Quantizer::fit(dt, data, search)?;
        if best.as_ref().is_none_or(|(_, _, m)| mse < *m) {
            best = Some((q, dt, mse));
        }
    }
    best.ok_or(NnError::Quant(ant_core::QuantError::NoCandidates))
}

/// Quantizes one layer in place given its captured input, returning the
/// report. `spec.combo` / `spec.bits` define the candidate set — pass a
/// pure-int 8-bit spec for mixed-precision promotion.
///
/// # Errors
///
/// Propagates quantization failures; non-quantizable layers return
/// `Ok(None)`.
pub fn quantize_layer(
    layer: &mut NetLayer,
    layer_index: usize,
    input: &Tensor,
    spec: QuantSpec,
) -> Result<Option<LayerReport>, NnError> {
    let name = layer.name().to_string();
    match layer {
        NetLayer::Dense(l) => {
            let wsel = select_type(
                &l.weight().clone(),
                &spec.combo.candidates(spec.bits, true)?,
                spec.weight_granularity,
                spec.search,
            )?;
            let (aq, adt, amse) =
                select_activation(input.as_slice(), spec.combo, spec.bits, spec.search)?;
            l.quant.weight = Some(wsel.quantizer);
            l.quant.activation = Some(aq);
            Ok(Some(LayerReport {
                layer_index,
                name,
                weights: vec![(wsel.dtype, wsel.mse)],
                activation: Some((adt, amse)),
                bits: spec.bits,
            }))
        }
        NetLayer::Conv(l) => {
            let wsel = select_type(
                &l.weight().clone(),
                &spec.combo.candidates(spec.bits, true)?,
                spec.weight_granularity,
                spec.search,
            )?;
            let (aq, adt, amse) =
                select_activation(input.as_slice(), spec.combo, spec.bits, spec.search)?;
            l.quant.weight = Some(wsel.quantizer);
            l.quant.activation = Some(aq);
            Ok(Some(LayerReport {
                layer_index,
                name,
                weights: vec![(wsel.dtype, wsel.mse)],
                activation: Some((adt, amse)),
                bits: spec.bits,
            }))
        }
        NetLayer::Attn(l) => {
            let mut weights = Vec::with_capacity(4);
            let projections: Vec<Tensor> = l
                .projection_weights()
                .iter()
                .map(|w| (*w).clone())
                .collect();
            for (i, w) in projections.iter().enumerate() {
                let wsel = select_type(
                    w,
                    &spec.combo.candidates(spec.bits, true)?,
                    spec.weight_granularity,
                    spec.search,
                )?;
                l.quant.weights[i] = Some(wsel.quantizer);
                weights.push((wsel.dtype, wsel.mse));
            }
            let (aq, adt, amse) =
                select_activation(input.as_slice(), spec.combo, spec.bits, spec.search)?;
            l.quant.activation = Some(aq);
            Ok(Some(LayerReport {
                layer_index,
                name,
                weights,
                activation: Some((adt, amse)),
                bits: spec.bits,
            }))
        }
        _ => Ok(None),
    }
}

/// Removes all quantizers from a layer (back to full precision).
pub fn dequantize_layer(layer: &mut NetLayer) {
    match layer {
        NetLayer::Dense(l) => l.quant = Default::default(),
        NetLayer::Conv(l) => l.quant = Default::default(),
        NetLayer::Attn(l) => l.quant = Default::default(),
        _ => {}
    }
}

/// Post-training quantization of a whole model: calibrates on
/// `calib_inputs` (forward pass at full precision), then runs Algorithm 2
/// on every quantizable layer.
///
/// # Errors
///
/// Propagates capture and quantization failures.
pub fn quantize_model(
    model: &mut Sequential,
    calib_inputs: &Tensor,
    spec: QuantSpec,
) -> Result<Vec<LayerReport>, NnError> {
    // Calibrate at full precision.
    for layer in model.layers_mut() {
        dequantize_layer(layer);
    }
    let inputs = capture_layer_inputs(model, calib_inputs)?;
    let mut reports = Vec::new();
    for (i, layer) in model.layers_mut().iter_mut().enumerate() {
        if let Some(input) = &inputs[i] {
            if let Some(report) = quantize_layer(layer, i, input, spec)? {
                reports.push(report);
            }
        }
    }
    Ok(reports)
}

/// The QAT/mixed-precision harness: owns a trained model, its datasets and
/// the current per-layer precision assignment.
#[derive(Debug, Clone)]
pub struct QatHarness {
    model: Sequential,
    spec: QuantSpec,
    calib: Tensor,
    train_set: Dataset,
    test_set: Dataset,
    fine_tune: TrainConfig,
    reports: Vec<LayerReport>,
    captured: Vec<Option<Tensor>>,
}

impl QatHarness {
    /// Builds the harness around a (pre-trained) model. Quantizes all
    /// layers at `spec` immediately.
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn new(
        mut model: Sequential,
        spec: QuantSpec,
        calib: Tensor,
        train_set: Dataset,
        test_set: Dataset,
        fine_tune: TrainConfig,
    ) -> Result<Self, NnError> {
        for layer in model.layers_mut() {
            dequantize_layer(layer);
        }
        let captured = capture_layer_inputs(&mut model, &calib)?;
        let mut harness = QatHarness {
            model,
            spec,
            calib,
            train_set,
            test_set,
            fine_tune,
            reports: Vec::new(),
            captured,
        };
        harness.requantize_all()?;
        Ok(harness)
    }

    fn requantize_all(&mut self) -> Result<(), NnError> {
        let spec = self.spec;
        let mut reports = Vec::new();
        for (i, layer) in self.model.layers_mut().iter_mut().enumerate() {
            if let Some(input) = &self.captured[i] {
                if let Some(r) = quantize_layer(layer, i, input, spec)? {
                    reports.push(r);
                }
            }
        }
        self.reports = reports;
        Ok(())
    }

    /// The wrapped model (e.g. for direct evaluation).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Per-layer quantization reports (in quantizable-layer order).
    pub fn reports(&self) -> &[LayerReport] {
        &self.reports
    }

    /// Test accuracy without further fine-tuning.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn test_accuracy(&mut self) -> Result<f64, NnError> {
        evaluate(&mut self.model, &self.test_set)
    }

    /// Fine-tunes under the current quantizers (QAT with STE).
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn fine_tune(&mut self) -> Result<(), NnError> {
        train(&mut self.model, &self.train_set, self.fine_tune)?;
        Ok(())
    }

    /// The calibration batch.
    pub fn calibration(&self) -> &Tensor {
        &self.calib
    }
}

impl MixedPrecisionTarget for QatHarness {
    fn num_layers(&self) -> usize {
        self.reports.len()
    }

    fn layer_mse(&self, layer: usize) -> f64 {
        self.reports[layer].total_mse()
    }

    fn set_precision(&mut self, layer: usize, precision: Precision) {
        let spec = match precision {
            Precision::Ant4 => self.spec,
            Precision::Int8 => QuantSpec {
                combo: PrimitiveCombo::Int,
                bits: 8,
                search: self.spec.search,
                weight_granularity: self.spec.weight_granularity,
            },
        };
        let model_index = self.reports[layer].layer_index;
        let input = self.captured[model_index]
            .clone()
            .expect("quantizable layer has input");
        let report = quantize_layer(
            &mut self.model.layers_mut()[model_index],
            model_index,
            &input,
            spec,
        )
        .expect("requantization of a previously quantized layer")
        .expect("layer is quantizable");
        self.reports[layer] = report;
    }

    fn evaluate(&mut self) -> f64 {
        // Fine-tune under the current assignment, then measure accuracy —
        // the paper's per-promotion fine-tuning loop (Sec. IV-C).
        if self.fine_tune.epochs > 0 {
            if let Err(e) = self.fine_tune() {
                // Training failures surface as zero quality.
                eprintln!("fine-tune failed: {e}");
                return 0.0;
            }
        }
        self.test_accuracy().unwrap_or(0.0)
    }
}

/// Distribution of chosen data types across a model's tensors (weights and
/// activations), the per-workload ratio reported in Fig. 13 (top).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeRatio {
    /// (type label, tensor count), sorted by label.
    pub counts: Vec<(String, usize)>,
}

impl TypeRatio {
    /// Tallies types over a set of layer reports.
    pub fn from_reports(reports: &[LayerReport]) -> Self {
        let mut map = std::collections::BTreeMap::new();
        for r in reports {
            for (dt, _) in &r.weights {
                *map.entry(dt.to_string()).or_insert(0usize) += 1;
            }
            if let Some((dt, _)) = &r.activation {
                *map.entry(dt.to_string()).or_insert(0usize) += 1;
            }
        }
        TypeRatio {
            counts: map.into_iter().collect(),
        }
    }

    /// Fraction of tensors using a type whose label starts with `prefix`.
    pub fn fraction(&self, prefix: &str) -> f64 {
        let total: usize = self.counts.iter().map(|(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        let hit: usize = self
            .counts
            .iter()
            .filter(|(l, _)| l.starts_with(prefix))
            .map(|(_, c)| c)
            .sum();
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::blobs;
    use crate::model::mlp;
    use ant_core::mixed::{run_mixed_precision, MixedPrecisionConfig};

    fn trained_mlp() -> (Sequential, Dataset, Dataset) {
        let data = blobs(320, 8, 4, 0.4, 31);
        let (train_set, test_set) = data.split(0.25);
        let mut model = mlp(8, 4, 32);
        train(
            &mut model,
            &train_set,
            TrainConfig {
                epochs: 12,
                batch_size: 32,
                lr: 0.05,
                momentum: 0.9,
                seed: 5,
            },
        )
        .unwrap();
        (model, train_set, test_set)
    }

    #[test]
    fn capture_records_quantizable_inputs_only() {
        let (mut model, train_set, _) = trained_mlp();
        let (x, _) = train_set.batch(&[0, 1, 2, 3]);
        let inputs = capture_layer_inputs(&mut model, &x).unwrap();
        // mlp: Dense, Relu, Dense, Relu, Dense.
        assert_eq!(inputs.len(), 5);
        assert!(inputs[0].is_some());
        assert!(inputs[1].is_none());
        assert!(inputs[2].is_some());
        assert!(inputs[4].is_some());
        // Post-ReLU input to fc2 is non-negative.
        assert!(inputs[2].as_ref().unwrap().min().unwrap() >= 0.0);
    }

    #[test]
    fn ptq_reports_every_quantizable_layer() {
        let (mut model, train_set, _) = trained_mlp();
        let (calib, _) = train_set.batch(&(0..64).collect::<Vec<_>>());
        let reports = quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.weights.len(), 1);
            assert!(r.activation.is_some());
            assert!(r.total_mse() > 0.0);
            assert_eq!(r.bits, 4);
        }
        // Post-ReLU activations must have selected unsigned types.
        let act_dt = reports[1].activation.unwrap().0;
        assert!(
            !act_dt.is_signed(),
            "post-ReLU activation should be unsigned"
        );
    }

    #[test]
    fn quantization_hurts_then_finetuning_recovers() {
        let (model, train_set, test_set) = trained_mlp();
        let fp32_acc = {
            let mut m = model.clone();
            evaluate(&mut m, &test_set).unwrap()
        };
        let (calib, _) = train_set.batch(&(0..64).collect::<Vec<_>>());
        let mut harness = QatHarness::new(
            model,
            QuantSpec::default(),
            calib,
            train_set,
            test_set,
            TrainConfig {
                epochs: 4,
                batch_size: 32,
                lr: 0.02,
                momentum: 0.9,
                seed: 7,
            },
        )
        .unwrap();
        let ptq_acc = harness.test_accuracy().unwrap();
        harness.fine_tune().unwrap();
        let qat_acc = harness.test_accuracy().unwrap();
        assert!(
            qat_acc + 1e-9 >= ptq_acc,
            "fine-tuning should not hurt: {ptq_acc} -> {qat_acc} (fp32 {fp32_acc})"
        );
    }

    #[test]
    fn mixed_precision_promotes_until_threshold() {
        let (model, train_set, test_set) = trained_mlp();
        let fp32_acc = {
            let mut m = model.clone();
            evaluate(&mut m, &test_set).unwrap()
        };
        let (calib, _) = train_set.batch(&(0..64).collect::<Vec<_>>());
        let mut harness = QatHarness::new(
            model,
            QuantSpec::default(),
            calib,
            train_set,
            test_set,
            TrainConfig {
                epochs: 2,
                batch_size: 32,
                lr: 0.02,
                momentum: 0.9,
                seed: 8,
            },
        )
        .unwrap();
        let report = run_mixed_precision(
            &mut harness,
            fp32_acc,
            MixedPrecisionConfig {
                threshold: 0.02,
                max_promotions: None,
            },
        );
        // With fine-tuning, the small MLP task converges within threshold.
        assert!(report.converged, "trace: {:?}", report.metric_trace);
        // Promoted layers now report 8-bit int.
        for (i, p) in report.precisions.iter().enumerate() {
            if *p == Precision::Int8 {
                assert_eq!(harness.reports()[i].bits, 8);
            }
        }
    }

    #[test]
    fn type_ratio_tallies() {
        let (mut model, train_set, _) = trained_mlp();
        let (calib, _) = train_set.batch(&(0..64).collect::<Vec<_>>());
        let reports = quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
        let ratio = TypeRatio::from_reports(&reports);
        let total: usize = ratio.counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6); // 3 weights + 3 activations
        let all = ratio.fraction("int")
            + ratio.fraction("pot")
            + ratio.fraction("flint")
            + ratio.fraction("float");
        assert!((all - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dequantize_restores_full_precision() {
        let (mut model, train_set, _) = trained_mlp();
        let (calib, _) = train_set.batch(&(0..32).collect::<Vec<_>>());
        let _ = quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
        for layer in model.layers_mut() {
            dequantize_layer(layer);
        }
        for layer in model.layers() {
            if let NetLayer::Dense(d) = layer {
                assert!(!d.quant.is_active());
            }
        }
    }
}
