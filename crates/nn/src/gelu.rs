//! GELU activation (tanh approximation), the Transformer FFN nonlinearity
//! the paper's Fig. 4 pipeline re-quantizes after ("their following layers
//! are usually activation layers such as SoftMax and GeLU, which also
//! require high-precision numbers").

use crate::layer::{Layer, Param};
use crate::NnError;
use ant_tensor::Tensor;

/// Gaussian error linear unit with the standard tanh approximation.
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    name: String,
    cached_input: Option<Tensor>,
}

const C: f32 = 0.797_884_6; // sqrt(2/pi)

/// Scalar GELU (export hook: inference runtimes that execute GELU outside
/// the layer abstraction must use the *same* approximation, or their
/// outputs drift from the QAT reference).
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    let u = C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

impl Gelu {
    /// Creates a GELU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Gelu {
            name: name.into(),
            cached_input: None,
        }
    }
}

impl Layer for Gelu {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(x.clone());
        Ok(x.map(gelu))
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::NoForwardState {
                layer: self.name.clone(),
            })?;
        Ok(grad.zip_with(x, |g, xi| g * gelu_grad(xi))?)
    }

    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0; GELU is ≈ identity for large positive x and ≈ 0 for
        // large negative x.
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
        // Known point: GELU(1) ≈ 0.8412.
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut layer = Gelu::new("gelu");
        let x = Tensor::from_slice(&[-2.0, -0.5, 0.0, 0.3, 1.7]);
        let y = layer.forward(&x).unwrap();
        let dx = layer.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric = (xp.map(gelu).as_slice()[i] - xm.map(gelu).as_slice()[i]) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[i]).abs() < 1e-3,
                "grad[{i}]: {numeric} vs {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut layer = Gelu::new("gelu");
        assert!(matches!(
            layer.backward(&Tensor::ones(&[1, 2])),
            Err(NnError::NoForwardState { .. })
        ));
    }

    #[test]
    fn gelu_output_has_negative_dip() {
        // Unlike ReLU, GELU outputs are slightly negative for small
        // negative inputs — its signature shape (and why post-GELU
        // activations are signed, affecting type selection).
        let mut layer = Gelu::new("gelu");
        let y = layer.forward(&Tensor::from_slice(&[-0.5])).unwrap();
        assert!(y.as_slice()[0] < 0.0);
    }
}
