//! Optimizers: SGD with momentum and Adam.
//!
//! Fine-tuning in the paper (Sec. VII-A) is ordinary quantization-aware
//! training; these optimizers update the *full-precision master* weights
//! while forward passes see quantized copies (the straight-through
//! estimator wiring lives in the layers).

use crate::model::Sequential;

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and `0 <= momentum < 1`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate {lr}");
        assert!((0.0..1.0).contains(&momentum), "momentum {momentum}");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate {lr}");
        self.lr = lr;
    }

    /// Applies one update step from the accumulated gradients, then zeroes
    /// them.
    pub fn step(&mut self, model: &mut Sequential) {
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        model.for_each_param(&mut |p| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; p.value.len()]);
            }
            let v = &mut velocity[idx];
            debug_assert_eq!(
                v.len(),
                p.value.len(),
                "parameter shape changed mid-training"
            );
            for ((w, g), vel) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(v.iter_mut())
            {
                *vel = momentum * *vel - lr * g;
                *w += *vel;
            }
            p.zero_grad();
            idx += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate {lr}");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step from the accumulated gradients, then zeroes
    /// them.
    pub fn step(&mut self, model: &mut Sequential) {
        self.t += 1;
        let (b1, b2, eps, lr, t) = (self.beta1, self.beta2, self.eps, self.lr, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let mut idx = 0usize;
        let ms = &mut self.m;
        let vs = &mut self.v;
        model.for_each_param(&mut |p| {
            if ms.len() <= idx {
                ms.push(vec![0.0; p.value.len()]);
                vs.push(vec![0.0; p.value.len()]);
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for (((w, g), mi), vi) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.zero_grad();
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::model::mlp;
    use ant_tensor::dist::{sample_tensor, Distribution};

    #[test]
    fn sgd_reduces_loss_on_fixed_batch() {
        let mut model = mlp(8, 3, 11);
        let x = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[16, 8],
            12,
        );
        let labels: Vec<usize> = (0..16).map(|i| i % 3).collect();
        let mut opt = Sgd::new(0.1, 0.9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let logits = model.forward(&x).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
            model.backward(&grad).unwrap();
            opt.step(&mut model);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "loss {first:?} -> {last}");
    }

    #[test]
    fn adam_reduces_loss_on_fixed_batch() {
        let mut model = mlp(8, 3, 13);
        let x = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[16, 8],
            14,
        );
        let labels: Vec<usize> = (0..16).map(|i| (i * 2) % 3).collect();
        let mut opt = Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let logits = model.forward(&x).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
            model.backward(&grad).unwrap();
            opt.step(&mut model);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "loss {first:?} -> {last}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut model = mlp(4, 2, 15);
        let x = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[4, 4],
            16,
        );
        let logits = model.forward(&x).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1, 0, 1]).unwrap();
        model.backward(&grad).unwrap();
        let mut opt = Sgd::new(0.01, 0.0);
        opt.step(&mut model);
        model.for_each_param(&mut |p| {
            assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        });
    }

    #[test]
    fn lr_accessors() {
        let mut opt = Sgd::new(0.1, 0.0);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.05);
        assert_eq!(opt.lr(), 0.05);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0, 0.0);
    }
}
