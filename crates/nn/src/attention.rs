//! Single-head self-attention and layer normalisation — the pieces that
//! make the Transformer workload (the paper's BERT/ViT benchmarks) real
//! rather than an MLP in disguise. Attention activations are exactly where
//! the paper observes Laplace-like long tails (Fig. 1, Sec. VII-E), so QAT
//! experiments need this layer to reproduce the phenomenon.

use crate::layer::{Layer, Param};
use crate::NnError;
use ant_core::{Quantizer, TensorQuantizer};
use ant_tensor::linalg;
use ant_tensor::Tensor;

/// Quantization state for the attention block: one weight quantizer per
/// projection (q, k, v, o) plus an input-activation quantizer.
#[derive(Debug, Clone, Default)]
pub struct AttnQuantState {
    /// Per-projection weight quantizers.
    pub weights: [Option<TensorQuantizer>; 4],
    /// Per-tensor input-activation quantizer.
    pub activation: Option<Quantizer>,
}

impl AttnQuantState {
    /// Whether any quantizer is attached.
    pub fn is_active(&self) -> bool {
        self.weights.iter().any(Option::is_some) || self.activation.is_some()
    }
}

/// Layer normalisation over groups of `dim` features (one group per token
/// position for `[batch, seq*dim]` inputs).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    name: String,
    dim: usize,
    gamma: Param,
    beta: Param,
    eps: f32,
    cache: Option<LnCache>,
}

#[derive(Debug, Clone)]
struct LnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer norm over `dim`-sized feature groups.
    pub fn new(name: impl Into<String>, dim: usize) -> Self {
        LayerNorm {
            name: name.into(),
            dim,
            gamma: Param::new(Tensor::ones(&[dim])),
            beta: Param::new(Tensor::zeros(&[dim])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Reconstructs a layer norm from explicit parameters (import hook for
    /// model artifacts: the inverse of reading [`Self::gamma`],
    /// [`Self::beta`] and [`Self::eps`]).
    ///
    /// # Panics
    ///
    /// Panics if `gamma` or `beta` is not a `[dim]` vector.
    pub fn from_params(name: impl Into<String>, gamma: Tensor, beta: Tensor, eps: f32) -> Self {
        assert_eq!(gamma.rank(), 1, "gamma must be rank 1");
        assert_eq!(gamma.dims(), beta.dims(), "gamma/beta shape");
        LayerNorm {
            name: name.into(),
            dim: gamma.len(),
            gamma: Param::new(gamma),
            beta: Param::new(beta),
            eps,
            cache: None,
        }
    }

    /// Feature-group size (export hook for inference runtimes).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Scale parameter γ `[dim]` (export hook for inference runtimes).
    pub fn gamma(&self) -> &Tensor {
        &self.gamma.value
    }

    /// Shift parameter β `[dim]` (export hook for inference runtimes).
    pub fn beta(&self) -> &Tensor {
        &self.beta.value
    }

    /// Variance epsilon (export hook for inference runtimes).
    pub fn eps(&self) -> f32 {
        self.eps
    }
}

/// Normalises one `dim`-sized feature group, applying the affine
/// `γ·x̂ + β` into `out`, optionally recording x̂ (for backward caches),
/// and returns the inverse standard deviation (export hook: inference
/// runtimes that evaluate layer norm outside the layer abstraction must
/// use the *same* mean/variance formulation, or their outputs drift from
/// the QAT reference).
pub fn layer_norm_group(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    mut xhat: Option<&mut [f32]>,
    out: &mut [f32],
) -> f32 {
    let dim = x.len();
    let mean = x.iter().sum::<f32>() / dim as f32;
    let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
    let istd = 1.0 / (var + eps).sqrt();
    for (k, &v) in x.iter().enumerate() {
        let xh = (v - mean) * istd;
        if let Some(buf) = xhat.as_deref_mut() {
            buf[k] = xh;
        }
        out[k] = gamma[k] * xh + beta[k];
    }
    istd
}

impl Layer for LayerNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        if x.rank() != 2 || !x.dims()[1].is_multiple_of(self.dim) {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("features {:?} not divisible by dim {}", x.dims(), self.dim),
            });
        }
        let groups = x.len() / self.dim;
        let mut out = x.clone();
        let mut xhat = x.clone();
        let mut inv_std = Vec::with_capacity(groups);
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        for gi in 0..groups {
            let lo = gi * self.dim;
            let hi = lo + self.dim;
            let istd = layer_norm_group(
                &x.as_slice()[lo..hi],
                g,
                b,
                self.eps,
                Some(&mut xhat.as_mut_slice()[lo..hi]),
                &mut out.as_mut_slice()[lo..hi],
            );
            inv_std.push(istd);
        }
        self.cache = Some(LnCache { xhat, inv_std });
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let cache = self.cache.as_ref().ok_or_else(|| NnError::NoForwardState {
            layer: self.name.clone(),
        })?;
        let groups = grad.len() / self.dim;
        let mut dx = grad.clone();
        let g = self.gamma.value.as_slice();
        let d = self.dim as f32;
        for gi in 0..groups {
            let lo = gi * self.dim;
            let hi = lo + self.dim;
            let gy = &grad.as_slice()[lo..hi];
            let xh = &cache.xhat.as_slice()[lo..hi];
            // Parameter gradients.
            for k in 0..self.dim {
                self.gamma.grad.as_mut_slice()[k] += gy[k] * xh[k];
                self.beta.grad.as_mut_slice()[k] += gy[k];
            }
            // dx = inv_std/d * (d*gy*γ − Σ(gy*γ) − x̂ Σ(gy*γ*x̂)).
            let gyg: Vec<f32> = (0..self.dim).map(|k| gy[k] * g[k]).collect();
            let sum_gyg: f32 = gyg.iter().sum();
            let sum_gyg_xh: f32 = gyg.iter().zip(xh).map(|(a, b)| a * b).sum();
            let istd = cache.inv_std[gi];
            for k in 0..self.dim {
                dx.as_mut_slice()[lo + k] = istd / d * (d * gyg[k] - sum_gyg - xh[k] * sum_gyg_xh);
            }
        }
        Ok(dx)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// Single-head self-attention with a residual connection:
/// `Y = X + softmax(QKᵀ/√d) V Woᵀ` over `[batch, seq*dim]` inputs.
///
/// With [`Attention::with_causal`] the score matrix is masked so token
/// `i` attends only to tokens `j ≤ i` — the decoder variant used by
/// autoregressive models, where it makes token-by-token incremental
/// decode mathematically equivalent to the full-sequence forward.
#[derive(Debug, Clone)]
pub struct Attention {
    name: String,
    seq: usize,
    dim: usize,
    causal: bool,
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    /// Quantization hooks for the four projection weights and the input
    /// activations.
    pub quant: AttnQuantState,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    x: Tensor,      // [batch, seq*dim] (post activation-quant)
    q: Vec<Tensor>, // per-sample [seq, dim]
    k: Vec<Tensor>,
    v: Vec<Tensor>,
    a: Vec<Tensor>, // per-sample [seq, seq] softmax
    o: Vec<Tensor>, // per-sample [seq, dim]
}

impl Attention {
    /// Creates an attention block for `seq`-token, `dim`-feature inputs.
    pub fn init(name: impl Into<String>, seq: usize, dim: usize, seed: u64) -> Self {
        let bound = (3.0 / dim as f32).sqrt();
        let mk = |s| {
            ant_tensor::dist::sample_tensor(
                ant_tensor::dist::Distribution::Uniform {
                    lo: -bound,
                    hi: bound,
                },
                &[dim, dim],
                s,
            )
        };
        Attention {
            name: name.into(),
            seq,
            dim,
            causal: false,
            wq: Param::new(mk(seed)),
            wk: Param::new(mk(seed.wrapping_add(1))),
            wv: Param::new(mk(seed.wrapping_add(2))),
            wo: Param::new(mk(seed.wrapping_add(3))),
            quant: AttnQuantState::default(),
            cache: None,
        }
    }

    /// Turns causal (autoregressive) masking on or off: token `i`'s
    /// scores over `j > i` are set to `-∞` before the softmax, so its
    /// output depends only on the prefix `0..=i`. Backward needs no
    /// masking of its own — masked positions have `a == 0`, so the
    /// softmax Jacobian zeroes their gradient automatically.
    #[must_use]
    pub fn with_causal(mut self, causal: bool) -> Self {
        self.causal = causal;
        self
    }

    /// Whether this block applies the causal mask (export hook for
    /// inference runtimes).
    pub fn causal(&self) -> bool {
        self.causal
    }

    /// Reconstructs an attention block from explicit projection weights
    /// (q, k, v, o), each `[dim, dim]` — the import hook for model
    /// artifacts, inverse of [`Self::projection_weights`]. Quantizers start
    /// detached; attach them through [`Attention::quant`].
    ///
    /// # Panics
    ///
    /// Panics if any projection is not `[dim, dim]`.
    pub fn from_weights(
        name: impl Into<String>,
        seq: usize,
        dim: usize,
        projections: [Tensor; 4],
    ) -> Self {
        for w in &projections {
            assert_eq!(w.dims(), &[dim, dim], "projection must be [dim, dim]");
        }
        let [wq, wk, wv, wo] = projections;
        Attention {
            name: name.into(),
            seq,
            dim,
            causal: false,
            wq: Param::new(wq),
            wk: Param::new(wk),
            wv: Param::new(wv),
            wo: Param::new(wo),
            quant: AttnQuantState::default(),
            cache: None,
        }
    }

    /// Sequence length (export hook for inference runtimes).
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Per-token feature count (export hook for inference runtimes).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The four projection weights (q, k, v, o) for quantization analysis.
    pub fn projection_weights(&self) -> [&Tensor; 4] {
        [
            &self.wq.value,
            &self.wk.value,
            &self.wv.value,
            &self.wo.value,
        ]
    }

    fn effective(&self, which: usize) -> Result<Tensor, NnError> {
        let p = match which {
            0 => &self.wq,
            1 => &self.wk,
            2 => &self.wv,
            _ => &self.wo,
        };
        match &self.quant.weights[which] {
            Some(q) => Ok(q.apply(&p.value)?),
            None => Ok(p.value.clone()),
        }
    }
}

/// Row-wise max-subtracted softmax over a `[rows, cols]` slice (export
/// hook: inference runtimes that evaluate attention scores outside the
/// layer abstraction must use the *same* formulation, or their outputs
/// drift from the QAT reference).
pub fn softmax_rows_in_place(m: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(m.len(), rows * cols, "softmax shape");
    for i in 0..rows {
        let row = &mut m[i * cols..(i + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

fn softmax_rows(m: &Tensor) -> Tensor {
    let mut out = m.clone();
    softmax_rows_in_place(out.as_mut_slice(), m.dims()[0], m.dims()[1]);
    out
}

impl Layer for Attention {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let feat = self.seq * self.dim;
        if x.rank() != 2 || x.dims()[1] != feat {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected [batch, {feat}], got {:?}", x.dims()),
            });
        }
        let xq = match &self.quant.activation {
            Some(q) => q.apply(x),
            None => x.clone(),
        };
        let batch = x.dims()[0];
        let wq = self.effective(0)?;
        let wk = self.effective(1)?;
        let wv = self.effective(2)?;
        let wo = self.effective(3)?;
        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut out = Tensor::zeros(&[batch, feat]);
        let mut cache = AttnCache {
            x: xq.clone(),
            q: Vec::with_capacity(batch),
            k: Vec::with_capacity(batch),
            v: Vec::with_capacity(batch),
            a: Vec::with_capacity(batch),
            o: Vec::with_capacity(batch),
        };
        for s in 0..batch {
            let xs = Tensor::from_vec(xq.channel(s)?.to_vec(), &[self.seq, self.dim])?;
            let q = linalg::matmul(&xs, &wq.transpose()?)?;
            let k = linalg::matmul(&xs, &wk.transpose()?)?;
            let v = linalg::matmul(&xs, &wv.transpose()?)?;
            let mut scores = linalg::matmul(&q, &k.transpose()?)?.scale(scale);
            if self.causal {
                let m = scores.as_mut_slice();
                for i in 0..self.seq {
                    for j in (i + 1)..self.seq {
                        m[i * self.seq + j] = f32::NEG_INFINITY;
                    }
                }
            }
            let a = softmax_rows(&scores);
            let o = linalg::matmul(&a, &v)?;
            let y = linalg::matmul(&o, &wo.transpose()?)?;
            // Residual connection.
            let res = xs.add(&y)?;
            out.channel_mut(s)?.copy_from_slice(res.as_slice());
            cache.q.push(q);
            cache.k.push(k);
            cache.v.push(v);
            cache.a.push(a);
            cache.o.push(o);
        }
        self.cache = Some(cache);
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let cache = self.cache.take().ok_or_else(|| NnError::NoForwardState {
            layer: self.name.clone(),
        })?;
        let batch = grad.dims()[0];
        let wq = self.effective(0)?;
        let wk = self.effective(1)?;
        let wv = self.effective(2)?;
        let wo = self.effective(3)?;
        let scale = 1.0 / (self.dim as f32).sqrt();
        let mut dx_all = Tensor::zeros(grad.dims());
        for s in 0..batch {
            let gy = Tensor::from_vec(grad.channel(s)?.to_vec(), &[self.seq, self.dim])?;
            let xs = Tensor::from_vec(cache.x.channel(s)?.to_vec(), &[self.seq, self.dim])?;
            // Residual branch.
            let mut dx = gy.clone();
            // Output projection: y = o · woᵀ.
            let do_ = linalg::matmul(&gy, &wo)?;
            self.wo.grad = self
                .wo
                .grad
                .add(&linalg::matmul(&gy.transpose()?, &cache.o[s])?)?;
            // o = a · v.
            let da = linalg::matmul(&do_, &cache.v[s].transpose()?)?;
            let dv = linalg::matmul(&cache.a[s].transpose()?, &do_)?;
            // Softmax backward per row: ds = a ⊙ (da − rowsum(da ⊙ a)).
            let mut ds = da.clone();
            let a = &cache.a[s];
            for i in 0..self.seq {
                let arow = &a.as_slice()[i * self.seq..(i + 1) * self.seq];
                let darow = &da.as_slice()[i * self.seq..(i + 1) * self.seq];
                let dot: f32 = arow.iter().zip(darow).map(|(x, y)| x * y).sum();
                for j in 0..self.seq {
                    ds.as_mut_slice()[i * self.seq + j] = arow[j] * (darow[j] - dot);
                }
            }
            let ds = ds.scale(scale);
            // scores = q · kᵀ.
            let dq = linalg::matmul(&ds, &cache.k[s])?;
            let dk = linalg::matmul(&ds.transpose()?, &cache.q[s])?;
            // Projections: q = x · wqᵀ etc.
            self.wq.grad = self.wq.grad.add(&linalg::matmul(&dq.transpose()?, &xs)?)?;
            self.wk.grad = self.wk.grad.add(&linalg::matmul(&dk.transpose()?, &xs)?)?;
            self.wv.grad = self.wv.grad.add(&linalg::matmul(&dv.transpose()?, &xs)?)?;
            dx = dx.add(&linalg::matmul(&dq, &wq)?)?;
            dx = dx.add(&linalg::matmul(&dk, &wk)?)?;
            dx = dx.add(&linalg::matmul(&dv, &wv)?)?;
            dx_all.channel_mut(s)?.copy_from_slice(dx.as_slice());
        }
        Ok(dx_all)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
        f(&mut self.wo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_tensor::dist::{sample_tensor, Distribution};

    fn gaussian(dims: &[usize], seed: u64) -> Tensor {
        sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            dims,
            seed,
        )
    }

    #[test]
    fn layernorm_normalises_groups() {
        let mut ln = LayerNorm::new("ln", 4);
        let x =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 8]).unwrap();
        let y = ln.forward(&x).unwrap();
        for g in 0..2 {
            let s = &y.as_slice()[g * 4..(g + 1) * 4];
            let mean: f32 = s.iter().sum::<f32>() / 4.0;
            let var: f32 = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "group {g} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "group {g} var {var}");
        }
    }

    #[test]
    fn layernorm_gradient_check() {
        let mut ln = LayerNorm::new("ln", 6);
        let x = gaussian(&[2, 12], 3);
        let y = ln.forward(&x).unwrap();
        // Use a non-uniform upstream gradient so the test exercises the
        // cross terms.
        let g = Tensor::from_fn(y.dims(), |i| 0.3 + 0.1 * (i[1] as f32));
        let dx = ln.backward(&g).unwrap();
        let eps = 1e-2;
        let loss = |ln: &mut LayerNorm, xx: &Tensor| {
            let yy = ln.forward(xx).unwrap();
            yy.as_slice()
                .iter()
                .enumerate()
                .map(|(i, v)| v * (0.3 + 0.1 * ((i % 12) as f32)))
                .sum::<f32>()
        };
        for i in 0..8 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let numeric = (loss(&mut ln, &xp) - loss(&mut ln, &xm)) / (2.0 * eps);
            let analytic = dx.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "grad[{i}]: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn attention_forward_shape_and_residual() {
        let mut at = Attention::init("attn", 4, 8, 17);
        let x = gaussian(&[2, 32], 19);
        let y = at.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 32]);
        // With zero projection output the residual passes through; verify
        // output differs from input but correlates strongly.
        assert_ne!(y, x);
    }

    #[test]
    fn attention_gradient_check() {
        let mut at = Attention::init("attn", 3, 4, 23);
        let x = gaussian(&[2, 12], 29).scale(0.5);
        let y = at.forward(&x).unwrap();
        let g = Tensor::ones(y.dims());
        let dx = at.backward(&g).unwrap();
        let eps = 1e-2;
        for i in 0..12 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = at.forward(&xp).unwrap().sum();
            let fm = at.forward(&xm).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = dx.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < 3e-2 * (1.0 + numeric.abs()),
                "grad[{i}]: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn attention_weight_gradients_nonzero() {
        let mut at = Attention::init("attn", 4, 8, 31);
        let x = gaussian(&[3, 32], 37);
        let y = at.forward(&x).unwrap();
        let _ = at.backward(&Tensor::ones(y.dims())).unwrap();
        let mut norms = Vec::new();
        at.for_each_param(&mut |p| {
            norms.push(p.grad.as_slice().iter().map(|v| v.abs()).sum::<f32>())
        });
        assert_eq!(norms.len(), 4);
        for (i, n) in norms.iter().enumerate() {
            assert!(*n > 0.0, "projection {i} has zero gradient");
        }
    }

    #[test]
    fn attention_rejects_bad_shapes() {
        let mut at = Attention::init("attn", 4, 8, 41);
        assert!(matches!(
            at.forward(&Tensor::zeros(&[1, 31])),
            Err(NnError::BadInput { .. })
        ));
        assert!(matches!(
            Attention::init("a2", 4, 8, 43).backward(&Tensor::zeros(&[1, 32])),
            Err(NnError::NoForwardState { .. })
        ));
    }

    #[test]
    fn from_weights_and_from_params_roundtrip_forward() {
        let mut at = Attention::init("attn", 3, 4, 51);
        let x = gaussian(&[2, 12], 53);
        let y = at.forward(&x).unwrap();
        let ws = at.projection_weights().map(|w| w.clone());
        let mut rebuilt = Attention::from_weights("attn", 3, 4, ws);
        assert_eq!(rebuilt.forward(&x).unwrap(), y);
        assert_eq!(rebuilt.seq(), 3);
        assert_eq!(rebuilt.dim(), 4);

        let mut ln = LayerNorm::new("ln", 6);
        ln.gamma.value.as_mut_slice()[2] = 1.5;
        ln.beta.value.as_mut_slice()[4] = -0.25;
        let xl = gaussian(&[2, 12], 57);
        let yl = ln.forward(&xl).unwrap();
        let mut rebuilt =
            LayerNorm::from_params("ln", ln.gamma().clone(), ln.beta().clone(), ln.eps());
        assert_eq!(rebuilt.forward(&xl).unwrap(), yl);
        assert_eq!(rebuilt.dim(), 6);
    }

    #[test]
    fn causal_mask_hides_future_tokens() {
        // Perturbing token t must not change any output row before t —
        // the defining property of the decoder variant.
        let (seq, dim) = (5, 4);
        let mut at = Attention::init("attn", seq, dim, 61).with_causal(true);
        assert!(at.causal());
        let x = gaussian(&[1, seq * dim], 63);
        let y = at.forward(&x).unwrap();
        for t in 1..seq {
            let mut xp = x.clone();
            for d in 0..dim {
                xp.as_mut_slice()[t * dim + d] += 0.7;
            }
            let yp = at.forward(&xp).unwrap();
            assert_eq!(
                &y.as_slice()[..t * dim],
                &yp.as_slice()[..t * dim],
                "token {t} leaked into its prefix"
            );
            assert_ne!(
                &y.as_slice()[t * dim..(t + 1) * dim],
                &yp.as_slice()[t * dim..(t + 1) * dim],
                "token {t} should still see itself"
            );
        }
        // Non-causal blocks do leak (sanity check that the test bites).
        let mut enc = Attention::init("attn", seq, dim, 61);
        let y = enc.forward(&x).unwrap();
        let mut xp = x.clone();
        xp.as_mut_slice()[(seq - 1) * dim] += 0.7;
        let yp = enc.forward(&xp).unwrap();
        assert_ne!(&y.as_slice()[..dim], &yp.as_slice()[..dim]);
    }

    #[test]
    fn causal_gradient_check() {
        // The softmax Jacobian zeroes masked positions, so backward
        // needs no mask of its own; verify against central differences.
        let mut at = Attention::init("attn", 3, 4, 67).with_causal(true);
        let x = gaussian(&[2, 12], 71).scale(0.5);
        let y = at.forward(&x).unwrap();
        let g = Tensor::ones(y.dims());
        let dx = at.backward(&g).unwrap();
        let eps = 1e-2;
        for i in 0..12 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = at.forward(&xp).unwrap().sum();
            let fm = at.forward(&xm).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = dx.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < 3e-2 * (1.0 + numeric.abs()),
                "grad[{i}]: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = gaussian(&[5, 7], 47);
        let s = softmax_rows(&m);
        for i in 0..5 {
            let row_sum: f32 = s.as_slice()[i * 7..(i + 1) * 7].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
            assert!(s.as_slice()[i * 7..(i + 1) * 7].iter().all(|&v| v >= 0.0));
        }
    }
}
