//! Network container and the three reference model architectures used in
//! the accuracy experiments (the reproduction's stand-ins for the paper's
//! VGG/ResNet/BERT benchmarks — see DESIGN.md for the substitution
//! rationale).

use crate::attention::{Attention, LayerNorm};
use crate::gelu::Gelu;
use crate::layer::{Conv2d, Dense, Layer, MaxPool2, Param, Relu};
use crate::NnError;
use ant_tensor::Tensor;

/// A concrete layer in a [`Sequential`] network.
///
/// An enum (rather than trait objects) so quantization passes can match on
/// the layers that own weights without downcasting.
#[derive(Debug, Clone)]
pub enum NetLayer {
    /// Fully-connected layer.
    Dense(Dense),
    /// ReLU activation.
    Relu(Relu),
    /// 2-D convolution.
    Conv(Conv2d),
    /// 2×2 max pooling.
    Pool(MaxPool2),
    /// Layer normalisation.
    Norm(LayerNorm),
    /// Single-head self-attention block (boxed: it is an order of
    /// magnitude larger than the other variants).
    Attn(Box<Attention>),
    /// GELU activation.
    Gelu(Gelu),
}

impl NetLayer {
    fn as_layer_mut(&mut self) -> &mut dyn Layer {
        match self {
            NetLayer::Dense(l) => l,
            NetLayer::Relu(l) => l,
            NetLayer::Conv(l) => l,
            NetLayer::Pool(l) => l,
            NetLayer::Norm(l) => l,
            NetLayer::Attn(l) => l.as_mut(),
            NetLayer::Gelu(l) => l,
        }
    }

    /// Forward pass on this single layer (export hook: lets external
    /// runtimes execute individual layers — e.g. `ant-runtime`'s fallback
    /// path for layers it does not run in the packed domain).
    ///
    /// # Errors
    ///
    /// Propagates the layer's [`Layer::forward`] error.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        self.as_layer_mut().forward(x)
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        match self {
            NetLayer::Dense(l) => l.name(),
            NetLayer::Relu(l) => l.name(),
            NetLayer::Conv(l) => l.name(),
            NetLayer::Pool(l) => l.name(),
            NetLayer::Norm(l) => l.name(),
            NetLayer::Attn(l) => l.name(),
            NetLayer::Gelu(l) => l.name(),
        }
    }

    /// Whether this layer owns quantizable compute weights (the paper
    /// quantizes CONV and FC layers, Sec. VI-B).
    pub fn is_quantizable(&self) -> bool {
        matches!(
            self,
            NetLayer::Dense(_) | NetLayer::Conv(_) | NetLayer::Attn(_)
        )
    }
}

/// A feed-forward stack of layers.
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<NetLayer>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: NetLayer) -> Self {
        self.layers.push(layer);
        self
    }

    /// The layers, immutably.
    pub fn layers(&self) -> &[NetLayer] {
        &self.layers
    }

    /// The layers, mutably (used by quantization passes).
    pub fn layers_mut(&mut self) -> &mut [NetLayer] {
        &mut self.layers
    }

    /// Forward pass through all layers.
    ///
    /// # Errors
    ///
    /// Propagates the first failing layer's error.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.as_layer_mut().forward(&cur)?;
        }
        Ok(cur)
    }

    /// Backward pass, returning the input gradient.
    ///
    /// # Errors
    ///
    /// Propagates the first failing layer's error.
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.as_layer_mut().backward(&cur)?;
        }
        Ok(cur)
    }

    /// Visits every trainable parameter.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.as_layer_mut().for_each_param(f);
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.for_each_param(&mut |p| p.zero_grad());
    }

    /// Total trainable scalar count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.value.len());
        n
    }

    /// Indices of quantizable (weight-owning) layers.
    pub fn quantizable_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_quantizable())
            .map(|(i, _)| i)
            .collect()
    }
}

/// An MLP for the blob-classification task (the paper's "simple model"
/// axis): 16 → 48 → 48 → `classes`.
pub fn mlp(input: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new()
        .push(NetLayer::Dense(Dense::init("fc1", 48, input, seed)))
        .push(NetLayer::Relu(Relu::new("relu1")))
        .push(NetLayer::Dense(Dense::init(
            "fc2",
            48,
            48,
            seed.wrapping_add(10),
        )))
        .push(NetLayer::Relu(Relu::new("relu2")))
        .push(NetLayer::Dense(Dense::init(
            "head",
            classes,
            48,
            seed.wrapping_add(20),
        )))
}

/// A deep, narrow MLP: `depth` hidden layers of `width` units. Depth
/// compounds per-layer quantization error, which is what makes low-bit
/// effects measurable on small tasks (used by the Fig. 11/12 experiments).
pub fn deep_mlp(input: usize, classes: usize, width: usize, depth: usize, seed: u64) -> Sequential {
    let mut m = Sequential::new()
        .push(NetLayer::Dense(Dense::init("fc0", width, input, seed)))
        .push(NetLayer::Relu(Relu::new("relu0")));
    for i in 1..depth {
        m = m
            .push(NetLayer::Dense(Dense::init(
                format!("fc{i}"),
                width,
                width,
                seed.wrapping_add(i as u64),
            )))
            .push(NetLayer::Relu(Relu::new(format!("relu{i}"))));
    }
    m.push(NetLayer::Dense(Dense::init(
        "head",
        classes,
        width,
        seed.wrapping_add(100),
    )))
}

/// A small CNN for the 12×12 shape-classification task (stand-in for the
/// paper's CNN benchmarks): conv(8)-pool-conv(16)-pool-fc.
pub fn small_cnn(classes: usize, seed: u64) -> Sequential {
    let conv1 = Conv2d::init("conv1", 8, (1, 12, 12), 3, 1, 1, seed);
    let pool1 = MaxPool2::new("pool1", conv1.out_shape());
    let conv2 = Conv2d::init(
        "conv2",
        16,
        pool1.out_shape(),
        3,
        1,
        1,
        seed.wrapping_add(30),
    );
    let pool2 = MaxPool2::new("pool2", conv2.out_shape());
    let fc_in = pool2.out_features();
    Sequential::new()
        .push(NetLayer::Conv(conv1))
        .push(NetLayer::Relu(Relu::new("relu1")))
        .push(NetLayer::Pool(pool1))
        .push(NetLayer::Conv(conv2))
        .push(NetLayer::Relu(Relu::new("relu2")))
        .push(NetLayer::Pool(pool2))
        .push(NetLayer::Dense(Dense::init(
            "head",
            classes,
            fc_in,
            seed.wrapping_add(40),
        )))
}

/// A tiny Transformer encoder for the motif-detection task (stand-in for
/// the paper's BERT benchmarks): LN → attention → LN → FFN → head.
pub fn tiny_transformer(seq: usize, dim: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new()
        .push(NetLayer::Norm(LayerNorm::new("ln1", dim)))
        .push(NetLayer::Attn(Box::new(Attention::init(
            "attn", seq, dim, seed,
        ))))
        .push(NetLayer::Norm(LayerNorm::new("ln2", dim)))
        .push(NetLayer::Dense(Dense::init(
            "ffn1",
            64,
            seq * dim,
            seed.wrapping_add(50),
        )))
        .push(NetLayer::Relu(Relu::new("relu")))
        .push(NetLayer::Dense(Dense::init(
            "head",
            classes,
            64,
            seed.wrapping_add(60),
        )))
}

/// A single Transformer block head: attention → GELU → dense classifier.
/// The minimal attention-bearing model (no LayerNorm, no FFN expansion),
/// used by the packed-runtime conformance experiments where every layer
/// kind must execute without fallback.
pub fn transformer_block(seq: usize, dim: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new()
        .push(NetLayer::Attn(Box::new(Attention::init(
            "attn", seq, dim, seed,
        ))))
        .push(NetLayer::Gelu(Gelu::new("gelu")))
        .push(NetLayer::Dense(Dense::init(
            "head",
            classes,
            seq * dim,
            seed.wrapping_add(70),
        )))
}

/// A causal decoder stack for autoregressive generation: `depth` blocks
/// of LayerNorm → causal attention → GELU over `[batch, seq*dim]`
/// inputs. Every layer is token-local or causal, so the stack is
/// sequence-length polymorphic at inference time — exactly the property
/// incremental KV-cache decode requires. The output keeps the input
/// width (`dim` features per token); serving treats the final token row
/// as next-token logits over a `dim`-entry vocabulary (tied-embedding
/// style), so no classifier head pins a fixed sequence length.
pub fn decoder_block(seq: usize, dim: usize, depth: usize, seed: u64) -> Sequential {
    let mut m = Sequential::new();
    for i in 0..depth.max(1) {
        m = m
            .push(NetLayer::Norm(LayerNorm::new(format!("ln{i}"), dim)))
            .push(NetLayer::Attn(Box::new(
                Attention::init(
                    format!("attn{i}"),
                    seq,
                    dim,
                    seed.wrapping_add(10 * i as u64),
                )
                .with_causal(true),
            )))
            .push(NetLayer::Gelu(Gelu::new(format!("gelu{i}"))));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_tensor::dist::{sample_tensor, Distribution};

    fn gaussian(dims: &[usize], seed: u64) -> Tensor {
        sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            dims,
            seed,
        )
    }

    #[test]
    fn mlp_shapes() {
        let mut m = mlp(16, 8, 1);
        let y = m.forward(&gaussian(&[4, 16], 2)).unwrap();
        assert_eq!(y.dims(), &[4, 8]);
        assert_eq!(m.quantizable_layers(), vec![0, 2, 4]);
        assert!(m.param_count() > 0);
    }

    #[test]
    fn deep_mlp_shapes() {
        let mut m = deep_mlp(16, 10, 24, 6, 2);
        let y = m.forward(&gaussian(&[3, 16], 1)).unwrap();
        assert_eq!(y.dims(), &[3, 10]);
        assert_eq!(m.quantizable_layers().len(), 7); // 6 hidden + head
    }

    #[test]
    fn cnn_shapes() {
        let mut m = small_cnn(4, 3);
        let y = m.forward(&gaussian(&[2, 144], 4)).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        assert_eq!(m.quantizable_layers().len(), 3);
    }

    #[test]
    fn transformer_shapes() {
        let mut m = tiny_transformer(6, 8, 4, 5);
        let y = m.forward(&gaussian(&[3, 48], 6)).unwrap();
        assert_eq!(y.dims(), &[3, 4]);
        assert_eq!(m.quantizable_layers().len(), 3); // attn + 2 dense
    }

    #[test]
    fn transformer_block_shapes() {
        let mut m = transformer_block(5, 6, 3, 8);
        let y = m.forward(&gaussian(&[2, 30], 9)).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(m.quantizable_layers(), vec![0, 2]);
    }

    #[test]
    fn decoder_block_shapes_and_causality() {
        let (seq, dim) = (6, 8);
        let mut m = decoder_block(seq, dim, 2, 11);
        let x = gaussian(&[2, seq * dim], 13);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, seq * dim]);
        assert_eq!(m.quantizable_layers().len(), 2);
        // Causality must survive stacking: perturb the last token, the
        // prefix outputs of sample 0 stay bit-identical.
        let mut xp = x.clone();
        xp.as_mut_slice()[(seq - 1) * dim] += 1.0;
        let yp = m.forward(&xp).unwrap();
        assert_eq!(
            &y.as_slice()[..(seq - 1) * dim],
            &yp.as_slice()[..(seq - 1) * dim]
        );
    }

    #[test]
    fn end_to_end_gradient_check_mlp() {
        let mut m = mlp(6, 3, 7);
        let x = gaussian(&[2, 6], 8);
        let y = m.forward(&x).unwrap();
        let dx = m.backward(&Tensor::ones(y.dims())).unwrap();
        // The network is piecewise linear in x, so central differences are
        // exact unless [x-eps, x+eps] straddles a ReLU kink. Detect that by
        // comparing two step sizes: away from kinks they agree exactly.
        let numeric_at = |m: &mut Sequential, i: usize, eps: f32| {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = m.forward(&xp).unwrap().sum();
            let fm = m.forward(&xm).unwrap().sum();
            (fp - fm) / (2.0 * eps)
        };
        let mut checked = 0;
        for i in 0..6 {
            let fine = numeric_at(&mut m, i, 1e-3);
            if (fine - dx.as_slice()[i]).abs() < 2e-2 * (1.0 + fine.abs()) {
                checked += 1;
                continue;
            }
            // Mismatch: only excusable if the step interval straddles a
            // kink, which shows up as step-size-dependent estimates.
            let coarse = numeric_at(&mut m, i, 4e-3);
            assert!(
                (coarse - fine).abs() > 1e-3 * (1.0 + fine.abs()),
                "grad[{i}]: numeric {fine} vs analytic {} (linear region)",
                dx.as_slice()[i]
            );
        }
        assert!(
            checked >= 3,
            "too many kink-straddling indices ({checked} checked)"
        );
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut m = mlp(4, 2, 9);
        let x = gaussian(&[1, 4], 10);
        let y = m.forward(&x).unwrap();
        let _ = m.backward(&Tensor::ones(y.dims())).unwrap();
        let mut any_nonzero = false;
        m.for_each_param(&mut |p| any_nonzero |= p.grad.as_slice().iter().any(|&g| g != 0.0));
        assert!(any_nonzero);
        m.zero_grad();
        m.for_each_param(&mut |p| {
            assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        });
    }
}
