//! Mini-batch training loop and evaluation.

use crate::data::Dataset;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::model::Sequential;
use crate::optim::Sgd;
use crate::NnError;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Shuffle seed (varied per epoch internally).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainHistory {
    /// Mean training loss per epoch.
    pub loss: Vec<f32>,
}

/// Trains `model` on `data` with SGD + momentum.
///
/// # Errors
///
/// Propagates layer and loss errors; returns [`NnError::BadDataset`] for an
/// empty dataset.
pub fn train(
    model: &mut Sequential,
    data: &Dataset,
    cfg: TrainConfig,
) -> Result<TrainHistory, NnError> {
    if data.is_empty() {
        return Err(NnError::BadDataset("empty training set".to_string()));
    }
    let mut opt = Sgd::new(cfg.lr, cfg.momentum);
    let mut history = TrainHistory {
        loss: Vec::with_capacity(cfg.epochs),
    };
    for epoch in 0..cfg.epochs {
        let order = data.shuffled_indices(cfg.seed.wrapping_add(epoch as u64));
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let (x, labels) = data.batch(chunk);
            let logits = model.forward(&x)?;
            let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
            model.backward(&grad)?;
            opt.step(model);
            epoch_loss += loss as f64;
            batches += 1;
        }
        history
            .loss
            .push((epoch_loss / batches.max(1) as f64) as f32);
    }
    Ok(history)
}

/// Classification accuracy of `model` over `data`.
///
/// # Errors
///
/// Propagates layer errors.
pub fn evaluate(model: &mut Sequential, data: &Dataset) -> Result<f64, NnError> {
    let logits = model.forward(data.inputs())?;
    accuracy(&logits, data.labels())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{blobs, motifs, shapes};
    use crate::model::{mlp, small_cnn, tiny_transformer};

    #[test]
    fn mlp_learns_blobs() {
        let data = blobs(400, 8, 4, 0.4, 21);
        let (train_set, test_set) = data.split(0.25);
        let mut model = mlp(8, 4, 22);
        let before = evaluate(&mut model, &test_set).unwrap();
        let hist = train(
            &mut model,
            &train_set,
            TrainConfig {
                epochs: 15,
                batch_size: 32,
                lr: 0.05,
                momentum: 0.9,
                seed: 1,
            },
        )
        .unwrap();
        let after = evaluate(&mut model, &test_set).unwrap();
        assert!(
            after > 0.9,
            "accuracy {before} -> {after}, loss {:?}",
            hist.loss
        );
        assert!(hist.loss.last().unwrap() < hist.loss.first().unwrap());
    }

    #[test]
    fn cnn_learns_shapes() {
        let data = shapes(320, 0.15, 23);
        let (train_set, test_set) = data.split(0.25);
        let mut model = small_cnn(4, 24);
        let _ = train(
            &mut model,
            &train_set,
            TrainConfig {
                epochs: 8,
                batch_size: 16,
                lr: 0.05,
                momentum: 0.9,
                seed: 2,
            },
        )
        .unwrap();
        let acc = evaluate(&mut model, &test_set).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn transformer_learns_motifs() {
        let data = motifs(480, 8, 12, 4, 25);
        let (train_set, test_set) = data.split(0.25);
        let mut model = tiny_transformer(8, 12, 4, 26);
        let _ = train(
            &mut model,
            &train_set,
            TrainConfig {
                epochs: 20,
                batch_size: 32,
                lr: 0.03,
                momentum: 0.9,
                seed: 3,
            },
        )
        .unwrap();
        let acc = evaluate(&mut model, &test_set).unwrap();
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn train_rejects_empty_dataset() {
        let data = blobs(10, 2, 2, 0.1, 1);
        let (_, tiny) = data.split(0.5);
        let empty =
            crate::data::Dataset::new(ant_tensor::Tensor::zeros(&[0, 2]), vec![], 2).unwrap();
        let mut model = mlp(2, 2, 1);
        assert!(train(&mut model, &empty, TrainConfig::default()).is_err());
        let _ = tiny;
    }
}
