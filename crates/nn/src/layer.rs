//! The layer abstraction and the dense/convolutional/activation layers.
//!
//! Layers process mini-batches shaped `[batch, features]` (rank 2); layers
//! with spatial semantics (conv, pooling) carry their own `(c, h, w)`
//! geometry so the container stays uniform. Each layer caches what its
//! backward pass needs, implements explicit backprop, and exposes its
//! parameters to the optimizer through a visitor.
//!
//! Quantization hooks: [`Dense`] and [`Conv2d`] own optional weight and
//! activation fake-quantizers. When set, the forward pass computes with
//! quantized weights/activations while gradients update the full-precision
//! master copy — the straight-through estimator used for the paper's
//! quantization-aware fine-tuning (Sec. VII-A).

use crate::NnError;
use ant_core::{Quantizer, TensorQuantizer};
use ant_tensor::linalg::{self, Conv2dGeometry};
use ant_tensor::Tensor;

/// A trainable parameter: master value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Full-precision master value.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. the (quantized, when QAT is active)
    /// parameter, accumulated over the current batch.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }
}

/// A differentiable network layer.
pub trait Layer {
    /// Layer name (for diagnostics and per-layer quantization reports).
    fn name(&self) -> &str;

    /// Forward pass on a `[batch, in_features]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on shape mismatch.
    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError>;

    /// Backward pass: consumes `d(loss)/d(output)` and returns
    /// `d(loss)/d(input)`, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardState`] when called before `forward`.
    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError>;

    /// Visits every trainable parameter (used by optimizers).
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.value.len());
        n
    }
}

/// Weight/activation fake-quantization state attachable to a compute layer.
#[derive(Debug, Clone, Default)]
pub struct QuantState {
    /// Per-channel (or per-tensor) weight quantizer.
    pub weight: Option<TensorQuantizer>,
    /// Per-tensor input-activation quantizer.
    pub activation: Option<Quantizer>,
}

impl QuantState {
    /// Whether any quantizer is attached.
    pub fn is_active(&self) -> bool {
        self.weight.is_some() || self.activation.is_some()
    }
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully-connected layer: `y = x Wᵀ + b` with `W: [out, in]`.
#[derive(Debug, Clone)]
pub struct Dense {
    name: String,
    weight: Param,
    bias: Param,
    /// Quantization hooks (None = full precision).
    pub quant: QuantState,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with the given initial weights `[out, in]` and
    /// biases `[out]`.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not rank 2 or the bias length differs from
    /// the output features.
    pub fn new(name: impl Into<String>, weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.rank(), 2, "dense weight must be [out, in]");
        assert_eq!(bias.len(), weight.dims()[0], "bias length");
        Dense {
            name: name.into(),
            weight: Param::new(weight),
            bias: Param::new(bias),
            quant: QuantState::default(),
            cached_input: None,
        }
    }

    /// He-uniform initialised dense layer.
    pub fn init(name: impl Into<String>, out: usize, inp: usize, seed: u64) -> Self {
        let bound = (6.0 / inp as f32).sqrt();
        let w = ant_tensor::dist::sample_tensor(
            ant_tensor::dist::Distribution::Uniform {
                lo: -bound,
                hi: bound,
            },
            &[out, inp],
            seed,
        );
        Dense::new(name, w, Tensor::zeros(&[out]))
    }

    /// Immutable view of the master weight `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Immutable view of the bias `[out]` (export hook for inference
    /// runtimes).
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// The weight actually used in the forward pass (quantized when QAT is
    /// active).
    ///
    /// # Errors
    ///
    /// Propagates quantizer channel mismatches.
    pub fn effective_weight(&self) -> Result<Tensor, NnError> {
        match &self.quant.weight {
            Some(q) => Ok(q.apply(&self.weight.value)?),
            None => Ok(self.weight.value.clone()),
        }
    }

    fn effective_input(&self, x: &Tensor) -> Tensor {
        match &self.quant.activation {
            Some(q) => q.apply(x),
            None => x.clone(),
        }
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        if x.rank() != 2 || x.dims()[1] != self.weight.value.dims()[1] {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!(
                    "expected [batch, {}], got {:?}",
                    self.weight.value.dims()[1],
                    x.dims()
                ),
            });
        }
        let xq = self.effective_input(x);
        let wq = self.effective_weight()?;
        let mut y = linalg::matmul(&xq, &wq.transpose()?)?;
        let (b, o) = (y.dims()[0], y.dims()[1]);
        let bias = self.bias.value.as_slice().to_vec();
        let yv = y.as_mut_slice();
        for i in 0..b {
            for j in 0..o {
                yv[i * o + j] += bias[j];
            }
        }
        self.cached_input = Some(xq);
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::NoForwardState {
                layer: self.name.clone(),
            })?;
        // STE: gradients are computed with the quantized weight but applied
        // to the master copy.
        let wq = self.effective_weight()?;
        let dx = linalg::matmul(grad, &wq)?;
        let dw = linalg::matmul(&grad.transpose()?, x)?;
        self.weight.grad = self.weight.grad.add(&dw)?;
        let (b, o) = (grad.dims()[0], grad.dims()[1]);
        let gv = grad.as_slice();
        let bg = self.bias.grad.as_mut_slice();
        for i in 0..b {
            for j in 0..o {
                bg[j] += gv[i * o + j];
            }
        }
        Ok(dx)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    name: String,
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Relu {
            name: name.into(),
            mask: None,
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        self.mask = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
        Ok(x.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let mask = self.mask.as_ref().ok_or_else(|| NnError::NoForwardState {
            layer: self.name.clone(),
        })?;
        if mask.len() != grad.len() {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: "gradient shape differs from forward input".to_string(),
            });
        }
        let mut out = grad.clone();
        for (v, &m) in out.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        Ok(out)
    }

    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution over flattened `[batch, ci*h*w]` inputs.
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    weight: Param, // [co, ci, kh, kw]
    bias: Param,   // [co]
    in_shape: (usize, usize, usize),
    geo: Conv2dGeometry,
    /// Quantization hooks (None = full precision).
    pub quant: QuantState,
    cached_cols: Option<Vec<Tensor>>, // per-sample im2col matrices
    cached_batch: usize,
}

impl Conv2d {
    /// Creates a convolution with explicit weights `[co, ci, kh, kw]`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent weight/bias/geometry shapes.
    pub fn new(
        name: impl Into<String>,
        weight: Tensor,
        bias: Tensor,
        in_shape: (usize, usize, usize),
        geo: Conv2dGeometry,
    ) -> Self {
        assert_eq!(weight.rank(), 4, "conv weight must be [co, ci, kh, kw]");
        assert_eq!(weight.dims()[1], in_shape.0, "input channels");
        assert_eq!(bias.len(), weight.dims()[0], "bias length");
        Conv2d {
            name: name.into(),
            weight: Param::new(weight),
            bias: Param::new(bias),
            in_shape,
            geo,
            quant: QuantState::default(),
            cached_cols: None,
            cached_batch: 0,
        }
    }

    /// He-uniform initialised convolution.
    pub fn init(
        name: impl Into<String>,
        co: usize,
        in_shape: (usize, usize, usize),
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        let (ci, _, _) = in_shape;
        let fan_in = (ci * kernel * kernel) as f32;
        let bound = (6.0 / fan_in).sqrt();
        let w = ant_tensor::dist::sample_tensor(
            ant_tensor::dist::Distribution::Uniform {
                lo: -bound,
                hi: bound,
            },
            &[co, ci, kernel, kernel],
            seed,
        );
        let geo = Conv2dGeometry::new(kernel, kernel, stride, padding)
            .expect("kernel/stride validated by caller");
        Conv2d::new(name, w, Tensor::zeros(&[co]), in_shape, geo)
    }

    /// Output `(c, h, w)` for the configured geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the input (checked at
    /// construction in practice).
    pub fn out_shape(&self) -> (usize, usize, usize) {
        let (_, h, w) = self.in_shape;
        let oh = self.geo.out_extent(h, self.geo.kh).expect("kernel fits");
        let ow = self.geo.out_extent(w, self.geo.kw).expect("kernel fits");
        (self.weight.value.dims()[0], oh, ow)
    }

    /// Flattened output feature count.
    pub fn out_features(&self) -> usize {
        let (c, h, w) = self.out_shape();
        c * h * w
    }

    /// Immutable view of the master weight.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Immutable view of the bias `[co]` (export hook for inference
    /// runtimes).
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Input geometry `(ci, h, w)`.
    pub fn in_shape(&self) -> (usize, usize, usize) {
        self.in_shape
    }

    /// Kernel/stride/padding geometry.
    pub fn geometry(&self) -> Conv2dGeometry {
        self.geo
    }

    fn effective_weight(&self) -> Result<Tensor, NnError> {
        match &self.quant.weight {
            Some(q) => Ok(q.apply(&self.weight.value)?),
            None => Ok(self.weight.value.clone()),
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let (ci, h, w) = self.in_shape;
        let feat = ci * h * w;
        if x.rank() != 2 || x.dims()[1] != feat {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected [batch, {feat}], got {:?}", x.dims()),
            });
        }
        let batch = x.dims()[0];
        let xq = match &self.quant.activation {
            Some(q) => q.apply(x),
            None => x.clone(),
        };
        let wq = self.effective_weight()?;
        let (co, oh, ow) = self.out_shape();
        let wmat = wq.reshape(&[co, ci * self.geo.kh * self.geo.kw])?;
        let mut out = Tensor::zeros(&[batch, co * oh * ow]);
        let mut cols_cache = Vec::with_capacity(batch);
        for s in 0..batch {
            let sample = Tensor::from_vec(xq.channel(s)?.to_vec(), &[ci, h, w])?;
            let cols = linalg::im2col(&sample, self.geo)?;
            let mut y = linalg::matmul(&wmat, &cols)?; // [co, oh*ow]
            let n = oh * ow;
            let bias = self.bias.value.as_slice();
            let yv = y.as_mut_slice();
            for c in 0..co {
                for p in 0..n {
                    yv[c * n + p] += bias[c];
                }
            }
            out.channel_mut(s)?.copy_from_slice(y.as_slice());
            cols_cache.push(cols);
        }
        self.cached_cols = Some(cols_cache);
        self.cached_batch = batch;
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let cols_cache = self
            .cached_cols
            .as_ref()
            .ok_or_else(|| NnError::NoForwardState {
                layer: self.name.clone(),
            })?;
        let (ci, h, w) = self.in_shape;
        let (co, oh, ow) = self.out_shape();
        let batch = self.cached_batch;
        if grad.rank() != 2 || grad.dims()[0] != batch || grad.dims()[1] != co * oh * ow {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("gradient shape {:?}", grad.dims()),
            });
        }
        let wq = self.effective_weight()?;
        let kk = self.geo.kh * self.geo.kw;
        let wmat = wq.reshape(&[co, ci * kk])?;
        let n = oh * ow;
        let mut dx = Tensor::zeros(&[batch, ci * h * w]);
        let mut dwmat = Tensor::zeros(&[co, ci * kk]);
        for (s, cols) in cols_cache.iter().enumerate() {
            let gy = Tensor::from_vec(grad.channel(s)?.to_vec(), &[co, n])?;
            // dW += gy · colsᵀ ; dcols = Wᵀ · gy ; dx = col2im(dcols).
            dwmat = dwmat.add(&linalg::matmul(&gy, &cols.transpose()?)?)?;
            let dcols = linalg::matmul(&wmat.transpose()?, &gy)?;
            col2im_accumulate(&dcols, ci, h, w, self.geo, dx.channel_mut(s)?);
            // Bias gradient: sum over spatial positions.
            let gyv = gy.as_slice();
            let bg = self.bias.grad.as_mut_slice();
            for c in 0..co {
                for p in 0..n {
                    bg[c] += gyv[c * n + p];
                }
            }
        }
        let dw = dwmat.reshape(self.weight.value.dims())?;
        self.weight.grad = self.weight.grad.add(&dw)?;
        Ok(dx)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

/// Scatter-adds an im2col gradient back to the input layout (the transpose
/// of `im2col`).
fn col2im_accumulate(
    dcols: &Tensor,
    ci: usize,
    h: usize,
    w: usize,
    geo: Conv2dGeometry,
    out: &mut [f32],
) {
    let oh = geo.out_extent(h, geo.kh).expect("kernel fits");
    let ow = geo.out_extent(w, geo.kw).expect("kernel fits");
    let cols = oh * ow;
    let dv = dcols.as_slice();
    for c in 0..ci {
        for ki in 0..geo.kh {
            for kj in 0..geo.kw {
                let r = (c * geo.kh + ki) * geo.kw + kj;
                for oy in 0..oh {
                    let iy = (oy * geo.stride + ki) as isize - geo.padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geo.stride + kj) as isize - geo.padding as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        out[(c * h + iy as usize) * w + ix as usize] += dv[r * cols + oy * ow + ox];
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d (2×2, stride 2)
// ---------------------------------------------------------------------------

/// 2×2 max pooling with stride 2 over flattened `[batch, c*h*w]` inputs.
#[derive(Debug, Clone)]
pub struct MaxPool2 {
    name: String,
    in_shape: (usize, usize, usize),
    argmax: Option<Vec<usize>>,
    cached_batch: usize,
}

impl MaxPool2 {
    /// Creates the pool for a given input geometry.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is not even.
    pub fn new(name: impl Into<String>, in_shape: (usize, usize, usize)) -> Self {
        assert!(
            in_shape.1.is_multiple_of(2) && in_shape.2.is_multiple_of(2),
            "pool needs even extents"
        );
        MaxPool2 {
            name: name.into(),
            in_shape,
            argmax: None,
            cached_batch: 0,
        }
    }

    /// Input geometry `(c, h, w)` (export hook for inference runtimes).
    pub fn in_shape(&self) -> (usize, usize, usize) {
        self.in_shape
    }

    /// Output `(c, h, w)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        let (c, h, w) = self.in_shape;
        (c, h / 2, w / 2)
    }

    /// Flattened output feature count.
    pub fn out_features(&self) -> usize {
        let (c, h, w) = self.out_shape();
        c * h * w
    }
}

impl Layer for MaxPool2 {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let (c, h, w) = self.in_shape;
        if x.rank() != 2 || x.dims()[1] != c * h * w {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected [batch, {}], got {:?}", c * h * w, x.dims()),
            });
        }
        let batch = x.dims()[0];
        let (oc, oh, ow) = self.out_shape();
        let mut out = Tensor::zeros(&[batch, oc * oh * ow]);
        let mut argmax = vec![0usize; batch * oc * oh * ow];
        for s in 0..batch {
            let xin = x.channel(s)?;
            let xout = out.channel_mut(s)?;
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let idx = (ci * h + iy) * w + ix;
                                if xin[idx] > best {
                                    best = xin[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o_idx = (ci * oh + oy) * ow + ox;
                        xout[o_idx] = best;
                        argmax[s * oc * oh * ow + o_idx] = best_idx;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.cached_batch = batch;
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let argmax = self
            .argmax
            .as_ref()
            .ok_or_else(|| NnError::NoForwardState {
                layer: self.name.clone(),
            })?;
        let (c, h, w) = self.in_shape;
        let per_sample = grad.len() / self.cached_batch.max(1);
        let mut dx = Tensor::zeros(&[self.cached_batch, c * h * w]);
        for s in 0..self.cached_batch {
            let g = grad.channel(s)?;
            let d = dx.channel_mut(s)?;
            for (o_idx, &gv) in g.iter().enumerate() {
                d[argmax[s * per_sample + o_idx]] += gv;
            }
        }
        Ok(dx)
    }

    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check<L: Layer>(layer: &mut L, x: &Tensor, eps: f32, tol: f32) {
        // Loss = sum(forward(x)); compare analytic dx against central
        // differences.
        let y = layer.forward(x).unwrap();
        let grad = Tensor::ones(y.dims());
        let dx = layer.backward(&grad).unwrap();
        for i in 0..x.len().min(24) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = layer.forward(&xp).unwrap().sum();
            let fm = layer.forward(&xm).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = dx.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < tol * (1.0 + numeric.abs()),
                "grad[{i}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn dense_forward_known_values() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_slice(&[10.0, 20.0]);
        let mut d = Dense::new("fc", w, b);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = d.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn dense_gradient_check() {
        let mut d = Dense::init("fc", 3, 4, 42);
        let x = ant_tensor::dist::sample_tensor(
            ant_tensor::dist::Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[2, 4],
            7,
        );
        finite_diff_check(&mut d, &x, 1e-3, 1e-2);
    }

    #[test]
    fn dense_weight_gradient_matches_finite_difference() {
        let mut d = Dense::init("fc", 2, 3, 1);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]).unwrap();
        let y = d.forward(&x).unwrap();
        let _ = d.backward(&Tensor::ones(y.dims())).unwrap();
        let mut analytic = Vec::new();
        d.for_each_param(&mut |p| analytic.push(p.grad.clone()));
        let eps = 1e-3;
        // Perturb weight[0][1].
        let mut dp = d.clone();
        let mut dm = d.clone();
        dp.weight.value.as_mut_slice()[1] += eps;
        dm.weight.value.as_mut_slice()[1] -= eps;
        let fp = dp.forward(&x).unwrap().sum();
        let fm = dm.forward(&x).unwrap().sum();
        let numeric = (fp - fm) / (2.0 * eps);
        assert!((numeric - analytic[0].as_slice()[1]).abs() < 1e-2);
    }

    #[test]
    fn dense_rejects_bad_input() {
        let mut d = Dense::init("fc", 2, 3, 1);
        assert!(matches!(
            d.forward(&Tensor::zeros(&[1, 4])),
            Err(NnError::BadInput { .. })
        ));
        assert!(matches!(
            Dense::init("fc2", 2, 3, 1).backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::NoForwardState { .. })
        ));
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = Relu::new("relu");
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 4]).unwrap();
        let y = r.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let dx = r.backward(&Tensor::ones(&[1, 4])).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn conv_gradient_check() {
        let mut c = Conv2d::init("conv", 2, (1, 6, 6), 3, 1, 1, 5);
        let x = ant_tensor::dist::sample_tensor(
            ant_tensor::dist::Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[2, 36],
            9,
        );
        finite_diff_check(&mut c, &x, 1e-3, 2e-2);
    }

    #[test]
    fn conv_matches_tensor_linalg() {
        let mut c = Conv2d::init("conv", 3, (2, 5, 5), 3, 1, 0, 11);
        let x = ant_tensor::dist::sample_tensor(
            ant_tensor::dist::Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[1, 50],
            13,
        );
        let y = c.forward(&x).unwrap();
        let sample = Tensor::from_vec(x.channel(0).unwrap().to_vec(), &[2, 5, 5]).unwrap();
        let reference = linalg::conv2d(
            &sample,
            c.weight(),
            Some(&[0.0; 3]),
            Conv2dGeometry::new(3, 3, 1, 0).unwrap(),
        )
        .unwrap();
        for (a, b) in y.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(c.out_shape(), (3, 3, 3));
        assert_eq!(c.out_features(), 27);
    }

    #[test]
    fn maxpool_forward_backward() {
        let mut p = MaxPool2::new("pool", (1, 4, 4));
        let x = Tensor::from_fn(&[1, 16], |i| i[1] as f32);
        let y = p.forward(&x).unwrap();
        // 4x4 grid of 0..15: maxima of each 2x2 block are 5, 7, 13, 15.
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        let dx = p
            .backward(
                &Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0])
                    .reshape(&[1, 4])
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(dx.as_slice()[5], 1.0);
        assert_eq!(dx.as_slice()[7], 2.0);
        assert_eq!(dx.as_slice()[13], 3.0);
        assert_eq!(dx.as_slice()[15], 4.0);
        assert_eq!(dx.sum(), 10.0);
    }

    #[test]
    fn quantized_dense_outputs_lattice_weights() {
        use ant_core::select::{select_type_auto, PrimitiveCombo};
        use ant_core::{ClipSearch, Granularity};
        let mut d = Dense::init("fc", 4, 8, 21);
        let sel = select_type_auto(
            d.weight(),
            PrimitiveCombo::IntPotFlint,
            4,
            Granularity::PerChannel,
            ClipSearch::default(),
        )
        .unwrap();
        d.quant.weight = Some(sel.quantizer);
        assert!(d.quant.is_active());
        let x = Tensor::ones(&[1, 8]);
        let y = d.forward(&x).unwrap();
        // Output equals x · quantized-Wᵀ; recompute directly.
        let wq = d.effective_weight().unwrap();
        let expect = linalg::matmul(&x, &wq.transpose().unwrap()).unwrap();
        for (a, b) in y.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn param_count_reports_scalars() {
        let mut d = Dense::init("fc", 4, 8, 3);
        assert_eq!(d.param_count(), 4 * 8 + 4);
        let mut r = Relu::new("r");
        assert_eq!(r.param_count(), 0);
    }
}
