//! Exporters: Prometheus text exposition and chrome://tracing JSON.
//!
//! Both render a *snapshot*, never live metric storage, so they can be
//! as allocation-happy as any formatter — the zero-alloc discipline
//! applies to recording, not export.

use crate::registry::{Snapshot, Value};
use crate::span::SpanEvent;
use std::fmt::Write;

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): one `# HELP` / `# TYPE` pair per family, one sample
/// line per series, histograms as cumulative `_bucket{le=…}` series
/// plus `_sum` and `_count`.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut seen_families: Vec<&str> = Vec::new();
    for series in &snap.series {
        let fam = series.family.as_str();
        if !seen_families.contains(&fam) {
            seen_families.push(fam);
            let kind = match &series.value {
                Value::Counter(_) => "counter",
                Value::Gauge(_) => "gauge",
                Value::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {fam} {}", series.help);
            let _ = writeln!(out, "# TYPE {fam} {kind}");
        }
        let label = series
            .label
            .as_ref()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)));
        match &series.value {
            Value::Counter(v) => {
                let braces = label.map(|l| format!("{{{l}}}")).unwrap_or_default();
                let _ = writeln!(out, "{fam}{braces} {v}");
            }
            Value::Gauge(v) => {
                let braces = label.map(|l| format!("{{{l}}}")).unwrap_or_default();
                let _ = writeln!(out, "{fam}{braces} {v}");
            }
            Value::Histogram(h) => {
                let mut cum = 0u64;
                for (_, upper, count) in h.buckets() {
                    cum += count;
                    let le = match &label {
                        Some(l) => format!("{{{l},le=\"{upper}\"}}"),
                        None => format!("{{le=\"{upper}\"}}"),
                    };
                    let _ = writeln!(out, "{fam}_bucket{le} {cum}");
                }
                let inf = match &label {
                    Some(l) => format!("{{{l},le=\"+Inf\"}}"),
                    None => "{le=\"+Inf\"}".to_string(),
                };
                let braces = label.map(|l| format!("{{{l}}}")).unwrap_or_default();
                let _ = writeln!(out, "{fam}_bucket{inf} {}", h.count());
                let _ = writeln!(out, "{fam}_sum{braces} {}", h.sum());
                let _ = writeln!(out, "{fam}_count{braces} {}", h.count());
            }
        }
    }
    out
}

/// Renders span events as a chrome://tracing / Perfetto JSON trace:
/// an object with a `traceEvents` array of complete (`"ph": "X"`)
/// events, timestamps in microseconds on the process timeline.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"ant\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            escape_label(e.name),
            e.tid,
            e.start_ns as f64 / 1000.0,
            e.dur_ns as f64 / 1000.0,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("ant_requests_total", "Requests served").add(7);
        r.gauge("ant_queue_depth", "Queued requests").set(3);
        let h = r.histogram("ant_latency_ns", "Request latency");
        h.record(100);
        h.record(100_000);
        r.counter_with("ant_layer_total", "kind", "relu", "Per-kind calls")
            .add(2);
        r.counter_with("ant_layer_total", "kind", "gelu", "Per-kind calls")
            .add(4);
        r
    }

    #[test]
    fn prometheus_shape_is_well_formed() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# HELP ant_requests_total Requests served"));
        assert!(text.contains("# TYPE ant_requests_total counter"));
        assert!(text.contains("ant_requests_total 7"));
        assert!(text.contains("# TYPE ant_queue_depth gauge"));
        assert!(text.contains("ant_queue_depth 3"));
        assert!(text.contains("# TYPE ant_latency_ns histogram"));
        assert!(text.contains("ant_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ant_latency_ns_count 2"));
        assert!(text.contains("ant_latency_ns_sum 100100"));
        assert!(text.contains("ant_layer_total{kind=\"relu\"} 2"));
        assert!(text.contains("ant_layer_total{kind=\"gelu\"} 4"));
        // One HELP/TYPE pair per family, not per series.
        assert_eq!(text.matches("# TYPE ant_layer_total").count(), 1);
        // Cumulative buckets end at the total count.
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("ant_latency_ns_bucket"))
            .unwrap();
        assert!(last_bucket.ends_with(" 2"));
    }

    #[test]
    fn chrome_trace_renders_events() {
        let events = vec![
            SpanEvent {
                name: "layer.relu",
                tid: 0,
                start_ns: 1500,
                dur_ns: 250,
            },
            SpanEvent {
                name: "forward",
                tid: 1,
                start_ns: 1000,
                dur_ns: 4000,
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"layer.relu\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":4.000"));
        assert!(json.contains("\"ph\":\"X\""));
        assert_eq!(
            chrome_trace(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }
}
