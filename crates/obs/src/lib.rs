//! Zero-allocation telemetry spine for the ANT serving runtime.
//!
//! The runtime already enforces a hard discipline for the serving hot
//! path: after warmup, a request performs **zero heap allocations**
//! (`crates/bench/tests/alloc_steady.rs`). This crate extends the same
//! discipline to telemetry — *recording* a metric or a span never
//! allocates, never takes a lock, and costs a few nanoseconds:
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomic read-modify-writes.
//! * [`Histogram`] — fixed-size log2-bucketed distribution (64 octaves,
//!   4 linear sub-buckets each); one shift + two relaxed `fetch_add`s
//!   per record, percentiles (p50/p90/p99/p999) derived at *read* time.
//! * [`span`](mod@span) — fixed-capacity per-thread ring buffers of span
//!   records, written with plain relaxed atomic stores.
//!
//! Allocation and locking are confined to the cold edges: registering a
//! metric in the [`Registry`] (done once at startup / plan compile),
//! taking a [`Registry::snapshot`], and rendering an export
//! ([`export::prometheus_text`], [`export::chrome_trace`]). The hot
//! side is what the `alloc_steady` allocation test pins with telemetry
//! enabled.
//!
//! Timing uses a process-wide monotonic epoch ([`now_ns`]) so span
//! timestamps from different threads land on one timeline.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
mod metrics;
mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{global, Registry, Series, Snapshot, Value};
pub use span::{record_span, register_span, snapshot_spans, SpanEvent, SpanId};

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the process-wide telemetry epoch (the first call).
///
/// Monotonic and shared across threads, so span start/end stamps from
/// different threads are directly comparable. The epoch cell is inline
/// storage (`OnceLock<Instant>`): initialization does not allocate, so
/// the first timed event on the hot path stays allocation-free.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
