//! The metric registry: named handles and point-in-time snapshots.
//!
//! Registration is the cold edge — it takes a mutex and may allocate,
//! and is meant to run once per metric at startup (plan compile, engine
//! construction). The returned `Arc` handles are then recorded through
//! directly, without ever touching the registry again, which is what
//! keeps the hot path lock- and allocation-free.
//!
//! Series are named `family` + one optional `key="value"` label (the
//! slice of Prometheus's data model the runtime needs: per-layer-kind
//! and per-worker breakdowns). Registering the same (family, label)
//! twice returns the same handle, so independent subsystems can share a
//! series without coordination.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::sync::{Arc, Mutex};

/// A live metric handle held by a registry entry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    family: String,
    label: Option<(&'static str, String)>,
    help: String,
    metric: Metric,
}

/// A set of named metrics that can be snapshotted together.
///
/// The process-wide instance is [`global()`]; isolated instances are
/// cheap to create for tests that need deterministic totals.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn get_or_insert(
        &self,
        family: &str,
        label: Option<(&'static str, &str)>,
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| {
            e.family == family && e.label.as_ref().map(|(k, v)| (*k, v.as_str())) == label
        }) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            family: family.to_string(),
            label: label.map(|(k, v)| (k, v.to_string())),
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, family: &str, help: &str) -> Arc<Counter> {
        match self.get_or_insert(family, None, help, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => panic!("metric {family} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) a counter series with one label.
    pub fn counter_with(
        &self,
        family: &str,
        key: &'static str,
        value: &str,
        help: &str,
    ) -> Arc<Counter> {
        match self.get_or_insert(family, Some((key, value)), help, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => panic!("metric {family} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, family: &str, help: &str) -> Arc<Gauge> {
        match self.get_or_insert(family, None, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {family} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) a gauge series with one label.
    pub fn gauge_with(
        &self,
        family: &str,
        key: &'static str,
        value: &str,
        help: &str,
    ) -> Arc<Gauge> {
        match self.get_or_insert(family, Some((key, value)), help, || {
            Metric::Gauge(Arc::new(Gauge::new()))
        }) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {family} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, family: &str, help: &str) -> Arc<Histogram> {
        match self.get_or_insert(family, None, help, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {family} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) a histogram series with one label.
    pub fn histogram_with(
        &self,
        family: &str,
        key: &'static str,
        value: &str,
        help: &str,
    ) -> Arc<Histogram> {
        match self.get_or_insert(family, Some((key, value)), help, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {family} already registered with a different type"),
        }
    }

    /// A point-in-time copy of every registered series, in registration
    /// order (families stay contiguous for exporters as long as their
    /// series were registered together).
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().unwrap();
        Snapshot {
            series: entries
                .iter()
                .map(|e| Series {
                    family: e.family.clone(),
                    label: e.label.as_ref().map(|(k, v)| (k.to_string(), v.clone())),
                    help: e.help.clone(),
                    value: match &e.metric {
                        Metric::Counter(c) => Value::Counter(c.get()),
                        Metric::Gauge(g) => Value::Gauge(g.get()),
                        Metric::Histogram(h) => Value::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// The process-wide registry the runtime's instrumentation records into.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// One exported series: family name, optional label, help text, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Metric family name (a valid Prometheus identifier).
    pub family: String,
    /// Optional single `key="value"` label distinguishing this series
    /// inside its family.
    pub label: Option<(String, String)>,
    /// Human-readable help text (one line).
    pub help: String,
    /// The snapshotted value.
    pub value: Value,
}

impl Series {
    /// The full series name, `family` or `family{key="value"}`.
    pub fn name(&self) -> String {
        match &self.label {
            None => self.family.clone(),
            Some((k, v)) => format!("{}{{{k}=\"{v}\"}}", self.family),
        }
    }
}

/// A snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Monotonic total.
    Counter(u64),
    /// Point-in-time value.
    Gauge(i64),
    /// Distribution contents.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every series, in registration order.
    pub series: Vec<Series>,
}

impl Snapshot {
    /// Looks up a series by family and optional label value.
    pub fn get(&self, family: &str, label_value: Option<&str>) -> Option<&Series> {
        self.series.iter().find(|s| {
            s.family == family && s.label.as_ref().map(|(_, v)| v.as_str()) == label_value
        })
    }

    /// The difference `self - earlier` for counters and histograms
    /// (matched by series name); gauges keep their current value.
    /// Series absent from `earlier` pass through unchanged.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            series: self
                .series
                .iter()
                .map(|s| {
                    let prev = earlier
                        .series
                        .iter()
                        .find(|p| p.family == s.family && p.label == s.label);
                    let value = match (&s.value, prev.map(|p| &p.value)) {
                        (Value::Counter(a), Some(Value::Counter(b))) => {
                            Value::Counter(a.saturating_sub(*b))
                        }
                        (Value::Histogram(a), Some(Value::Histogram(b))) => {
                            Value::Histogram(a.delta_since(b))
                        }
                        (v, _) => v.clone(),
                    };
                    Series {
                        family: s.family.clone(),
                        label: s.label.clone(),
                        help: s.help.clone(),
                        value,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_insert() {
        let r = Registry::new();
        let a = r.counter("requests_total", "requests");
        let b = r.counter("requests_total", "requests");
        assert!(Arc::ptr_eq(&a, &b));
        let la = r.counter_with("layer_total", "kind", "relu", "per-kind");
        let lb = r.counter_with("layer_total", "kind", "gelu", "per-kind");
        let lc = r.counter_with("layer_total", "kind", "relu", "per-kind");
        assert!(Arc::ptr_eq(&la, &lc));
        assert!(!Arc::ptr_eq(&la, &lb));
        let ga = r.gauge_with("breaker_state", "model", "mlp", "per-model");
        let gb = r.gauge_with("breaker_state", "model", "dec", "per-model");
        let gc = r.gauge_with("breaker_state", "model", "mlp", "per-model");
        assert!(Arc::ptr_eq(&ga, &gc));
        assert!(!Arc::ptr_eq(&ga, &gb));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("x_total", "x");
        r.gauge("x_total", "x");
    }

    #[test]
    fn snapshot_reflects_and_deltas() {
        let r = Registry::new();
        let c = r.counter("a_total", "a");
        let g = r.gauge("depth", "d");
        let h = r.histogram("lat_ns", "l");
        c.add(5);
        g.set(3);
        h.record(100);
        let s0 = r.snapshot();
        c.add(2);
        h.record(200);
        g.set(9);
        let d = r.snapshot().delta_since(&s0);
        assert_eq!(d.get("a_total", None).unwrap().value, Value::Counter(2));
        assert_eq!(d.get("depth", None).unwrap().value, Value::Gauge(9));
        match &d.get("lat_ns", None).unwrap().value {
            Value::Histogram(hs) => {
                assert_eq!(hs.count(), 1);
                assert_eq!(hs.sum(), 200);
            }
            v => panic!("wrong value {v:?}"),
        }
    }

    #[test]
    fn series_name_renders_label() {
        let r = Registry::new();
        r.counter_with("layer_total", "kind", "packed_linear", "h");
        let s = r.snapshot();
        assert_eq!(s.series[0].name(), "layer_total{kind=\"packed_linear\"}");
    }
}
