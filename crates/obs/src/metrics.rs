//! The three metric primitives: counter, gauge, histogram.
//!
//! All recording operations are single (or a fixed handful of) relaxed
//! atomic read-modify-writes on preallocated storage — no locks, no
//! allocation, no syscalls. Relaxed ordering is deliberate: telemetry
//! only needs eventually-consistent totals, never synchronization, and
//! relaxed `fetch_add` compiles to one uncontended `lock xadd`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter {
            v: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Relaxed);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Relaxed)
    }
}

/// A point-in-time signed value (queue depth, a 0/1 flag, …).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            v: AtomicI64::new(0),
        }
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.v.fetch_add(delta, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.v.load(Relaxed)
    }
}

/// Bucket count of the fixed histogram layout: values 0–3 get exact
/// buckets, every power-of-two octave above that is split into 4 linear
/// sub-buckets (top two mantissa bits), covering the full `u64` range.
pub const HIST_BUCKETS: usize = 4 + 62 * 4;

/// Bucket index for a value — a handful of ALU ops, no branches beyond
/// the small-value guard.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // >= 2
    let sub = ((v >> (octave - 2)) & 3) as usize;
    4 + (octave - 2) * 4 + sub
}

/// Inclusive `[lower, upper]` value range of a bucket index.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 4 {
        return (idx as u64, idx as u64);
    }
    let octave = (idx - 4) / 4 + 2;
    let sub = ((idx - 4) % 4) as u64;
    let step = 1u64 << (octave - 2);
    let lower = (1u64 << octave) + sub * step;
    (lower, lower.wrapping_add(step - 1))
}

/// A fixed-size log2-bucketed distribution.
///
/// Recording is two relaxed `fetch_add`s (bucket + running sum) on
/// preallocated slots; quantiles are derived at snapshot time by
/// cumulative walk with linear interpolation inside the landing bucket,
/// so p50/p90/p99/p999 carry sub-octave (±12.5%) resolution without the
/// hot path ever sorting or allocating.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Total observations (sums the bucket array; read-path only).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// A consistent-enough point-in-time copy for export and quantile
    /// math (buckets are read relaxed; concurrent records may straddle
    /// the read, which telemetry tolerates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Relaxed),
        }
    }
}

/// Point-in-time histogram contents; all derived statistics live here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated inside
    /// the landing bucket. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(idx);
                let into = (rank - seen) as f64 / c as f64;
                return lo as f64 + (hi - lo) as f64 * into;
            }
            seen += c;
        }
        let (_, hi) = bucket_bounds(HIST_BUCKETS - 1);
        hi as f64
    }

    /// Non-empty buckets as `(lower, upper_inclusive, count)` triples in
    /// ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Per-bucket difference `self - earlier` (both must come from the
    /// same histogram; counts and sum saturate at zero for safety).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts = self
            .counts
            .iter()
            .zip(earlier.counts.iter().chain(std::iter::repeat(&0)))
            .map(|(&a, &b)| a.saturating_sub(b))
            .collect();
        HistogramSnapshot {
            counts,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_index_is_monotonic_and_bounds_tile_u64() {
        let mut prev_idx = 0;
        let mut probe: Vec<u64> = (0..130).collect();
        for o in 7..64 {
            probe.push((1u64 << o) - 1);
            probe.push(1u64 << o);
            probe.push((1u64 << o) + (1u64 << (o - 2)));
        }
        probe.push(u64::MAX);
        probe.sort_unstable();
        for &v in &probe {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index not monotonic at {v}");
            prev_idx = idx;
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} outside [{lo}, {hi}] (idx {idx})");
        }
        // Buckets tile without gaps or overlap.
        for idx in 0..HIST_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert_eq!(hi.wrapping_add(1), lo_next, "gap after bucket {idx}");
        }
        assert_eq!(bucket_bounds(HIST_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn quantiles_interpolate_within_octave_resolution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500500);
        // True p50 = 500, p99 = 990, p999 = 1000; sub-buckets bound the
        // estimate to ±12.5% of the landing octave.
        assert!(
            (s.quantile(0.5) - 500.0).abs() < 75.0,
            "{}",
            s.quantile(0.5)
        );
        assert!((s.quantile(0.99) - 990.0).abs() < 130.0);
        assert!(s.quantile(0.999) <= 1023.0);
        assert!(s.quantile(0.0) >= 1.0);
        // Quantiles are monotone in q.
        assert!(s.quantile(0.5) <= s.quantile(0.9));
        assert!(s.quantile(0.9) <= s.quantile(0.99));
        assert!(s.quantile(0.99) <= s.quantile(0.999));
    }

    #[test]
    fn exact_buckets_give_exact_small_quantiles() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(2);
        }
        assert_eq!(h.snapshot().quantile(0.5), 2.0);
        assert_eq!(h.snapshot().mean(), 2.0);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(100);
        h.record(100);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 200);
        assert_eq!(d.buckets().count(), 1);
    }
}
