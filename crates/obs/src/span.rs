//! Fixed-capacity per-thread span ring buffers.
//!
//! A span is `(name, thread, start, duration)` on the process timeline
//! ([`crate::now_ns`]). Recording one is a thread-local slot lookup
//! plus three relaxed atomic stores and one relaxed `fetch_add` into
//! **static** preallocated rings — no locks, no allocation, ever. The
//! rings overwrite their oldest records, so memory is bounded by
//! construction: [`SPAN_THREAD_SLOTS`] threads × [`SPAN_RING_CAP`]
//! records.
//!
//! Names are interned once through [`register_span`] (a mutex, meant
//! for startup) into small integer ids; the hot path only ever touches
//! the id. Reading the rings back ([`snapshot_spans`]) is lossy by
//! design: a record being overwritten concurrently can tear between
//! its fields. That trades perfect fidelity for a hot path with zero
//! synchronization, which is the right trade for trace telemetry —
//! the chrome-trace exporter drops records whose id slot reads empty.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;

/// Maximum number of distinct recording threads; later threads drop
/// their spans (counted by [`dropped_spans`]).
pub const SPAN_THREAD_SLOTS: usize = 32;

/// Span records retained per thread before the ring wraps.
pub const SPAN_RING_CAP: usize = 1024;

/// An interned span name (see [`register_span`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

struct Ring {
    head: AtomicUsize,
    // id is the interned name + 1; 0 marks a never-written slot.
    id: [AtomicU32; SPAN_RING_CAP],
    start: [AtomicU64; SPAN_RING_CAP],
    dur: [AtomicU64; SPAN_RING_CAP],
}

#[allow(clippy::declare_interior_mutable_const)] // used only as an array initializer
const EMPTY_RING: Ring = Ring {
    head: AtomicUsize::new(0),
    id: [const { AtomicU32::new(0) }; SPAN_RING_CAP],
    start: [const { AtomicU64::new(0) }; SPAN_RING_CAP],
    dur: [const { AtomicU64::new(0) }; SPAN_RING_CAP],
};

static RINGS: [Ring; SPAN_THREAD_SLOTS] = [EMPTY_RING; SPAN_THREAD_SLOTS];
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Interns a span name, returning the id the hot path records with.
/// Takes a mutex and may allocate — call it at startup and keep the id.
/// Registering the same name again returns the same id.
pub fn register_span(name: &'static str) -> SpanId {
    let mut names = NAMES.lock().unwrap();
    if let Some(pos) = names.iter().position(|&n| n == name) {
        return SpanId(pos as u32);
    }
    names.push(name);
    SpanId((names.len() - 1) as u32)
}

/// Records one span. Allocation-free and lock-free; spans from threads
/// beyond [`SPAN_THREAD_SLOTS`] are dropped (and counted) rather than
/// contended over.
#[inline]
pub fn record_span(id: SpanId, start_ns: u64, dur_ns: u64) {
    let slot = SLOT.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT_SLOT.fetch_add(1, Relaxed);
            s.set(v);
        }
        v
    });
    if slot >= SPAN_THREAD_SLOTS {
        DROPPED.fetch_add(1, Relaxed);
        return;
    }
    let ring = &RINGS[slot];
    let i = ring.head.fetch_add(1, Relaxed) % SPAN_RING_CAP;
    ring.start[i].store(start_ns, Relaxed);
    ring.dur[i].store(dur_ns, Relaxed);
    ring.id[i].store(id.0 + 1, Relaxed);
}

/// Spans dropped because more than [`SPAN_THREAD_SLOTS`] threads
/// recorded.
pub fn dropped_spans() -> u64 {
    DROPPED.load(Relaxed)
}

/// One span read back from the rings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The interned name the span was recorded under.
    pub name: &'static str,
    /// Ring slot of the recording thread (stable per thread).
    pub tid: u32,
    /// Start, nanoseconds on the [`crate::now_ns`] timeline.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Reads every retained span out of the rings, sorted by start time.
/// This is the cold export path: it locks the name table and allocates
/// the result vector.
pub fn snapshot_spans() -> Vec<SpanEvent> {
    let names = NAMES.lock().unwrap().clone();
    let mut out = Vec::new();
    for (tid, ring) in RINGS.iter().enumerate() {
        let filled = ring.head.load(Relaxed).min(SPAN_RING_CAP);
        for i in 0..filled {
            let id = ring.id[i].load(Relaxed);
            if id == 0 {
                continue; // never written (or torn mid-write)
            }
            let Some(&name) = names.get((id - 1) as usize) else {
                continue;
            };
            out.push(SpanEvent {
                name,
                tid: tid as u32,
                start_ns: ring.start[i].load(Relaxed),
                dur_ns: ring.dur[i].load(Relaxed),
            });
        }
    }
    out.sort_by_key(|e| e.start_ns);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_spans_round_trip() {
        let a = register_span("test.alpha");
        let b = register_span("test.alpha");
        assert_eq!(a, b);
        let c = register_span("test.beta");
        assert_ne!(a, c);

        record_span(a, 100, 10);
        record_span(c, 50, 5);
        let spans = snapshot_spans();
        let alpha: Vec<_> = spans.iter().filter(|s| s.name == "test.alpha").collect();
        let beta: Vec<_> = spans.iter().filter(|s| s.name == "test.beta").collect();
        assert!(!alpha.is_empty() && !beta.is_empty());
        assert!(alpha.iter().any(|s| s.start_ns == 100 && s.dur_ns == 10));
        assert!(beta.iter().any(|s| s.start_ns == 50 && s.dur_ns == 5));
        // Sorted by start.
        for w in spans.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn ring_wraps_at_capacity_without_growing() {
        let id = register_span("test.wrap");
        for i in 0..3 * SPAN_RING_CAP as u64 {
            record_span(id, i, 1);
        }
        let mine: Vec<_> = snapshot_spans()
            .into_iter()
            .filter(|s| s.name == "test.wrap")
            .collect();
        assert!(mine.len() <= SPAN_RING_CAP);
        assert!(!mine.is_empty());
    }
}
