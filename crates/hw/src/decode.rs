//! Bit-accurate type decoders for the TypeFusion PE (paper Sec. V).
//!
//! The int-based PE consumes every ANT primitive through one unified
//! representation: a signed *base integer* and an even *exponent*, with
//! `value = base << exp` (paper Sec. V-B, Table III). This module implements
//! the decoders exactly as drawn:
//!
//! * [`decode_flint`] — Fig. 6: LZD + one left shift (+ two's complement for
//!   the sign, Sec. V-C),
//! * [`decode_int`] — pass-through with zero exponent,
//! * [`decode_pot`] — base ±1, exponent straight from the code,
//! * [`FloatFields`]/[`decode_flint_float`] — the float-based decoder of
//!   Fig. 5 for completeness (ANT's shipped configuration is int-based,
//!   Sec. VII-C).
//!
//! All decoders are verified against `ant-core`'s arithmetic-level codecs.

use crate::lzd::lzd;
use ant_core::flint::Flint;
use ant_core::QuantError;

/// The unified operand representation of the int-based TypeFusion PE:
/// `value = base << exp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decoded {
    /// Signed base integer (two's complement in hardware).
    pub base: i32,
    /// Left-shift exponent; even for flint (Eq. 6), arbitrary for PoT.
    pub exp: u32,
}

impl Decoded {
    /// The represented integer value.
    pub fn value(&self) -> i64 {
        (self.base as i64) << self.exp
    }
}

/// Wire format of an operand entering a decoder: the primitive type tag the
/// instruction carries (paper Sec. VI-B: a type extension on the MAC
/// instruction) plus signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireType {
    /// Two's-complement int.
    Int {
        /// Whether negative codes exist.
        signed: bool,
    },
    /// Power-of-two; signed variants carry a sign bit above the magnitude.
    Pot {
        /// Whether a sign bit is present.
        signed: bool,
    },
    /// flint; signed variants carry a sign bit above the magnitude.
    Flint {
        /// Whether a sign bit is present.
        signed: bool,
    },
}

/// Decodes a `bits`-wide flint code (paper Fig. 6 and Eq. (5)–(6); signed
/// handling per Sec. V-C: MSB is the sign, the remaining `bits − 1` bits are
/// an unsigned flint magnitude).
///
/// # Errors
///
/// Returns [`QuantError::UnsupportedBitWidth`] when the magnitude width is
/// outside the supported flint range.
///
/// # Panics
///
/// Panics if `code` does not fit in `bits` bits.
pub fn decode_flint(code: u32, bits: u32, signed: bool) -> Result<Decoded, QuantError> {
    assert!(code < (1u32 << bits), "code {code:#b} exceeds {bits} bits");
    let mag_bits = if signed { bits - 1 } else { bits };
    // Constructing the codec validates the width.
    Flint::new(mag_bits)?;
    let (neg, mag_code) = if signed {
        ((code >> mag_bits) & 1 == 1, code & ((1 << mag_bits) - 1))
    } else {
        (false, code)
    };
    let d = decode_flint_magnitude(mag_code, mag_bits);
    Ok(Decoded {
        base: if neg { -d.base } else { d.base },
        exp: d.exp,
    })
}

/// The unsigned flint datapath of Fig. 6: a leading-zero detector over the
/// low field, a 1-bit left shift and a mux.
fn decode_flint_magnitude(code: u32, bits: u32) -> Decoded {
    let low_mask = (1u32 << (bits - 1)) - 1;
    let low = code & low_mask;
    let msb = code >> (bits - 1) & 1;
    if msb == 0 {
        // Eq. (5)/(6) top row: base = low bits, exp = 0.
        Decoded {
            base: low as i32,
            exp: 0,
        }
    } else {
        let lz = lzd(low, bits - 1);
        if !lz.valid {
            // All-zero low field: the max-value code 1000…0.
            Decoded {
                base: 1,
                exp: 2 * (bits - 1),
            }
        } else {
            Decoded {
                base: (low << 1) as i32,
                exp: 2 * lz.count,
            }
        }
    }
}

/// Decodes a two's-complement (or unsigned) int code to the unified
/// representation: the exponent is zero (paper Sec. V-B).
///
/// # Panics
///
/// Panics if `code` does not fit in `bits` bits.
pub fn decode_int(code: u32, bits: u32, signed: bool) -> Decoded {
    assert!(code < (1u32 << bits), "code {code:#b} exceeds {bits} bits");
    let base = if signed {
        // Sign-extend from `bits`.
        let shift = 32 - bits;
        ((code << shift) as i32) >> shift
    } else {
        code as i32
    };
    Decoded { base, exp: 0 }
}

/// Decodes a PoT code: base ±1 and the exponent taken from the code
/// (paper Sec. V-B: "the PoT type has the base integer of one and the
/// exponent value from its binary"). Code 0 (magnitude) is the value 0.
///
/// # Panics
///
/// Panics if `code` does not fit in `bits` bits.
pub fn decode_pot(code: u32, bits: u32, signed: bool) -> Decoded {
    assert!(code < (1u32 << bits), "code {code:#b} exceeds {bits} bits");
    let mag_bits = if signed { bits - 1 } else { bits };
    let (neg, mag) = if signed {
        ((code >> mag_bits) & 1 == 1, code & ((1 << mag_bits) - 1))
    } else {
        (false, code)
    };
    if mag == 0 {
        return Decoded { base: 0, exp: 0 };
    }
    Decoded {
        base: if neg { -1 } else { 1 },
        exp: mag - 1,
    }
}

/// Dispatches on the wire type tag (the decoder mux at the array boundary,
/// Fig. 9).
///
/// # Errors
///
/// Propagates [`decode_flint`]'s width validation.
///
/// # Panics
///
/// Panics if `code` does not fit in `bits` bits.
pub fn decode(code: u32, bits: u32, ty: WireType) -> Result<Decoded, QuantError> {
    match ty {
        WireType::Int { signed } => Ok(decode_int(code, bits, signed)),
        WireType::Pot { signed } => Ok(decode_pot(code, bits, signed)),
        WireType::Flint { signed } => decode_flint(code, bits, signed),
    }
}

/// The float-based decoder's output fields (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFields {
    /// Sign flag.
    pub negative: bool,
    /// Biased exponent (interval index; the bias is −1).
    pub exp: u32,
    /// Mantissa left-aligned into `mag_bits − 1` fraction bits.
    pub mantissa: u32,
}

/// The float-based flint decoder of Fig. 5 (kept for the float-based PE
/// variant; ANT ships the int-based PE, Sec. VII-C).
///
/// # Errors
///
/// Returns [`QuantError::UnsupportedBitWidth`] for invalid widths.
///
/// # Panics
///
/// Panics if `code` does not fit in `bits` bits.
pub fn decode_flint_float(code: u32, bits: u32, signed: bool) -> Result<FloatFields, QuantError> {
    assert!(code < (1u32 << bits), "code {code:#b} exceeds {bits} bits");
    let mag_bits = if signed { bits - 1 } else { bits };
    let flint = Flint::new(mag_bits)?;
    let (neg, mag_code) = if signed {
        ((code >> mag_bits) & 1 == 1, code & ((1 << mag_bits) - 1))
    } else {
        (false, code)
    };
    let fd = flint.decode_float(mag_code);
    Ok(FloatFields {
        negative: neg,
        exp: fd.exp,
        mantissa: fd.mantissa,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flint_decoder_matches_core_codec_for_all_widths() {
        for bits in 3..=8u32 {
            let flint = Flint::new(bits).unwrap();
            for code in 0..(1u32 << bits) {
                let d = decode_flint(code, bits, false).unwrap();
                assert_eq!(
                    d.value() as u64,
                    flint.decode(code),
                    "b={bits} code={code:b}"
                );
            }
        }
    }

    #[test]
    fn signed_flint_decoder_covers_table_iii_with_sign() {
        // 4-bit signed: sign + 3-bit magnitude. In code order the 3-bit
        // flint decodes to 0,1,2,3 (int region) then 16,8,4,6 (Eq. 5/6).
        let mags = [0i64, 1, 2, 3, 16, 8, 4, 6];
        for (code, &m) in mags.iter().enumerate() {
            let pos = decode_flint(code as u32, 4, true).unwrap();
            assert_eq!(pos.value(), m);
            let neg = decode_flint(code as u32 | 0b1000, 4, true).unwrap();
            assert_eq!(neg.value(), -m);
        }
    }

    #[test]
    fn fig6_worked_rows() {
        // Table III: 101x → base 4/6 exp 2; 1001 → base 2 exp 4; 1000 → 1,6.
        let d = decode_flint(0b1010, 4, false).unwrap();
        assert_eq!((d.base, d.exp), (4, 2));
        let d = decode_flint(0b1011, 4, false).unwrap();
        assert_eq!((d.base, d.exp), (6, 2));
        let d = decode_flint(0b1001, 4, false).unwrap();
        assert_eq!((d.base, d.exp), (2, 4));
        let d = decode_flint(0b1000, 4, false).unwrap();
        assert_eq!((d.base, d.exp), (1, 6));
    }

    #[test]
    fn int_decoder_signed_and_unsigned() {
        assert_eq!(decode_int(0b0111, 4, true).base, 7);
        assert_eq!(decode_int(0b1000, 4, true).base, -8);
        assert_eq!(decode_int(0b1111, 4, true).base, -1);
        assert_eq!(decode_int(0b1111, 4, false).base, 15);
        assert_eq!(decode_int(0b1111, 4, false).exp, 0);
    }

    #[test]
    fn pot_decoder_values() {
        // Unsigned 4-bit PoT: 0, 1, 2, 4, ..., 2^14.
        assert_eq!(decode_pot(0, 4, false).value(), 0);
        assert_eq!(decode_pot(1, 4, false).value(), 1);
        assert_eq!(decode_pot(5, 4, false).value(), 16);
        assert_eq!(decode_pot(15, 4, false).value(), 1 << 14);
        // Signed 4-bit: sign + 3-bit magnitude.
        assert_eq!(decode_pot(0b0111, 4, true).value(), 64);
        assert_eq!(decode_pot(0b1111, 4, true).value(), -64);
        assert_eq!(decode_pot(0b1000, 4, true).value(), 0);
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        for code in 0..16u32 {
            assert_eq!(
                decode(code, 4, WireType::Int { signed: true }).unwrap(),
                decode_int(code, 4, true)
            );
            assert_eq!(
                decode(code, 4, WireType::Pot { signed: false }).unwrap(),
                decode_pot(code, 4, false)
            );
            assert_eq!(
                decode(code, 4, WireType::Flint { signed: true }).unwrap(),
                decode_flint(code, 4, true).unwrap()
            );
        }
    }

    #[test]
    fn float_decoder_matches_core() {
        for bits in 3..=8u32 {
            let flint = Flint::new(bits).unwrap();
            for code in 0..(1u32 << bits) {
                let hw = decode_flint_float(code, bits, false).unwrap();
                let sw = flint.decode_float(code);
                assert_eq!((hw.exp, hw.mantissa), (sw.exp, sw.mantissa));
            }
        }
    }

    #[test]
    fn float_and_int_decoders_agree_on_value() {
        let flint = Flint::new(4).unwrap();
        for code in 0..16u32 {
            let i = decode_flint(code, 4, false).unwrap().value() as f64;
            let f = decode_flint_float(code, 4, false).unwrap();
            let fv = flint.float_decode_value(ant_core::flint::FloatDecode {
                exp: f.exp,
                mantissa: f.mantissa,
            });
            assert_eq!(i, fv, "code {code:04b}");
        }
    }

    #[test]
    fn signed_flint_exp_untouched_by_sign() {
        // Sec. V-C: sign handling must not affect the critical (LZD) path;
        // functionally, |decode(−x)| == decode(x).
        for code in 0..8u32 {
            let pos = decode_flint(code, 4, true).unwrap();
            let neg = decode_flint(code | 0b1000, 4, true).unwrap();
            assert_eq!(pos.exp, neg.exp);
            assert_eq!(pos.base, -neg.base);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_overwide_code() {
        let _ = decode_int(16, 4, true);
    }
}
