//! Cycle-stepped output-stationary systolic array of TypeFusion PEs
//! (paper Fig. 9 and Sec. VI-A).
//!
//! The array is the functional reference for the accelerator: operands are
//! decoded once at the boundary (the 2n decoders of Fig. 9), flow through
//! PE registers with one-cycle hops, and every PE performs the Fig. 7 MAC
//! into its stationary accumulator. [`SystolicArray::gemm`] tiles an
//! arbitrary GEMM over the array and returns bit-exact integer results plus
//! cycle statistics, which `ant-sim`'s analytical model is validated
//! against.

use crate::decode::{decode, Decoded, WireType};
use crate::mac::{multiply, Accumulator};
use ant_core::QuantError;

/// A dense matrix of decoded operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Decoded>,
}

impl DecodedMatrix {
    /// Builds a matrix from row-major decoded operands.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<Decoded>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length");
        DecodedMatrix { rows, cols, data }
    }

    /// Decodes a row-major code matrix at the array boundary (Fig. 9's
    /// decoder column/row). One decoder invocation per element.
    ///
    /// # Errors
    ///
    /// Propagates decoder width validation.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != rows * cols`.
    pub fn from_codes(
        rows: usize,
        cols: usize,
        codes: &[u32],
        bits: u32,
        ty: WireType,
    ) -> Result<Self, QuantError> {
        assert_eq!(codes.len(), rows * cols, "matrix data length");
        let data = codes
            .iter()
            .map(|&c| decode(c, bits, ty))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DecodedMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Decoded {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Integer value matrix (for reference checks).
    pub fn values(&self) -> Vec<i64> {
        self.data.iter().map(|d| d.value()).collect()
    }
}

/// Execution statistics of a systolic GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SystolicStats {
    /// Total cycles stepped, including pipeline fill/drain.
    pub cycles: u64,
    /// MAC operations actually performed (zero-operand hops still count —
    /// the array has no zero skipping, matching the paper's dense design).
    pub macs: u64,
    /// Output tiles processed.
    pub tiles: u64,
    /// Whether any PE accumulator overflowed its register width.
    pub overflowed: bool,
}

/// An `n × n` output-stationary systolic array of int-based TypeFusion PEs.
#[derive(Debug, Clone)]
pub struct SystolicArray {
    size: usize,
    acc_width: u32,
}

impl SystolicArray {
    /// Creates an array of `size × size` PEs with `acc_width`-bit
    /// accumulators (the paper's 4-bit PE uses 16; Sec. VI-A's tensor-core
    /// integration uses 32).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `acc_width` is outside `2..=64`.
    pub fn new(size: usize, acc_width: u32) -> Self {
        assert!(size > 0, "array size must be positive");
        assert!(
            (2..=64).contains(&acc_width),
            "accumulator width {acc_width}"
        );
        SystolicArray { size, acc_width }
    }

    /// Array dimension.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Computes `a (M×K) × b (K×N)` on the array, tiling outputs into
    /// `size × size` blocks. Returns the row-major `M×N` integer results
    /// and cycle statistics from the cycle-stepped execution.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn gemm(&self, a: &DecodedMatrix, b: &DecodedMatrix) -> (Vec<i64>, SystolicStats) {
        assert_eq!(a.cols(), b.rows(), "inner dimensions disagree");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = vec![0i64; m * n];
        let mut stats = SystolicStats::default();
        let mut tile = Tile::new(self.size, self.acc_width);
        for tr in (0..m).step_by(self.size) {
            for tc in (0..n).step_by(self.size) {
                let rows = self.size.min(m - tr);
                let cols = self.size.min(n - tc);
                tile.reset();
                tile.run(a, b, tr, tc, rows, cols, k, &mut stats);
                for i in 0..rows {
                    for j in 0..cols {
                        out[(tr + i) * n + (tc + j)] = tile.acc_value(i, j);
                    }
                }
                stats.tiles += 1;
            }
        }
        (out, stats)
    }
}

/// One output tile's worth of PE state, cycle-stepped.
#[derive(Debug, Clone)]
struct Tile {
    size: usize,
    acc: Vec<Accumulator>,
    a_reg: Vec<Option<Decoded>>,
    b_reg: Vec<Option<Decoded>>,
}

impl Tile {
    fn new(size: usize, acc_width: u32) -> Self {
        Tile {
            size,
            acc: vec![Accumulator::new(acc_width); size * size],
            a_reg: vec![None; size * size],
            b_reg: vec![None; size * size],
        }
    }

    fn reset(&mut self) {
        for a in &mut self.acc {
            *a = Accumulator::new(a.width());
        }
        self.a_reg.fill(None);
        self.b_reg.fill(None);
    }

    fn acc_value(&self, i: usize, j: usize) -> i64 {
        self.acc[i * self.size + j].value()
    }

    /// Cycle-steps one output tile: row `i` of the A block enters from the
    /// left skewed by `i` cycles; column `j` of the B block enters from the
    /// top skewed by `j` cycles. Runs until the deepest PE has consumed all
    /// `k` products.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        a: &DecodedMatrix,
        b: &DecodedMatrix,
        tr: usize,
        tc: usize,
        rows: usize,
        cols: usize,
        k: usize,
        stats: &mut SystolicStats,
    ) {
        let n = self.size;
        // Last operand enters row rows-1 at cycle (k-1)+(rows-1); it then
        // travels cols-1 hops to the right edge.
        let total_cycles = k + rows + cols - 2;
        for cycle in 0..total_cycles {
            // Shift right/down from the far corner so each register moves
            // exactly one hop per cycle.
            for i in (0..rows).rev() {
                for j in (0..cols).rev() {
                    let idx = i * n + j;
                    let a_in = if j == 0 {
                        // Left boundary: element a[tr+i][cycle - i] if due.
                        cycle
                            .checked_sub(i)
                            .filter(|&t| t < k)
                            .map(|t| a.get(tr + i, t))
                    } else {
                        self.a_reg[i * n + (j - 1)]
                    };
                    let b_in = if i == 0 {
                        cycle
                            .checked_sub(j)
                            .filter(|&t| t < k)
                            .map(|t| b.get(t, tc + j))
                    } else {
                        self.b_reg[(i - 1) * n + j]
                    };
                    if let (Some(av), Some(bv)) = (a_in, b_in) {
                        self.acc[idx].add(multiply(av, bv));
                        stats.macs += 1;
                        if self.acc[idx].overflowed() {
                            stats.overflowed = true;
                        }
                    }
                    self.a_reg[idx] = a_in;
                    self.b_reg[idx] = b_in;
                }
            }
            stats.cycles += 1;
        }
    }
}

/// Reference integer GEMM over decoded matrices, for validating the array.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn reference_gemm(a: &DecodedMatrix, b: &DecodedMatrix) -> Vec<i64> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions disagree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0i64; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a.get(i, p).value();
            for j in 0..n {
                out[i * n + j] += av * b.get(p, j).value();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_matrix(rows: usize, cols: usize, seed: u32, bits: u32) -> Vec<u32> {
        // Small deterministic LCG over code space.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 16) & ((1 << bits) - 1)
            })
            .collect()
    }

    #[test]
    fn matches_reference_for_flint_x_flint() {
        let a = DecodedMatrix::from_codes(
            6,
            9,
            &codes_matrix(6, 9, 1, 4),
            4,
            WireType::Flint { signed: true },
        )
        .unwrap();
        let b = DecodedMatrix::from_codes(
            9,
            5,
            &codes_matrix(9, 5, 2, 4),
            4,
            WireType::Flint { signed: true },
        )
        .unwrap();
        let array = SystolicArray::new(4, 32);
        let (out, stats) = array.gemm(&a, &b);
        assert_eq!(out, reference_gemm(&a, &b));
        assert!(!stats.overflowed);
        assert_eq!(stats.macs, 6 * 9 * 5);
    }

    #[test]
    fn matches_reference_for_mixed_types() {
        // Input activations in unsigned flint, weights in signed PoT — the
        // TypeFusion case (Sec. V).
        let a = DecodedMatrix::from_codes(
            5,
            7,
            &codes_matrix(5, 7, 3, 4),
            4,
            WireType::Flint { signed: false },
        )
        .unwrap();
        let b = DecodedMatrix::from_codes(
            7,
            6,
            &codes_matrix(7, 6, 4, 4),
            4,
            WireType::Pot { signed: true },
        )
        .unwrap();
        let array = SystolicArray::new(3, 64);
        let (out, _) = array.gemm(&a, &b);
        assert_eq!(out, reference_gemm(&a, &b));
    }

    #[test]
    fn matches_reference_for_int_x_int() {
        let a = DecodedMatrix::from_codes(
            4,
            4,
            &codes_matrix(4, 4, 5, 4),
            4,
            WireType::Int { signed: true },
        )
        .unwrap();
        let b = DecodedMatrix::from_codes(
            4,
            4,
            &codes_matrix(4, 4, 6, 4),
            4,
            WireType::Int { signed: true },
        )
        .unwrap();
        let array = SystolicArray::new(4, 32);
        let (out, _) = array.gemm(&a, &b);
        assert_eq!(out, reference_gemm(&a, &b));
    }

    #[test]
    fn single_tile_cycle_count_formula() {
        // One n×n tile over depth k costs k + 2(n−1) cycles.
        let n = 4;
        let k = 10;
        let a = DecodedMatrix::from_codes(
            n,
            k,
            &codes_matrix(n, k, 7, 4),
            4,
            WireType::Int { signed: true },
        )
        .unwrap();
        let b = DecodedMatrix::from_codes(
            k,
            n,
            &codes_matrix(k, n, 8, 4),
            4,
            WireType::Int { signed: true },
        )
        .unwrap();
        let array = SystolicArray::new(n, 32);
        let (_, stats) = array.gemm(&a, &b);
        assert_eq!(stats.tiles, 1);
        assert_eq!(stats.cycles, (k + 2 * (n - 1)) as u64);
    }

    #[test]
    fn tiling_covers_ragged_edges() {
        // 5×5 output on a 4×4 array → 4 tiles with ragged edges.
        let a = DecodedMatrix::from_codes(
            5,
            3,
            &codes_matrix(5, 3, 9, 4),
            4,
            WireType::Flint { signed: true },
        )
        .unwrap();
        let b = DecodedMatrix::from_codes(
            3,
            5,
            &codes_matrix(3, 5, 10, 4),
            4,
            WireType::Flint { signed: true },
        )
        .unwrap();
        let array = SystolicArray::new(4, 32);
        let (out, stats) = array.gemm(&a, &b);
        assert_eq!(out, reference_gemm(&a, &b));
        assert_eq!(stats.tiles, 4);
    }

    #[test]
    fn overflow_detected_with_narrow_accumulator() {
        // Max flint4 unsigned value is 64; 64*64 = 4096; a deep enough dot
        // product overflows a 16-bit register.
        let k = 9; // 9 * 4096 = 36864 > 32767
        let codes = vec![0b1000u32; k]; // all 64
        let a =
            DecodedMatrix::from_codes(1, k, &codes, 4, WireType::Flint { signed: false }).unwrap();
        let b =
            DecodedMatrix::from_codes(k, 1, &codes, 4, WireType::Flint { signed: false }).unwrap();
        let array = SystolicArray::new(2, 16);
        let (_, stats) = array.gemm(&a, &b);
        assert!(stats.overflowed);
        let wide = SystolicArray::new(2, 32);
        let (out, stats32) = wide.gemm(&a, &b);
        assert!(!stats32.overflowed);
        assert_eq!(out[0], 9 * 4096);
    }

    #[test]
    fn decoded_matrix_validation() {
        let d = DecodedMatrix::from_codes(2, 2, &[0, 1, 2, 3], 4, WireType::Int { signed: false })
            .unwrap();
        assert_eq!(d.values(), vec![0, 1, 2, 3]);
        assert_eq!(d.get(1, 1).value(), 3);
    }

    #[test]
    #[should_panic(expected = "matrix data length")]
    fn decoded_matrix_rejects_bad_length() {
        let _ = DecodedMatrix::new(2, 2, vec![Decoded { base: 0, exp: 0 }; 3]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn gemm_rejects_dim_mismatch() {
        let a = DecodedMatrix::new(2, 3, vec![Decoded { base: 0, exp: 0 }; 6]);
        let b = DecodedMatrix::new(2, 3, vec![Decoded { base: 0, exp: 0 }; 6]);
        let _ = SystolicArray::new(2, 32).gemm(&a, &b);
    }
}
