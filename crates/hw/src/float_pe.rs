//! The float-based TypeFusion PE (paper Sec. V-A).
//!
//! The paper's alternative PE builds on a float multiplier: the flint
//! decoder of Fig. 5 produces `(sign, exponent, mantissa)` fields, the
//! multiplier multiplies significands and adds exponents. ANT ships the
//! int-based PE instead because this unit costs ~3× the area
//! (Sec. VII-C); this module exists to model that datapath and prove the
//! two PEs compute identical results on every operand pair (the
//! equivalence the architecture argument rests on).
//!
//! All arithmetic is exact-integer: flint values are integers, so the
//! float datapath's `significand × significand, exponent + exponent`
//! reduces to shifts that never drop set bits.

use crate::decode::{decode_flint_float, FloatFields};
use ant_core::QuantError;

/// A float-based PE operand: Fig. 5's decoder output plus the field width
/// it was decoded at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloatOperand {
    fields: FloatFields,
    mag_bits: u32,
}

impl FloatOperand {
    /// Decodes a flint code through the float-based decoder (Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates decoder width validation.
    ///
    /// # Panics
    ///
    /// Panics if `code` does not fit in `bits` bits.
    pub fn decode(code: u32, bits: u32, signed: bool) -> Result<Self, QuantError> {
        let fields = decode_flint_float(code, bits, signed)?;
        let mag_bits = if signed { bits - 1 } else { bits };
        Ok(FloatOperand { fields, mag_bits })
    }

    /// The decoded fields.
    pub fn fields(&self) -> FloatFields {
        self.fields
    }

    /// The represented integer value, via the float interpretation:
    /// `±2^(exp−1) · (1 + mantissa / 2^(bits−1))`.
    pub fn value(&self) -> i64 {
        let (sig, shift) = self.significand();
        let mag = shift_exact(sig, shift);
        if self.fields.negative {
            -mag
        } else {
            mag
        }
    }

    /// Significand with its binary point position: value = sig · 2^shift.
    /// Zero is encoded as `(0, 0)`.
    fn significand(&self) -> (i64, i32) {
        if self.fields.exp == 0 && self.fields.mantissa == 0 {
            return (0, 0);
        }
        let frac_bits = self.mag_bits - 1;
        // sig = 1.mantissa as an integer of (frac_bits + 1) bits.
        let sig = ((1u32 << frac_bits) | self.fields.mantissa) as i64;
        // value = sig · 2^(exp − 1 − frac_bits)  (bias −1).
        (sig, self.fields.exp as i32 - 1 - frac_bits as i32)
    }
}

/// Exact shift by a possibly negative amount.
///
/// # Panics
///
/// Panics (debug) if a right shift would drop set bits — which cannot
/// happen for valid flint operands, where low exponents imply zero
/// mantissa tails.
fn shift_exact(v: i64, shift: i32) -> i64 {
    if shift >= 0 {
        v << shift
    } else {
        debug_assert_eq!(v & ((1 << (-shift)) - 1), 0, "inexact float shift");
        v >> (-shift)
    }
}

/// The float-based multiplier: significands multiply, exponents add —
/// exactly the Fig. 5 PE's datapath, evaluated exactly.
pub fn float_multiply(a: FloatOperand, b: FloatOperand) -> i64 {
    let (sa, ea) = a.significand();
    let (sb, eb) = b.significand();
    if sa == 0 || sb == 0 {
        return 0;
    }
    let mag = shift_exact(sa * sb, ea + eb);
    if a.fields.negative != b.fields.negative {
        -mag
    } else {
        mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_flint;

    #[test]
    fn float_operand_value_matches_int_decoder() {
        for bits in 3..=8u32 {
            for code in 0..(1u32 << bits) {
                let f = FloatOperand::decode(code, bits, false).unwrap();
                let i = decode_flint(code, bits, false).unwrap();
                assert_eq!(f.value(), i.value(), "b={bits} code={code:b}");
            }
        }
    }

    #[test]
    fn signed_float_operand_matches_int_decoder() {
        for code in 0..16u32 {
            let f = FloatOperand::decode(code, 4, true).unwrap();
            let i = decode_flint(code, 4, true).unwrap();
            assert_eq!(f.value(), i.value(), "code={code:04b}");
        }
    }

    #[test]
    fn float_pe_equals_int_pe_on_all_pairs() {
        // The architectural claim: both PE variants compute the same MAC
        // results, so the choice is purely an area/energy trade
        // (Sec. VII-C).
        use crate::mac::multiply;
        for ca in 0..16u32 {
            for cb in 0..16u32 {
                let fa = FloatOperand::decode(ca, 4, true).unwrap();
                let fb = FloatOperand::decode(cb, 4, true).unwrap();
                let ia = decode_flint(ca, 4, true).unwrap();
                let ib = decode_flint(cb, 4, true).unwrap();
                assert_eq!(
                    float_multiply(fa, fb),
                    multiply(ia, ib),
                    "{ca:04b} x {cb:04b}"
                );
            }
        }
    }

    #[test]
    fn paper_fig5_example() {
        // Sec. V-A: flint 1110 = 12 decodes to exponent 4, mantissa
        // 100₂ = 0.5 → 2^(4−1) × 1.5 = 12.
        let f = FloatOperand::decode(0b1110, 4, false).unwrap();
        assert_eq!(f.fields().exp, 4);
        assert_eq!(f.fields().mantissa, 0b100);
        assert_eq!(f.value(), 12);
    }

    #[test]
    fn zero_times_anything_is_zero() {
        let z = FloatOperand::decode(0, 4, false).unwrap();
        for cb in 0..16u32 {
            let b = FloatOperand::decode(cb, 4, false).unwrap();
            assert_eq!(float_multiply(z, b), 0);
        }
    }
}
