//! Leading-zero detector (LZD), the one non-trivial gate in the flint
//! decoders (paper Fig. 5/6, citing Oklobdzija's modular LZD design \[65\]).
//!
//! [`lzd`] mirrors the hardware construction: a tree of 2-bit detectors
//! combined pairwise, which is how the circuit achieves O(log n) depth.
//! [`lzd_reference`] is the obvious behavioural model; tests prove them
//! equivalent for every field width we use.

/// Result of a leading-zero detection over a fixed-width field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzdResult {
    /// Number of leading zeros. Equal to `width` when the field is zero.
    pub count: u32,
    /// Whether any bit was set (the hardware's "valid" flag).
    pub valid: bool,
}

/// Behavioural leading-zero count over the low `width` bits of `x`.
///
/// # Panics
///
/// Panics if `width == 0`, `width > 32`, or `x` has bits above `width`.
pub fn lzd_reference(x: u32, width: u32) -> LzdResult {
    assert!((1..=32).contains(&width), "width {width} out of range");
    assert!(
        width == 32 || x < (1u32 << width),
        "operand wider than field"
    );
    if x == 0 {
        return LzdResult {
            count: width,
            valid: false,
        };
    }
    LzdResult {
        count: width - (x.ilog2() + 1),
        valid: true,
    }
}

/// Structural leading-zero detector: pairwise tree combination of 2-bit
/// cells, the modular construction of the hardware unit \[65\].
///
/// # Panics
///
/// Same conditions as [`lzd_reference`].
pub fn lzd(x: u32, width: u32) -> LzdResult {
    assert!((1..=32).contains(&width), "width {width} out of range");
    assert!(
        width == 32 || x < (1u32 << width),
        "operand wider than field"
    );
    // Pad to the next power of two on the LEFT with ones is wrong — the
    // hardware pads on the right (LSB side) with ones so padding never
    // claims leading zeros. Equivalent: operate on a padded word where the
    // original field occupies the top bits.
    let padded_width = width.next_power_of_two();
    let pad = padded_width - width;
    // Shift the field up; fill vacated LSBs with ones.
    let padded = (x << pad) | ((1u32.checked_shl(pad).unwrap_or(0)).wrapping_sub(1));
    let r = lzd_tree(padded, padded_width);
    let count = r.count.min(width);
    LzdResult {
        count,
        valid: count < width || x != 0 && r.valid,
    }
}

/// Recursive pairwise combine: an n-bit LZD from two n/2-bit LZDs.
fn lzd_tree(x: u32, width: u32) -> LzdResult {
    if width == 1 {
        let bit = x & 1;
        return LzdResult {
            count: 1 - bit,
            valid: bit == 1,
        };
    }
    let half = width / 2;
    let hi = lzd_tree(x >> half, half);
    let lo = lzd_tree(x & ((1u32 << half) - 1), half);
    if hi.valid {
        LzdResult {
            count: hi.count,
            valid: true,
        }
    } else {
        LzdResult {
            count: half + lo.count,
            valid: lo.valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_exhaustively_for_small_widths() {
        for width in 1..=10u32 {
            for x in 0..(1u32 << width) {
                assert_eq!(
                    lzd(x, width),
                    lzd_reference(x, width),
                    "x={x:b} width={width}"
                );
            }
        }
    }

    #[test]
    fn zero_field_reports_full_count_invalid() {
        let r = lzd(0, 7);
        assert_eq!(r.count, 7);
        assert!(!r.valid);
    }

    #[test]
    fn known_values() {
        // The decoder's 3-bit uses: LZD(110)=0, LZD(011)=1, LZD(001)=2.
        assert_eq!(lzd(0b110, 3).count, 0);
        assert_eq!(lzd(0b011, 3).count, 1);
        assert_eq!(lzd(0b001, 3).count, 2);
        assert_eq!(lzd(0b000, 3).count, 3);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_zero_width() {
        lzd(0, 0);
    }

    #[test]
    #[should_panic(expected = "wider than field")]
    fn rejects_overwide_operand() {
        lzd(0b1000, 3);
    }

    #[test]
    fn full_width_32() {
        assert_eq!(lzd(1, 32).count, 31);
        assert_eq!(lzd(u32::MAX, 32).count, 0);
        assert_eq!(lzd(0, 32).count, 32);
    }
}
