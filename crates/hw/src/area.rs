//! Silicon area model (paper Table VII and Table I, 28 nm TSMC).
//!
//! The paper synthesises its decoder and PE with Synopsys DC and scales
//! baselines to 28 nm with DeepScaleTool for an iso-area comparison. We
//! cannot re-run synthesis here, so the per-component areas reported in
//! Table VII are adopted as constants, and [`AreaModel`] reassembles each
//! design's core from them. Every number carries its provenance in the
//! constant's doc comment.

/// Area of one ANT type decoder in µm² (Table VII: "ANT Decoder (4.9µm²)").
pub const ANT_DECODER_UM2: f64 = 4.9;

/// Area of one int-based 4-bit ANT PE in µm² (Table VII: "4-bit PE
/// (79.57µm²)").
pub const ANT_PE4_UM2: f64 = 79.57;

/// The float-based ANT PE costs about 3× the int-based PE (Sec. VII-C:
/// "the float-based PE has about 3× area of int-based PE").
pub const FLOAT_PE_AREA_RATIO: f64 = 3.0;

/// On-chip buffer capacity shared by all designs (Table VII).
pub const BUFFER_KB: u32 = 512;

/// On-chip buffer area in mm² (Table VII: 4.2 mm² for 512 KB at 28 nm,
/// estimated by the paper with CACTI).
pub const BUFFER_MM2: f64 = 4.2;

/// A design point in the iso-area comparison (Table VII rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignArea {
    /// Human-readable architecture name.
    pub name: &'static str,
    /// Number of processing elements.
    pub pe_count: u32,
    /// Area of one PE in µm².
    pub pe_um2: f64,
    /// Number of boundary type decoders.
    pub decoder_count: u32,
    /// Area of one decoder in µm².
    pub decoder_um2: f64,
}

impl DesignArea {
    /// Core area (PEs + decoders) in mm².
    pub fn core_mm2(&self) -> f64 {
        (self.pe_count as f64 * self.pe_um2 + self.decoder_count as f64 * self.decoder_um2) / 1e6
    }

    /// Total area including the shared on-chip buffer, in mm².
    pub fn total_mm2(&self) -> f64 {
        self.core_mm2() + BUFFER_MM2
    }

    /// Decoder area as a fraction of the core (ANT's headline 0.2%
    /// overhead, Sec. VII-C).
    pub fn decoder_overhead(&self) -> f64 {
        let dec = self.decoder_count as f64 * self.decoder_um2 / 1e6;
        dec / self.core_mm2()
    }
}

/// The area model: Table VII's five designs at 28 nm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AreaModel;

impl AreaModel {
    /// ANT with a 64×64 systolic array: 4096 int-based 4-bit PEs plus 2n =
    /// 128 boundary decoders (Sec. VI-A: "we only need 2n instead of n²
    /// decoders").
    pub fn ant(self) -> DesignArea {
        DesignArea {
            name: "ANT",
            pe_count: 4096,
            pe_um2: ANT_PE4_UM2,
            decoder_count: 128,
            decoder_um2: ANT_DECODER_UM2,
        }
    }

    /// BitFusion at iso-area: 4096 4-bit fusible PEs, 0.326 mm² core
    /// (Table VII).
    pub fn bitfusion(self) -> DesignArea {
        DesignArea {
            name: "BitFusion",
            pe_count: 4096,
            pe_um2: 0.326e6 / 4096.0,
            decoder_count: 0,
            decoder_um2: 0.0,
        }
    }

    /// OLAccel at iso-area: 1152 mixed 4-/8-bit PEs, 0.320 mm² core
    /// (Table VII; the outlier controller is folded into the PE area).
    pub fn olaccel(self) -> DesignArea {
        DesignArea {
            name: "OLAccel",
            pe_count: 1152,
            pe_um2: 0.320e6 / 1152.0,
            decoder_count: 0,
            decoder_um2: 0.0,
        }
    }

    /// BiScaled at iso-area: 2560 6-bit BPEs, 0.328 mm² core (Table VII).
    pub fn biscaled(self) -> DesignArea {
        DesignArea {
            name: "BiScaled",
            pe_count: 2560,
            pe_um2: 0.328e6 / 2560.0,
            decoder_count: 0,
            decoder_um2: 0.0,
        }
    }

    /// AdaptiveFloat at iso-area: 896 8-bit float PEs, 0.327 mm² core
    /// (Table VII).
    pub fn adafloat(self) -> DesignArea {
        DesignArea {
            name: "AdaFloat",
            pe_count: 896,
            pe_um2: 0.327e6 / 896.0,
            decoder_count: 0,
            decoder_um2: 0.0,
        }
    }

    /// All Table VII rows in paper order.
    pub fn all(self) -> [DesignArea; 5] {
        [
            self.ant(),
            self.bitfusion(),
            self.olaccel(),
            self.biscaled(),
            self.adafloat(),
        ]
    }
}

/// Decoder-plus-controller area overhead ratios reported in Table I
/// (fractions of the fixed-point design's area). These are the paper's
/// synthesis results, reproduced as constants with the scheme they belong
/// to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRatios {
    /// Plain int: no decoders or controllers.
    pub int: f64,
    /// AdaptiveFloat's exponent-bias decoder: 14.5%.
    pub adafloat: f64,
    /// BitFusion's fusion logic: ≈ 0.
    pub bitfusion: f64,
    /// BiScaled's BPE (sparse mask indexing): 7.1%.
    pub biscaled: f64,
    /// OLAccel's outlier decoder + controller: 71%.
    pub olaccel: f64,
    /// GOBO's weight decoder: 55%.
    pub gobo: f64,
    /// ANT's boundary decoders: 0.2%.
    pub ant: f64,
}

/// Table I's published overhead column.
pub const TABLE_I_OVERHEADS: OverheadRatios = OverheadRatios {
    int: 0.0,
    adafloat: 0.145,
    bitfusion: 0.0,
    biscaled: 0.071,
    olaccel: 0.71,
    gobo: 0.55,
    ant: 0.002,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ant_core_area_matches_table_vii() {
        let ant = AreaModel.ant();
        // Table VII: ANT decoders + PEs = 0.327 mm².
        assert!((ant.core_mm2() - 0.327).abs() < 0.002, "{}", ant.core_mm2());
    }

    #[test]
    fn ant_decoder_overhead_is_two_permille() {
        let ant = AreaModel.ant();
        // Sec. VII-C: "the int-decoder overhead is about 0.2%".
        assert!(
            (ant.decoder_overhead() - 0.002).abs() < 0.0005,
            "{}",
            ant.decoder_overhead()
        );
    }

    #[test]
    fn iso_area_designs_are_close() {
        // All five designs were sized to the same core budget (~0.32 mm²).
        for d in AreaModel.all() {
            assert!(
                (d.core_mm2() - 0.325).abs() < 0.01,
                "{}: {} mm²",
                d.name,
                d.core_mm2()
            );
            assert!((d.total_mm2() - d.core_mm2() - BUFFER_MM2).abs() < 1e-12);
        }
    }

    #[test]
    fn pe_counts_match_table_vii() {
        let counts: Vec<(String, u32)> = AreaModel
            .all()
            .iter()
            .map(|d| (d.name.to_string(), d.pe_count))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("ANT".to_string(), 4096),
                ("BitFusion".to_string(), 4096),
                ("OLAccel".to_string(), 1152),
                ("BiScaled".to_string(), 2560),
                ("AdaFloat".to_string(), 896),
            ]
        );
    }

    #[test]
    fn overhead_ordering_matches_table_i() {
        let o = TABLE_I_OVERHEADS;
        assert!(o.ant < o.biscaled);
        assert!(o.biscaled < o.adafloat);
        assert!(o.adafloat < o.gobo);
        assert!(o.gobo < o.olaccel);
        assert_eq!(o.int, 0.0);
    }

    #[test]
    fn float_pe_costs_triple() {
        let int_pe = ANT_PE4_UM2;
        let float_pe = int_pe * FLOAT_PE_AREA_RATIO;
        assert!((float_pe / int_pe - 3.0).abs() < 1e-12);
    }
}
