//! # Bit-accurate TypeFusion hardware models for the ANT reproduction
//!
//! The ANT paper's hardware contribution (Sec. V–VI) is a *TypeFusion*
//! processing element that multiplies any pair of ANT primitive types
//! (`int`/`PoT`/`flint`) on an ordinary integer MAC after a tiny decode
//! stage. This crate models that hardware at bit level:
//!
//! * [`lzd`] — the leading-zero detector, the decoders' only non-trivial
//!   gate, in both structural (tree) and behavioural forms,
//! * [`decode`] — the int-based decoders of Fig. 6/Table III (and the
//!   float-based variant of Fig. 5), producing the unified
//!   `(base, exponent)` operand representation,
//! * [`mac`] — the Fig. 7 multiply–accumulate datapath with a fixed-width
//!   wrapping accumulator, plus the Fig. 8 composition of an 8-bit int
//!   multiplier from four 4-bit ANT PEs,
//! * [`systolic`] — a cycle-stepped output-stationary systolic array with
//!   boundary decoders (Fig. 9), the functional reference the performance
//!   simulator in `ant-sim` is validated against,
//! * [`weight_stationary`] — the weight-stationary dataflow variant with
//!   pre-decoded weights (Sec. VI-A),
//! * [`float_pe`] — the float-based PE variant of Sec. V-A, proven
//!   result-equivalent to the int-based PE,
//! * [`area`] — the 28 nm area model behind Tables I and VII.
//!
//! # Example
//!
//! ```
//! use ant_hw::decode::{decode_flint, decode_pot};
//! use ant_hw::mac::{mac, Accumulator};
//!
//! // A flint activation (code 1110 = 12) times a PoT weight (+16):
//! let a = decode_flint(0b1110, 4, false)?;
//! let w = decode_pot(0b0101, 4, true);
//! let mut acc = Accumulator::new(16);
//! mac(&mut acc, a, w);
//! assert_eq!(acc.value(), 192);
//! # Ok::<(), ant_core::QuantError>(())
//! ```

#![deny(missing_docs)]

pub mod area;
pub mod decode;
pub mod float_pe;
pub mod lzd;
pub mod mac;
pub mod systolic;
pub mod weight_stationary;
