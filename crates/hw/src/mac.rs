//! The int-based TypeFusion multiply–accumulate unit (paper Fig. 7) and the
//! 8-bit composition from four 4-bit PEs (paper Fig. 8).
//!
//! Per Fig. 7, multiplying two decoded flint operands `f_a = (i_a, e_a)` and
//! `f_b = (i_b, e_b)` takes one integer multiplier (`i_c = i_a · i_b`), one
//! small adder (`e_c = e_a + e_b`), a left shifter (`i_d = i_c << e_c`) and
//! the existing wide accumulator (`i_f = i_e + i_d`). Because int and PoT
//! decode into the same `(base, exp)` form, the same unit serves all ANT
//! primitives — including mixed-type pairs (input flint × weight PoT etc.).

use crate::decode::Decoded;

/// A fixed-width two's-complement accumulator with wrap-around semantics,
/// mirroring the PE's preloaded accumulator register (16-bit for the 4-bit
/// PE per Fig. 7, 32-bit in tensor-core style integrations, Sec. VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accumulator {
    width: u32,
    value: i64,
    overflowed: bool,
}

impl Accumulator {
    /// Creates a zeroed accumulator of `width` bits (2..=64).
    ///
    /// # Panics
    ///
    /// Panics when `width` is outside `2..=64`.
    pub fn new(width: u32) -> Self {
        assert!((2..=64).contains(&width), "accumulator width {width}");
        Accumulator {
            width,
            value: 0,
            overflowed: false,
        }
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Current register value (sign-extended).
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Whether any addition wrapped past the register range. Real hardware
    /// silently wraps; the flag lets tests and the simulator detect it.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Preloads the register (the accumulator-preload path in Fig. 9).
    pub fn preload(&mut self, value: i64) {
        self.value = self.wrap(value);
    }

    /// Adds `x`, wrapping at the register width.
    pub fn add(&mut self, x: i64) {
        let sum = self.value.wrapping_add(x);
        let wrapped = self.wrap(sum);
        if wrapped != sum {
            self.overflowed = true;
        }
        self.value = wrapped;
    }

    fn wrap(&self, v: i64) -> i64 {
        if self.width == 64 {
            return v;
        }
        let m = 1i64 << self.width;
        let r = v.rem_euclid(m);
        if r >= m / 2 {
            r - m
        } else {
            r
        }
    }
}

/// The TypeFusion multiplier of Fig. 7: integer product, exponent add, left
/// shift.
pub fn multiply(a: Decoded, b: Decoded) -> i64 {
    let ic = (a.base as i64) * (b.base as i64);
    let ec = a.exp + b.exp;
    ic << ec
}

/// One full MAC step: `acc += a × b`.
pub fn mac(acc: &mut Accumulator, a: Decoded, b: Decoded) {
    acc.add(multiply(a, b));
}

/// Splits a signed 8-bit integer into the paper's Fig. 8 decomposition:
/// `x = <hi, 4> + <lo, 0>` where `hi` is the signed high nibble and `lo`
/// the unsigned low nibble, both expressed as [`Decoded`] operands.
pub fn split_int8(x: i8) -> [Decoded; 2] {
    let hi = (x as i32) >> 4; // arithmetic shift keeps the sign
    let lo = (x as i32) & 0xF;
    [Decoded { base: hi, exp: 4 }, Decoded { base: lo, exp: 0 }]
}

/// Multiplies two signed 8-bit integers using four 4-bit TypeFusion PEs and
/// an adder tree, exactly the Fig. 8 arrangement. Each partial product is a
/// separate 4-bit PE multiply; the sum equals the 16-bit product.
pub fn mul_int8_via_4bit_pes(a: i8, b: i8) -> i64 {
    let [a_hi, a_lo] = split_int8(a);
    let [b_hi, b_lo] = split_int8(b);
    // Four parallel multiplications (Fig. 8), then the adder tree.
    let partials = [
        multiply(a_hi, b_hi),
        multiply(a_hi, b_lo),
        multiply(a_lo, b_hi),
        multiply(a_lo, b_lo),
    ];
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_flint, decode_int, decode_pot};

    #[test]
    fn multiply_matches_decoded_values() {
        // All pairs of signed 4-bit flint operands.
        for ca in 0..16u32 {
            for cb in 0..16u32 {
                let a = decode_flint(ca, 4, true).unwrap();
                let b = decode_flint(cb, 4, true).unwrap();
                assert_eq!(multiply(a, b), a.value() * b.value(), "{ca:04b} x {cb:04b}");
            }
        }
    }

    #[test]
    fn mixed_type_multiplication() {
        // TypeFusion's reason to exist: input and weight tensors may carry
        // different primitive types (Sec. V).
        let flint = decode_flint(0b1110, 4, false).unwrap(); // 12
        let pot = decode_pot(0b0101, 4, true); // +16
        let int = decode_int(0b1101, 4, true); // -3
        assert_eq!(multiply(flint, pot), 192);
        assert_eq!(multiply(flint, int), -36);
        assert_eq!(multiply(pot, int), -48);
    }

    #[test]
    fn paper_fig7_dataflow_example() {
        // fa = 12 (code 1110): ia=12, ea=0; fb = 24 (code 1011): ib=6, eb=2.
        let fa = decode_flint(0b1110, 4, false).unwrap();
        let fb = decode_flint(0b1011, 4, false).unwrap();
        assert_eq!((fa.base, fa.exp), (12, 0));
        assert_eq!((fb.base, fb.exp), (6, 2));
        // ic = 72, ec = 2, id = 288 = 12 * 24.
        assert_eq!(multiply(fa, fb), 288);
    }

    #[test]
    fn accumulator_wraps_at_width_and_flags() {
        let mut acc = Accumulator::new(16);
        acc.add(32767);
        assert!(!acc.overflowed());
        acc.add(1);
        assert!(acc.overflowed());
        assert_eq!(acc.value(), -32768);
    }

    #[test]
    fn accumulator_preload_and_width() {
        let mut acc = Accumulator::new(16);
        acc.preload(-5);
        assert_eq!(acc.value(), -5);
        assert_eq!(acc.width(), 16);
        acc.add(10);
        assert_eq!(acc.value(), 5);
        assert!(!acc.overflowed());
    }

    #[test]
    fn flint4_dot_product_fits_16bit_accumulator() {
        // Paper Fig. 7: "The flint type produces a 16-bit int result and is
        // compatible with the original 16-bit accumulator". A modest dot
        // product of signed flint4 values stays in range.
        let mut acc = Accumulator::new(16);
        for ca in 0..16u32 {
            let a = decode_flint(ca, 4, true).unwrap();
            mac(&mut acc, a, a);
        }
        // sum of squares of ±{0..16} lattice = 2 * (1+4+9+16+36+64+256)
        assert_eq!(acc.value(), 2 * (1 + 4 + 9 + 16 + 36 + 64 + 256));
        assert!(!acc.overflowed());
    }

    #[test]
    fn split_int8_reconstructs() {
        for x in i8::MIN..=i8::MAX {
            let [hi, lo] = split_int8(x);
            assert_eq!(hi.value() + lo.value(), x as i64, "x={x}");
        }
    }

    #[test]
    fn int8_multiplication_via_four_4bit_pes_exhaustive() {
        // Fig. 8: exhaustive equivalence of the composed multiplier.
        for a in i8::MIN..=i8::MAX {
            for b in [i8::MIN, -77, -16, -1, 0, 1, 15, 16, 77, i8::MAX] {
                assert_eq!(
                    mul_int8_via_4bit_pes(a, b),
                    (a as i64) * (b as i64),
                    "{a} x {b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "accumulator width")]
    fn accumulator_rejects_width_1() {
        let _ = Accumulator::new(1);
    }
}
