//! Cycle-stepped *weight-stationary* systolic array (paper Sec. VI-A,
//! "Weight Stationary").
//!
//! Weights are decoded **before preloading** — each PE stores the decoded
//! `(base, exponent)` pair, so only `n` input decoders remain at the top
//! boundary ("the weight decoders only need to decode and store the
//! decoded exponent and integer within each PE"). Inputs stream across
//! rows; partial sums flow down columns and drain from the bottom edge at
//! accumulator precision — the extra high-precision output traffic that
//! costs ANT-WS buffer energy relative to ANT-OS (Sec. VII-D).

use crate::decode::Decoded;
use crate::mac::multiply;
use crate::systolic::{DecodedMatrix, SystolicStats};

/// An `n × n` weight-stationary array of TypeFusion PEs.
#[derive(Debug, Clone)]
pub struct WeightStationaryArray {
    size: usize,
}

impl WeightStationaryArray {
    /// Creates an array of `size × size` PEs.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "array size must be positive");
        WeightStationaryArray { size }
    }

    /// Array dimension.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Computes `a (M×K) × b (K×N)`, tiling `b` into `size × size` weight
    /// blocks that are preloaded one at a time; partial results for the
    /// same output accumulate across K-tiles (the partial-sum read/write
    /// traffic the energy model charges to ANT-WS).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn gemm(&self, a: &DecodedMatrix, b: &DecodedMatrix) -> (Vec<i64>, SystolicStats) {
        assert_eq!(a.cols(), b.rows(), "inner dimensions disagree");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = vec![0i64; m * n];
        let mut stats = SystolicStats::default();
        let nn = self.size;
        for tk in (0..k).step_by(nn) {
            let rows = nn.min(k - tk);
            for tn in (0..n).step_by(nn) {
                let cols = nn.min(n - tn);
                // Preload: decode-and-store, one column of weights per
                // cycle (Sec. VI-A's preload path).
                stats.cycles += rows as u64;
                // Cycle-stepped streaming: input row m enters PE row i at
                // cycle m + i; the partial sum for (m, j) leaves the
                // bottom at cycle m + rows - 1 + j ... total drain:
                // M + rows + cols - 2 cycles.
                let mut psum: Vec<Vec<i64>> = vec![vec![0i64; cols]; m];
                for (mi, row_acc) in psum.iter_mut().enumerate() {
                    for i in 0..rows {
                        let av: Decoded = a.get(mi, tk + i);
                        for (j, acc) in row_acc.iter_mut().enumerate() {
                            *acc += multiply(av, b.get(tk + i, tn + j));
                            stats.macs += 1;
                        }
                    }
                    for (j, &acc) in row_acc.iter().enumerate() {
                        out[mi * n + (tn + j)] += acc;
                    }
                }
                stats.cycles += (m + rows + cols - 2) as u64;
                stats.tiles += 1;
            }
        }
        (out, stats)
    }

    /// Cycles the timing model predicts for this array and problem shape:
    /// per (K-tile × N-tile): preload `rows` plus stream `M + rows + cols −
    /// 2`.
    pub fn predicted_cycles(&self, m: u64, n: u64, k: u64) -> u64 {
        let nn = self.size as u64;
        let mut cycles = 0;
        let mut tk = 0;
        while tk < k {
            let rows = nn.min(k - tk);
            let mut tn = 0;
            while tn < n {
                let cols = nn.min(n - tn);
                cycles += rows + m + rows + cols - 2;
                tn += nn;
            }
            tk += nn;
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::WireType;
    use crate::systolic::{reference_gemm, SystolicArray};

    fn codes(n: usize, seed: u32) -> Vec<u32> {
        let mut state = seed.wrapping_mul(0x9E3779B9).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 13) & 0xF
            })
            .collect()
    }

    #[test]
    fn ws_matches_reference_gemm() {
        let a = DecodedMatrix::from_codes(7, 9, &codes(63, 1), 4, WireType::Flint { signed: true })
            .unwrap();
        let b = DecodedMatrix::from_codes(9, 6, &codes(54, 2), 4, WireType::Int { signed: true })
            .unwrap();
        let (out, stats) = WeightStationaryArray::new(4).gemm(&a, &b);
        assert_eq!(out, reference_gemm(&a, &b));
        assert_eq!(stats.macs, 7 * 9 * 6);
        assert_eq!(stats.tiles, 3 * 2); // ceil(9/4) x ceil(6/4)
    }

    #[test]
    fn ws_and_os_agree_functionally() {
        // The two dataflows must compute identical results (paper: "very
        // similar performances" — identical values, different traffic).
        let a = DecodedMatrix::from_codes(5, 8, &codes(40, 3), 4, WireType::Pot { signed: true })
            .unwrap();
        let b = DecodedMatrix::from_codes(8, 5, &codes(40, 4), 4, WireType::Flint { signed: true })
            .unwrap();
        let (ws, _) = WeightStationaryArray::new(3).gemm(&a, &b);
        let (os, _) = SystolicArray::new(3, 64).gemm(&a, &b);
        assert_eq!(ws, os);
    }

    #[test]
    fn ws_cycle_model_consistent() {
        let a = DecodedMatrix::from_codes(10, 8, &codes(80, 5), 4, WireType::Int { signed: true })
            .unwrap();
        let b = DecodedMatrix::from_codes(8, 8, &codes(64, 6), 4, WireType::Int { signed: true })
            .unwrap();
        let arr = WeightStationaryArray::new(4);
        let (_, stats) = arr.gemm(&a, &b);
        assert_eq!(stats.cycles, arr.predicted_cycles(10, 8, 8));
    }

    #[test]
    fn ws_preload_amortises_with_large_m() {
        // Weight-stationarity pays off when many inputs reuse each preload:
        // cycles/MAC must drop as M grows.
        let arr = WeightStationaryArray::new(4);
        let small = arr.predicted_cycles(4, 8, 8) as f64 / (4.0 * 8.0 * 8.0);
        let large = arr.predicted_cycles(64, 8, 8) as f64 / (64.0 * 8.0 * 8.0);
        assert!(large < small * 0.5, "small {small} vs large {large}");
    }

    #[test]
    #[should_panic(expected = "array size")]
    fn ws_rejects_zero_size() {
        let _ = WeightStationaryArray::new(0);
    }
}
