//! Property-based tests for the TypeFusion hardware: decoder equivalence
//! with the arithmetic codecs, MAC exactness, 8-bit composition and
//! systolic-array equivalence with the reference GEMM.

use ant_core::flint::Flint;
use ant_hw::decode::{decode, decode_flint, decode_int, decode_pot, WireType};
use ant_hw::lzd::{lzd, lzd_reference};
use ant_hw::mac::{mul_int8_via_4bit_pes, multiply, Accumulator};
use ant_hw::systolic::{reference_gemm, DecodedMatrix, SystolicArray};
use proptest::prelude::*;

proptest! {
    /// Structural LZD equals the behavioural model for every width/operand.
    #[test]
    fn lzd_equivalence(width in 1u32..=16, raw in 0u32..65536) {
        let x = raw & ((1u32 << width) - 1);
        prop_assert_eq!(lzd(x, width), lzd_reference(x, width));
    }

    /// The hardware flint decoder agrees with the arithmetic codec for all
    /// widths, signednesses and codes.
    #[test]
    fn flint_decoder_equivalence(bits in 3u32..=8, raw in 0u32..256, signed in proptest::bool::ANY) {
        let total_bits = if signed { bits + 1 } else { bits };
        if total_bits > 8 { return Ok(()); }
        let code = raw & ((1 << total_bits) - 1);
        let d = decode_flint(code, total_bits, signed).unwrap();
        let flint = Flint::new(bits).unwrap();
        let mag_code = code & ((1 << bits) - 1);
        let expect = flint.decode(mag_code) as i64;
        let neg = signed && (code >> bits) & 1 == 1;
        prop_assert_eq!(d.value(), if neg { -expect } else { expect });
    }

    /// The unified multiplier is exact for every decoded operand pair of
    /// any primitive type mix.
    #[test]
    fn typefusion_multiply_exact(
        ca in 0u32..16, cb in 0u32..16,
        ta in 0usize..3, tb in 0usize..3,
    ) {
        let types = [
            WireType::Int { signed: true },
            WireType::Pot { signed: true },
            WireType::Flint { signed: true },
        ];
        let a = decode(ca, 4, types[ta]).unwrap();
        let b = decode(cb, 4, types[tb]).unwrap();
        prop_assert_eq!(multiply(a, b), a.value() * b.value());
    }

    /// Fig. 8: the four-PE composition multiplies any signed bytes exactly.
    #[test]
    fn int8_composition_exact(a in i8::MIN..=i8::MAX, b in i8::MIN..=i8::MAX) {
        prop_assert_eq!(mul_int8_via_4bit_pes(a, b), (a as i64) * (b as i64));
    }

    /// A wide accumulator over random MAC sequences never overflows and
    /// matches an i64 reference sum.
    #[test]
    fn accumulator_matches_reference(codes in proptest::collection::vec((0u32..16, 0u32..16), 1..64)) {
        let mut acc = Accumulator::new(32);
        let mut reference = 0i64;
        for (ca, cb) in codes {
            let a = decode_flint(ca, 4, true).unwrap();
            let b = decode_flint(cb, 4, true).unwrap();
            ant_hw::mac::mac(&mut acc, a, b);
            reference += a.value() * b.value();
        }
        prop_assert!(!acc.overflowed());
        prop_assert_eq!(acc.value(), reference);
    }

    /// The cycle-stepped systolic array computes the exact GEMM for random
    /// shapes and mixed operand types.
    #[test]
    fn systolic_equals_reference(
        m in 1usize..7, k in 1usize..7, n in 1usize..7,
        seed in 0u32..1000,
        array in 2usize..5,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B9).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 13) & 0xF
        };
        let a_codes: Vec<u32> = (0..m * k).map(|_| next()).collect();
        let b_codes: Vec<u32> = (0..k * n).map(|_| next()).collect();
        let a = DecodedMatrix::from_codes(m, k, &a_codes, 4, WireType::Flint { signed: true }).unwrap();
        let b = DecodedMatrix::from_codes(k, n, &b_codes, 4, WireType::Pot { signed: true }).unwrap();
        let (out, stats) = SystolicArray::new(array, 32).gemm(&a, &b);
        prop_assert_eq!(out, reference_gemm(&a, &b));
        prop_assert_eq!(stats.macs, (m * k * n) as u64);
    }

    /// PoT and int decoders stay within their value ranges.
    #[test]
    fn pot_int_decoder_ranges(code in 0u32..16) {
        let p = decode_pot(code, 4, true);
        prop_assert!(p.base.abs() <= 1);
        let i = decode_int(code, 4, true);
        prop_assert!((-8..=7).contains(&i.base));
        prop_assert_eq!(i.exp, 0);
    }
}
