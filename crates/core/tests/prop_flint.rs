//! Property-based tests for the flint codec and the quantization stack.

use ant_core::flint::Flint;
use ant_core::select::PrimitiveCombo;
use ant_core::{ClipSearch, Codec, DataType, Quantizer};
use proptest::prelude::*;

proptest! {
    /// Encoding any in-range integer and decoding it lands on a lattice
    /// point no farther than the local lattice gap.
    #[test]
    fn flint_encode_stays_within_one_gap(bits in 3u32..=8, frac in 0.0f64..1.0) {
        let f = Flint::new(bits).unwrap();
        let e = (frac * f.max_value() as f64).round() as u64;
        let q = f.decode(f.encode_int(e));
        let lattice = f.lattice();
        let pos = lattice.partition_point(|&v| v < e);
        let gap = if pos == 0 || pos >= lattice.len() {
            u64::MAX
        } else {
            lattice[pos] - lattice[pos - 1]
        };
        let err = (q as i64 - e as i64).unsigned_abs();
        prop_assert!(err <= gap, "e={e} q={q} gap={gap}");
    }

    /// Round-trip: decoding any code and re-encoding gives back a code with
    /// the same value.
    #[test]
    fn flint_roundtrip(bits in 3u32..=8, code_frac in 0.0f64..1.0) {
        let f = Flint::new(bits).unwrap();
        let code = (code_frac * (f.num_codes() - 1) as f64).round() as u32;
        let v = f.decode(code);
        prop_assert_eq!(f.decode(f.encode_int(v)), v);
    }

    /// The int-based decomposition always reconstructs the decoded value
    /// with a base that fits the hardware register.
    #[test]
    fn flint_int_decode_reconstructs(bits in 3u32..=8, code_frac in 0.0f64..1.0) {
        let f = Flint::new(bits).unwrap();
        let code = (code_frac * (f.num_codes() - 1) as f64).round() as u32;
        let d = f.decode_int(code);
        prop_assert_eq!((d.base as u64) << d.exp, f.decode(code));
        prop_assert!(d.base < (1 << bits));
    }

    /// Snapping is idempotent for every data type.
    #[test]
    fn snap_is_idempotent(
        which in 0usize..5,
        signed in proptest::bool::ANY,
        x in -200.0f32..200.0,
    ) {
        let dt = match which {
            0 => DataType::int(4, signed),
            1 => DataType::pot(4, signed),
            2 => DataType::float(4, signed),
            3 => DataType::flint(if signed { 5 } else { 4 }, signed),
            _ => DataType::int(8, signed),
        }.unwrap();
        let codec = Codec::new(dt).unwrap();
        let once = codec.snap(x);
        prop_assert_eq!(codec.snap(once), once, "{} snap({})", dt, x);
    }

    /// Snap never increases magnitude beyond the lattice maximum and
    /// respects signedness.
    #[test]
    fn snap_respects_range(signed in proptest::bool::ANY, x in -500.0f32..500.0) {
        let dt = DataType::flint(if signed { 5 } else { 4 }, signed).unwrap();
        let codec = Codec::new(dt).unwrap();
        let q = codec.snap(x);
        prop_assert!(q.abs() <= codec.max_value());
        if !signed {
            prop_assert!(q >= 0.0);
        } else if x != 0.0 && q != 0.0 {
            prop_assert_eq!(q.signum(), x.signum());
        }
    }

    /// Calibrated fake quantization never produces values beyond the
    /// scaled lattice maximum, and the reported MSE matches a recomputation.
    #[test]
    fn quantizer_fit_consistent(seed in 0u64..1000, scale_exp in -3i32..4) {
        let data = ant_tensor::dist::sample_vec(
            ant_tensor::dist::Distribution::Gaussian { mean: 0.0, std: 2f32.powi(scale_exp) },
            512,
            seed,
        );
        let dt = DataType::flint(4, true).unwrap();
        let (q, fitted) = Quantizer::fit(dt, &data, ClipSearch::GridMse { steps: 16 }).unwrap();
        let recomputed = q.mse(&data);
        prop_assert!((fitted - recomputed).abs() < 1e-9 * (1.0 + fitted));
        let bound = q.codec().max_value() * q.scale() * (1.0 + 1e-5);
        for &x in &data {
            prop_assert!(q.quantize_dequantize(x).abs() <= bound);
        }
    }

    /// Adding candidate types never increases the selected MSE.
    #[test]
    fn selection_is_monotone_in_candidates(seed in 0u64..500) {
        use ant_core::select::select_type;
        use ant_core::Granularity;
        let data = ant_tensor::dist::sample_vec(
            ant_tensor::dist::Distribution::Laplace { mu: 0.0, b: 1.0 },
            512,
            seed,
        );
        let t = ant_tensor::Tensor::from_slice(&data);
        let small = PrimitiveCombo::IntPot.candidates(4, true).unwrap();
        let large = PrimitiveCombo::FloatIntPotFlint.candidates(4, true).unwrap();
        let search = ClipSearch::GridMse { steps: 16 };
        let a = select_type(&t, &small, Granularity::PerTensor, search).unwrap();
        let b = select_type(&t, &large, Granularity::PerTensor, search).unwrap();
        prop_assert!(b.mse <= a.mse + 1e-12);
    }
}
