//! Property-based tests for the packed-tensor and posit extension modules.

use ant_core::pack::{variable_length_size, PackedTensor};
use ant_core::posit::Posit;
use ant_core::DataType;
use proptest::prelude::*;

proptest! {
    /// Packing then unpacking returns the original codes for every width.
    #[test]
    fn pack_roundtrip(
        bits in 2u32..=8,
        codes in proptest::collection::vec(0u32..65536, 0..200),
    ) {
        let dt = DataType::int(bits, false).unwrap();
        let codes: Vec<u32> = codes.into_iter().map(|c| c & ((1 << bits) - 1)).collect();
        let p = PackedTensor::pack(dt, &codes, vec![1.0]).unwrap();
        prop_assert_eq!(p.codes(), codes.clone());
        prop_assert_eq!(p.size_bytes(), (codes.len() * bits as usize).div_ceil(8));
    }

    /// Random access equals sequential unpacking at every index.
    #[test]
    fn pack_random_access(seed in 0u32..1000, bits in 2u32..=8) {
        let mask = (1u32 << bits) - 1;
        let mut state = seed.wrapping_mul(0x9E3779B9).wrapping_add(1);
        let codes: Vec<u32> = (0..97)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 11) & mask
            })
            .collect();
        let dt = DataType::int(bits, false).unwrap();
        let p = PackedTensor::pack(dt, &codes, vec![1.0]).unwrap();
        let unpacked = p.codes();
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(p.code(i), c);
            prop_assert_eq!(unpacked[i], c);
        }
    }

    /// Fixed-length storage is never larger than a variable-length scheme
    /// with the same base width plus any outlier overhead.
    #[test]
    fn fixed_length_never_loses(low in 2u32..=8, extra in 1u32..=28, idx in 0u32..=16, frac in 0.0f64..0.2) {
        let fixed = low as f64;
        let variable = variable_length_size(low, low + extra, idx, frac);
        prop_assert!(variable >= fixed - 1e-12);
    }

    /// Posit decoding is an odd function: decode(-code) == -decode(code)
    /// for all non-zero, non-NaR codes.
    #[test]
    fn posit_negation(n in 3u32..=10, es in 0u32..2, raw in 1u32..1024) {
        prop_assume!(es < n - 1);
        let p = Posit::new(n, es).unwrap();
        let code = raw & ((1 << n) - 1);
        prop_assume!(code != 0 && code != 1 << (n - 1));
        let neg = ((!code).wrapping_add(1)) & ((1 << n) - 1);
        prop_assert_eq!(p.decode(neg), -p.decode(code));
    }

    /// Positive posit codes decode monotonically increasing — the ordering
    /// property posits share with int (and flint codes do NOT have, which
    /// is why flint needs its decoder).
    #[test]
    fn posit_positive_codes_monotone(n in 3u32..=10, es in 0u32..2) {
        prop_assume!(es < n - 1);
        let p = Posit::new(n, es).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for code in 0..(1u32 << (n - 1)) {
            let v = p.decode(code);
            prop_assert!(v > prev, "code {code:b}: {v} <= {prev}");
            prev = v;
        }
    }

    /// Posit regime lengths span from 2 up to n−1 bits — the
    /// variable-length field the paper contrasts with flint (Sec. VIII).
    #[test]
    fn posit_regime_lengths_vary(n in 4u32..=10) {
        let p = Posit::new(n, 1).unwrap();
        let lengths: std::collections::BTreeSet<u32> =
            (1..(1u32 << (n - 1))).map(|c| p.regime_length(c)).collect();
        prop_assert!(lengths.len() as u32 >= n - 3, "{lengths:?}");
        prop_assert_eq!(*lengths.iter().max().unwrap(), n - 1);
    }
}
