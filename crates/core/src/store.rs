//! Owned-or-borrowed packed storage with a guaranteed 64-byte base
//! alignment.
//!
//! The serving runtime wants to execute weights straight out of a
//! memory-mapped artifact: the file stores wire codes and pre-packed
//! GEMM panels, and the compiled plan should *borrow* those pages
//! instead of copying them into fresh `Vec`s. [`PackedStore`] is the
//! ownership abstraction that makes this safe to thread through the
//! stack:
//!
//! * **Owned** storage allocates with a 64-byte-aligned layout, so
//!   alignment is a property of the type rather than an allocator
//!   accident.
//! * **Borrowed** storage holds a raw slice plus an `Arc` to whatever
//!   owns the underlying memory (e.g. an `Arc<Mmap>` in the runtime,
//!   type-erased here so this crate needs no OS dependency). The
//!   checked constructor refuses misaligned or mis-sized byte ranges,
//!   so every successfully-constructed store upholds the same 64-byte
//!   guarantee.
//!
//! Cloning an owned store copies; cloning a borrowed store bumps the
//! owner's refcount. Equality always compares contents, so artifact
//! round-trip tests see value semantics regardless of the variant.
//!
//! ```
//! use ant_core::store::{PackedStore, STORE_ALIGN};
//! use std::sync::Arc;
//!
//! let owned: PackedStore<i8> = PackedStore::from_vec(vec![1, -2, 3]);
//! assert_eq!(owned.as_ptr() as usize % STORE_ALIGN, 0);
//!
//! // Borrow the owned store's bytes through an Arc'd owner, as the
//! // runtime does with a file mapping.
//! let owner: Arc<PackedStore<u8>> = Arc::new(PackedStore::from_vec(vec![7u8; 64]));
//! let view = unsafe {
//!     PackedStore::<i8>::borrowed(owner.as_slice(), owner.clone()).unwrap()
//! };
//! assert!(view.is_borrowed());
//! assert_eq!(view.len(), 64);
//! ```

use std::any::Any;
use std::ptr::NonNull;
use std::sync::Arc;

/// The base alignment (in bytes) every [`PackedStore`] guarantees for
/// its first element: owned buffers are allocated to it, borrowed
/// ranges are rejected without it. 64 bytes covers every SIMD width the
/// kernels use and matches one x86 cache line.
pub const STORE_ALIGN: usize = 64;

/// An element type that may live in a [`PackedStore`].
///
/// # Safety
///
/// Implementors must be plain-old-data: `Copy`, no padding or invalid
/// bit patterns, and meaningful under byte-level reinterpretation (the
/// borrowed constructor casts raw little-endian file bytes to `[T]`).
/// The provided implementations cover exactly the widths the runtime
/// serializes.
pub unsafe trait StorePod: Copy + Send + Sync + 'static {}

// SAFETY: fixed-width primitive integers/floats have no padding and
// accept every bit pattern.
unsafe impl StorePod for u8 {}
// SAFETY: as above.
unsafe impl StorePod for i8 {}
// SAFETY: as above.
unsafe impl StorePod for i16 {}
// SAFETY: as above.
unsafe impl StorePod for i32 {}
// SAFETY: as above.
unsafe impl StorePod for i64 {}
// SAFETY: as above.
unsafe impl StorePod for f32 {}

/// Packed element storage that is either owned (64-byte-aligned
/// allocation) or borrowed from an `Arc`-kept owner such as a file
/// mapping. Derefs to `&[T]`; see the [module docs](self) for the
/// ownership rules.
pub struct PackedStore<T: StorePod> {
    repr: Repr<T>,
}

enum Repr<T: StorePod> {
    Owned(AlignedBuf<T>),
    Borrowed {
        ptr: NonNull<T>,
        len: usize,
        _owner: Arc<dyn Any + Send + Sync>,
    },
}

// SAFETY: the store is an immutable view of `[T]`; `T: Send + Sync` is
// implied by `StorePod`, and the type-erased owner is `Send + Sync` by
// its trait object bounds.
unsafe impl<T: StorePod> Send for PackedStore<T> {}
// SAFETY: as above — shared access only ever reads.
unsafe impl<T: StorePod> Sync for PackedStore<T> {}

impl<T: StorePod> PackedStore<T> {
    /// Owns `v`'s elements in a fresh 64-byte-aligned buffer.
    pub fn from_vec(v: Vec<T>) -> Self {
        PackedStore {
            repr: Repr::Owned(AlignedBuf::from_slice(&v)),
        }
    }

    /// Borrows `bytes` (reinterpreted as `[T]`) for as long as `owner`
    /// lives. Returns `None` — never a misaligned store — when the
    /// range does not start on a [`STORE_ALIGN`] boundary or is not a
    /// whole number of elements.
    ///
    /// # Safety
    ///
    /// `bytes` must point into memory kept alive and unmodified for as
    /// long as `owner` (or any clone of the returned store) exists; the
    /// byte content must be valid little-endian `T` values. The caller
    /// is asserting a lifetime the borrow checker cannot see — this is
    /// the single unsafe gate the zero-copy artifact path goes through.
    pub unsafe fn borrowed(bytes: &[u8], owner: Arc<dyn Any + Send + Sync>) -> Option<Self> {
        let size = std::mem::size_of::<T>();
        if !(bytes.as_ptr() as usize).is_multiple_of(STORE_ALIGN)
            || !bytes.len().is_multiple_of(size)
        {
            return None;
        }
        let len = bytes.len() / size;
        let ptr = if len == 0 {
            dangling_aligned::<T>()
        } else {
            // SAFETY: a slice pointer is non-null.
            unsafe { NonNull::new_unchecked(bytes.as_ptr() as *mut T) }
        };
        Some(PackedStore {
            repr: Repr::Borrowed {
                ptr,
                len,
                _owner: owner,
            },
        })
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(buf) => buf.as_slice(),
            // SAFETY: the borrowed constructor's contract guarantees
            // `ptr..ptr+len` stays valid while `_owner` is held.
            Repr::Borrowed { ptr, len, .. } => unsafe {
                std::slice::from_raw_parts(ptr.as_ptr(), *len)
            },
        }
    }

    /// Base pointer of the storage; always [`STORE_ALIGN`]-aligned.
    pub fn as_ptr(&self) -> *const T {
        match &self.repr {
            Repr::Owned(buf) => buf.ptr.as_ptr(),
            Repr::Borrowed { ptr, .. } => ptr.as_ptr(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Owned(buf) => buf.len,
            Repr::Borrowed { len, .. } => *len,
        }
    }

    /// Whether the store holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the elements are borrowed from an external owner
    /// (e.g. a mapped artifact) rather than owned by this store.
    pub fn is_borrowed(&self) -> bool {
        matches!(self.repr, Repr::Borrowed { .. })
    }
}

impl<T: StorePod> std::ops::Deref for PackedStore<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: StorePod> Clone for PackedStore<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(buf) => PackedStore {
                repr: Repr::Owned(AlignedBuf::from_slice(buf.as_slice())),
            },
            Repr::Borrowed { ptr, len, _owner } => PackedStore {
                repr: Repr::Borrowed {
                    ptr: *ptr,
                    len: *len,
                    _owner: Arc::clone(_owner),
                },
            },
        }
    }
}

impl<T: StorePod + PartialEq> PartialEq for PackedStore<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: StorePod + std::fmt::Debug> std::fmt::Debug for PackedStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = if self.is_borrowed() {
            "Borrowed"
        } else {
            "Owned"
        };
        write!(f, "PackedStore::{tag}(")?;
        std::fmt::Debug::fmt(self.as_slice(), f)?;
        write!(f, ")")
    }
}

impl<T: StorePod> Default for PackedStore<T> {
    fn default() -> Self {
        PackedStore::from_vec(Vec::new())
    }
}

impl<T: StorePod> From<Vec<T>> for PackedStore<T> {
    fn from(v: Vec<T>) -> Self {
        PackedStore::from_vec(v)
    }
}

/// The byte-stream flavour of [`PackedStore`] used for packed wire
/// codes ([`crate::pack::PackedTensor`]).
pub type TensorBytes = PackedStore<u8>;

/// A well-aligned non-null placeholder for zero-length stores:
/// [`STORE_ALIGN`] is a valid alignment for every `StorePod` width.
fn dangling_aligned<T>() -> NonNull<T> {
    // SAFETY: STORE_ALIGN is non-zero.
    unsafe { NonNull::new_unchecked(STORE_ALIGN as *mut T) }
}

/// An owned, immutable, 64-byte-aligned element buffer. Never grows;
/// exactly sized at construction.
struct AlignedBuf<T> {
    ptr: NonNull<T>,
    len: usize,
}

impl<T: StorePod> AlignedBuf<T> {
    fn from_slice(src: &[T]) -> Self {
        let len = src.len();
        if len == 0 {
            return AlignedBuf {
                ptr: dangling_aligned::<T>(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0).
        let raw = unsafe { std::alloc::alloc(layout) } as *mut T;
        let Some(ptr) = NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        // SAFETY: freshly allocated for `len` elements, `src` is a
        // valid source of the same length, regions cannot overlap.
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), ptr.as_ptr(), len) };
        AlignedBuf { ptr, len }
    }

    fn as_slice(&self) -> &[T] {
        // SAFETY: `ptr` is valid for `len` initialized elements for the
        // life of the buffer (or a well-aligned dangling pointer when
        // `len == 0`, which `from_raw_parts` permits).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    fn layout(len: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(len * std::mem::size_of::<T>(), STORE_ALIGN)
            .expect("store size overflows layout")
    }
}

impl<T> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            let layout = std::alloc::Layout::from_size_align(
                self.len * std::mem::size_of::<T>(),
                STORE_ALIGN,
            )
            .expect("layout was valid at allocation");
            // SAFETY: allocated in `from_slice` with this exact layout.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr() as *mut u8, layout) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_stores_are_64_byte_aligned() {
        for len in [0usize, 1, 7, 64, 1000] {
            let s: PackedStore<i8> = PackedStore::from_vec(vec![3i8; len]);
            assert_eq!(s.as_ptr() as usize % STORE_ALIGN, 0, "len={len}");
            assert_eq!(s.len(), len);
            assert!(!s.is_borrowed());
            assert_eq!(&*s, vec![3i8; len].as_slice());
        }
        let wide: PackedStore<i16> = PackedStore::from_vec(vec![-300i16; 9]);
        assert_eq!(wide.as_ptr() as usize % STORE_ALIGN, 0);
        assert_eq!(wide[8], -300);
    }

    #[test]
    fn owned_clone_copies_and_compares_by_content() {
        let a: PackedStore<i32> = PackedStore::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a.as_ptr(), b.as_ptr(), "owned clone must not alias");
        let c: PackedStore<i32> = vec![1, 2, 4].into();
        assert_ne!(a, c);
    }

    #[test]
    fn borrowed_shares_owner_and_outlives_the_original_handle() {
        // A 64-aligned owned store stands in for a file mapping.
        let bytes: Vec<u8> = (0..128u8).collect();
        let owner = Arc::new(PackedStore::<u8>::from_vec(bytes.clone()));
        let view = unsafe {
            PackedStore::<i16>::borrowed(owner.as_slice(), owner.clone()).expect("aligned")
        };
        assert!(view.is_borrowed());
        assert_eq!(view.len(), 64);
        assert_eq!(view[0], i16::from_le_bytes([0, 1]));
        // Dropping the original Arc handle must not invalidate the view
        // or its clones: they hold their own owner refs.
        let clone = view.clone();
        drop(owner);
        assert_eq!(clone.as_ptr(), view.as_ptr(), "borrowed clone aliases");
        assert_eq!(view[63], i16::from_le_bytes([126, 127]));
        assert_eq!(clone, view);
    }

    #[test]
    fn borrowed_rejects_misaligned_and_ragged_ranges() {
        let owner = Arc::new(PackedStore::<u8>::from_vec(vec![0u8; 64]));
        // Offset 1 breaks the 64-byte base alignment.
        let misaligned =
            unsafe { PackedStore::<i8>::borrowed(&owner.as_slice()[1..], owner.clone()) };
        assert!(misaligned.is_none());
        // 63 bytes is not a whole number of i16 elements.
        let ragged =
            unsafe { PackedStore::<i16>::borrowed(&owner.as_slice()[..63], owner.clone()) };
        assert!(ragged.is_none());
        // An empty aligned range is fine.
        let empty = unsafe {
            PackedStore::<i32>::borrowed(&owner.as_slice()[..0], owner.clone()).expect("empty ok")
        };
        assert!(empty.is_empty());
        assert_eq!(empty.as_ptr() as usize % STORE_ALIGN, 0);
    }

    #[test]
    fn borrowed_equals_owned_with_same_content() {
        let owner = Arc::new(PackedStore::<u8>::from_vec((0..64).collect()));
        let view = unsafe { PackedStore::<u8>::borrowed(owner.as_slice(), owner.clone()).unwrap() };
        let owned = PackedStore::<u8>::from_vec((0..64).collect());
        assert_eq!(view, owned);
        assert!(format!("{view:?}").starts_with("PackedStore::Borrowed("));
        assert!(format!("{owned:?}").starts_with("PackedStore::Owned("));
    }

    #[test]
    fn stores_move_across_threads() {
        let owner = Arc::new(PackedStore::<u8>::from_vec(vec![9u8; 64]));
        let view = unsafe { PackedStore::<u8>::borrowed(owner.as_slice(), owner.clone()).unwrap() };
        let handle = std::thread::spawn(move || view.iter().map(|&b| b as usize).sum::<usize>());
        assert_eq!(handle.join().unwrap(), 9 * 64);
    }
}
