//! Scale calibration and (fake-)quantization (paper Eq. (2) and Sec. IV-C).
//!
//! A [`Quantizer`] binds a [`Codec`] to a scale factor `s` and implements
//! `x ↦ s · Dequant[Clamp(Quant(x/s))]`. Calibration searches the clipping
//! range for the scale minimising MSE — the "range clipping method that
//! determines the clipping range by minimizing the MSE" of Algorithm 2
//! line 5 (`ArgminMSE`).
//!
//! [`TensorQuantizer`] lifts this to tensors with the paper's granularities
//! (Sec. II-B): per-output-channel scales for weights, per-tensor scales for
//! activations.

use crate::dtype::{Codec, DataType};
use crate::QuantError;
use ant_tensor::{stats, Tensor};

/// Strategy for choosing the clipping range (and hence the scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClipSearch {
    /// No clipping: scale maps the maximum absolute value onto the lattice
    /// maximum.
    MaxAbs,
    /// Grid search: evaluate `steps` clip candidates `c_k = max_abs · k /
    /// steps` and keep the one with minimum MSE (the paper's `ArgminMSE`).
    GridMse {
        /// Number of clip candidates (≥ 1). 64–128 reproduces the paper's
        /// behaviour; larger is slower and rarely better.
        steps: usize,
    },
}

impl Default for ClipSearch {
    fn default() -> Self {
        ClipSearch::GridMse { steps: 64 }
    }
}

/// A calibrated scalar quantizer: codec + scale.
#[derive(Debug, Clone)]
pub struct Quantizer {
    codec: Codec,
    scale: f32,
}

impl Quantizer {
    /// Creates a quantizer with an explicit scale (no calibration).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] for invalid types (via
    /// [`Codec::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive finite number.
    pub fn with_scale(dtype: DataType, scale: f32) -> Result<Self, QuantError> {
        assert!(scale.is_finite() && scale > 0.0, "invalid scale {scale}");
        Ok(Quantizer {
            codec: Codec::new(dtype)?,
            scale,
        })
    }

    /// Calibrates a quantizer on `data`, returning it with the achieved MSE.
    ///
    /// # Errors
    ///
    /// * [`QuantError::EmptyCalibration`] for empty data,
    /// * [`QuantError::NonFiniteData`] if data contains NaN/inf,
    /// * [`QuantError::SignednessMismatch`] when an unsigned codec sees
    ///   negative data (the converse — signed codec on non-negative data —
    ///   is allowed, merely wasteful, matching the paper's use of unsigned
    ///   types only after ReLU).
    pub fn fit(
        dtype: DataType,
        data: &[f32],
        search: ClipSearch,
    ) -> Result<(Self, f64), QuantError> {
        let codec = Codec::new(dtype)?;
        if data.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(QuantError::NonFiniteData);
        }
        let mut min = f32::INFINITY;
        let mut max_abs = 0.0f32;
        for &x in data {
            min = min.min(x);
            max_abs = max_abs.max(x.abs());
        }
        if !dtype.is_signed() && min < 0.0 {
            return Err(QuantError::SignednessMismatch {
                codec_signed: dtype.is_signed(),
                data_min: min,
            });
        }
        if max_abs == 0.0 {
            // All-zero tensor: any positive scale represents it exactly.
            let q = Quantizer { codec, scale: 1.0 };
            return Ok((q, 0.0));
        }
        let steps = match search {
            ClipSearch::MaxAbs => 1,
            ClipSearch::GridMse { steps } => steps.max(1),
        };
        let mut best_scale = max_abs / codec.max_value();
        let mut best_mse = f64::INFINITY;
        for k in (1..=steps).rev() {
            let clip = max_abs * k as f32 / steps as f32;
            let scale = clip / codec.max_value();
            if scale <= 0.0 || !scale.is_finite() {
                continue;
            }
            let mse = mse_for_scale(&codec, data, scale);
            if mse < best_mse {
                best_mse = mse;
                best_scale = scale;
            }
        }
        Ok((
            Quantizer {
                codec,
                scale: best_scale,
            },
            best_mse,
        ))
    }

    /// The data type being quantized to.
    pub fn dtype(&self) -> DataType {
        self.codec.dtype()
    }

    /// The calibrated scale factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The underlying codec.
    pub fn codec(&self) -> &Codec {
        &self.codec
    }

    /// Quantize-then-dequantize a single value (fake quantization).
    pub fn quantize_dequantize(&self, x: f32) -> f32 {
        self.codec.snap(x / self.scale) * self.scale
    }

    /// Fake-quantizes a whole tensor, returning a new tensor whose values
    /// all lie on the scaled lattice.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        t.map(|x| self.quantize_dequantize(x))
    }

    /// Fake-quantizes a slice in place.
    pub fn apply_slice(&self, data: &mut [f32]) {
        for x in data {
            *x = self.quantize_dequantize(*x);
        }
    }

    /// MSE of fake-quantizing `data` with the current scale.
    pub fn mse(&self, data: &[f32]) -> f64 {
        mse_for_scale(&self.codec, data, self.scale)
    }
}

fn mse_for_scale(codec: &Codec, data: &[f32], scale: f32) -> f64 {
    let mut acc = 0.0f64;
    for &x in data {
        let q = codec.snap(x / scale) * scale;
        let d = (x - q) as f64;
        acc += d * d;
    }
    acc / data.len() as f64
}

/// Quantization granularity (paper Sec. II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One scale for the whole tensor (used for activations).
    PerTensor,
    /// One scale per leading-axis channel (used for weights; "per-channel
    /// weight quantization ... without additional hardware overhead").
    PerChannel,
}

/// A calibrated tensor-level quantizer with per-tensor or per-channel
/// scales.
#[derive(Debug, Clone)]
pub struct TensorQuantizer {
    codec: Codec,
    granularity: Granularity,
    scales: Vec<f32>,
}

impl TensorQuantizer {
    /// Calibrates on `tensor` at the requested granularity and returns the
    /// quantizer together with the whole-tensor MSE.
    ///
    /// # Errors
    ///
    /// Propagates the conditions of [`Quantizer::fit`].
    pub fn fit(
        dtype: DataType,
        tensor: &Tensor,
        granularity: Granularity,
        search: ClipSearch,
    ) -> Result<(Self, f64), QuantError> {
        let codec = Codec::new(dtype)?;
        match granularity {
            Granularity::PerTensor => {
                let (q, mse) = Quantizer::fit(dtype, tensor.as_slice(), search)?;
                Ok((
                    TensorQuantizer {
                        codec,
                        granularity,
                        scales: vec![q.scale()],
                    },
                    mse,
                ))
            }
            Granularity::PerChannel => {
                let channels = tensor.num_channels();
                let mut scales = Vec::with_capacity(channels);
                let mut err_sum = 0.0f64;
                let mut n = 0usize;
                for c in 0..channels {
                    let ch = tensor.channel(c)?;
                    let (q, mse) = Quantizer::fit(dtype, ch, search)?;
                    scales.push(q.scale());
                    err_sum += mse * ch.len() as f64;
                    n += ch.len();
                }
                let mse = if n == 0 { 0.0 } else { err_sum / n as f64 };
                Ok((
                    TensorQuantizer {
                        codec,
                        granularity,
                        scales,
                    },
                    mse,
                ))
            }
        }
    }

    /// Reconstructs a quantizer from previously calibrated scales without
    /// refitting — the deserialization path used by plan compilers and
    /// selection caches that persist `(dtype, granularity, scales)`
    /// decisions.
    ///
    /// # Errors
    ///
    /// * [`QuantError::UnsupportedBitWidth`] for invalid types,
    /// * [`QuantError::EmptyCalibration`] when `scales` is empty,
    /// * [`QuantError::ChannelMismatch`] when a per-tensor granularity is
    ///   given more than one scale,
    /// * [`QuantError::NonFiniteData`] when any scale is non-positive or
    ///   non-finite.
    pub fn from_scales(
        dtype: DataType,
        granularity: Granularity,
        scales: Vec<f32>,
    ) -> Result<Self, QuantError> {
        let codec = Codec::new(dtype)?;
        if scales.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        if granularity == Granularity::PerTensor && scales.len() != 1 {
            return Err(QuantError::ChannelMismatch {
                expected: 1,
                actual: scales.len(),
            });
        }
        if scales.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err(QuantError::NonFiniteData);
        }
        Ok(TensorQuantizer {
            codec,
            granularity,
            scales,
        })
    }

    /// The quantized data type.
    pub fn dtype(&self) -> DataType {
        self.codec.dtype()
    }

    /// The underlying codec.
    pub fn codec(&self) -> &Codec {
        &self.codec
    }

    /// The calibration granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// The calibrated scales (length 1 for per-tensor).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Fake-quantizes `tensor`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ChannelMismatch`] when a per-channel quantizer
    /// is applied to a tensor with a different channel count.
    pub fn apply(&self, tensor: &Tensor) -> Result<Tensor, QuantError> {
        match self.granularity {
            Granularity::PerTensor => {
                let s = self.scales[0];
                Ok(tensor.map(|x| self.codec.snap(x / s) * s))
            }
            Granularity::PerChannel => {
                if tensor.num_channels() != self.scales.len() {
                    return Err(QuantError::ChannelMismatch {
                        expected: self.scales.len(),
                        actual: tensor.num_channels(),
                    });
                }
                let mut out = tensor.clone();
                for (c, &s) in self.scales.iter().enumerate() {
                    for x in out.channel_mut(c)? {
                        *x = self.codec.snap(*x / s) * s;
                    }
                }
                Ok(out)
            }
        }
    }

    /// MSE of fake-quantizing `tensor`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TensorQuantizer::apply`].
    pub fn mse(&self, tensor: &Tensor) -> Result<f64, QuantError> {
        let q = self.apply(tensor)?;
        Ok(stats::mse(tensor, &q)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_tensor::dist::{sample_tensor, sample_vec, Distribution};

    #[test]
    fn fit_rejects_bad_data() {
        let dt = DataType::int(4, true).unwrap();
        assert!(matches!(
            Quantizer::fit(dt, &[], ClipSearch::MaxAbs),
            Err(QuantError::EmptyCalibration)
        ));
        assert!(matches!(
            Quantizer::fit(dt, &[1.0, f32::NAN], ClipSearch::MaxAbs),
            Err(QuantError::NonFiniteData)
        ));
        let du = DataType::int(4, false).unwrap();
        assert!(matches!(
            Quantizer::fit(du, &[-1.0, 1.0], ClipSearch::MaxAbs),
            Err(QuantError::SignednessMismatch { .. })
        ));
    }

    #[test]
    fn all_zero_tensor_is_exact() {
        let dt = DataType::flint(4, false).unwrap();
        let (q, mse) = Quantizer::fit(dt, &[0.0; 16], ClipSearch::default()).unwrap();
        assert_eq!(mse, 0.0);
        assert_eq!(q.quantize_dequantize(0.0), 0.0);
    }

    #[test]
    fn maxabs_scale_maps_max_to_lattice_max() {
        let dt = DataType::int(4, true).unwrap();
        let data = [-3.5, 1.0, 7.0];
        let (q, _) = Quantizer::fit(dt, &data, ClipSearch::MaxAbs).unwrap();
        assert!((q.scale() - 1.0).abs() < 1e-6);
        assert_eq!(q.quantize_dequantize(7.0), 7.0);
    }

    #[test]
    fn grid_search_never_worse_than_maxabs() {
        let data = sample_vec(Distribution::Laplace { mu: 0.0, b: 1.0 }, 4096, 11);
        for dt in [
            DataType::int(4, true).unwrap(),
            DataType::flint(4, true).unwrap(),
            DataType::pot(4, true).unwrap(),
            DataType::float(4, true).unwrap(),
        ] {
            let (_, mse_max) = Quantizer::fit(dt, &data, ClipSearch::MaxAbs).unwrap();
            let (_, mse_grid) =
                Quantizer::fit(dt, &data, ClipSearch::GridMse { steps: 64 }).unwrap();
            assert!(
                mse_grid <= mse_max + 1e-12,
                "{dt}: grid {mse_grid} > maxabs {mse_max}"
            );
        }
    }

    #[test]
    fn clipping_helps_heavy_tails_on_int() {
        // For Laplace data, int benefits from clipping below max (paper
        // Sec. III-A); verify the grid picks clip < max_abs.
        let data = sample_vec(Distribution::Laplace { mu: 0.0, b: 1.0 }, 8192, 13);
        let dt = DataType::int(4, true).unwrap();
        let (q, _) = Quantizer::fit(dt, &data, ClipSearch::GridMse { steps: 128 }).unwrap();
        let max_abs = data.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        assert!(
            q.scale() * 7.0 < max_abs * 0.95,
            "expected clipping below max"
        );
    }

    #[test]
    fn fake_quant_output_is_on_lattice() {
        let data = sample_vec(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            1024,
            17,
        );
        let dt = DataType::flint(4, true).unwrap();
        let (q, _) = Quantizer::fit(dt, &data, ClipSearch::default()).unwrap();
        let lattice: Vec<f32> = q.codec().lattice().iter().map(|&v| v * q.scale()).collect();
        for &x in &data {
            let y = q.quantize_dequantize(x);
            assert!(
                lattice
                    .iter()
                    .any(|&l| (l - y).abs() < 1e-6 * (1.0 + l.abs())),
                "{y} not on lattice"
            );
        }
    }

    #[test]
    fn fake_quant_is_idempotent() {
        let data = sample_vec(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            512,
            19,
        );
        for dt in [
            DataType::int(4, true).unwrap(),
            DataType::flint(4, true).unwrap(),
            DataType::pot(4, true).unwrap(),
        ] {
            let (q, _) = Quantizer::fit(dt, &data, ClipSearch::default()).unwrap();
            for &x in &data {
                let once = q.quantize_dequantize(x);
                let twice = q.quantize_dequantize(once);
                assert!(
                    (once - twice).abs() < 1e-5 * (1.0 + once.abs()),
                    "{dt}: {x} → {once} → {twice}"
                );
            }
        }
    }

    #[test]
    fn per_channel_beats_per_tensor_on_heterogeneous_channels() {
        // Two channels with very different magnitudes: a per-tensor scale
        // is forced to cover the wide channel and crushes the narrow one to
        // zero, while per-channel scales fit each (paper Sec. II-B).
        let mut t = Tensor::zeros(&[2, 256]);
        let a = sample_vec(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            256,
            23,
        );
        let b = sample_vec(
            Distribution::Gaussian {
                mean: 0.0,
                std: 100.0,
            },
            256,
            29,
        );
        t.channel_mut(0).unwrap().copy_from_slice(&a);
        t.channel_mut(1).unwrap().copy_from_slice(&b);
        let dt = DataType::int(4, true).unwrap();
        let (qt, _) =
            TensorQuantizer::fit(dt, &t, Granularity::PerTensor, ClipSearch::default()).unwrap();
        let (qc, _) =
            TensorQuantizer::fit(dt, &t, Granularity::PerChannel, ClipSearch::default()).unwrap();
        assert_eq!(qc.scales().len(), 2);
        // Compare reconstruction of the *narrow* channel.
        let rt = qt.apply(&t).unwrap();
        let rc = qc.apply(&t).unwrap();
        let err = |r: &Tensor| {
            ant_tensor::stats::mse_slices(r.channel(0).unwrap(), t.channel(0).unwrap())
        };
        assert!(
            err(&rc) < err(&rt) * 0.1,
            "per-channel {} vs per-tensor {}",
            err(&rc),
            err(&rt)
        );
    }

    #[test]
    fn per_channel_apply_checks_channels() {
        let t = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[4, 8],
            31,
        );
        let dt = DataType::int(4, true).unwrap();
        let (q, _) =
            TensorQuantizer::fit(dt, &t, Granularity::PerChannel, ClipSearch::default()).unwrap();
        assert_eq!(q.scales().len(), 4);
        let wrong = Tensor::zeros(&[3, 8]);
        assert!(matches!(
            q.apply(&wrong),
            Err(QuantError::ChannelMismatch { .. })
        ));
    }

    #[test]
    fn tensor_quantizer_mse_matches_reported() {
        let t = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[8, 64],
            37,
        );
        let dt = DataType::flint(4, true).unwrap();
        let (q, fitted_mse) =
            TensorQuantizer::fit(dt, &t, Granularity::PerTensor, ClipSearch::default()).unwrap();
        let apply_mse = q.mse(&t).unwrap();
        assert!((fitted_mse - apply_mse).abs() < 1e-9);
    }

    #[test]
    fn from_scales_roundtrips_fitted_quantizer() {
        let t = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[4, 64],
            41,
        );
        let dt = DataType::flint(4, true).unwrap();
        let (q, _) =
            TensorQuantizer::fit(dt, &t, Granularity::PerChannel, ClipSearch::default()).unwrap();
        let q2 =
            TensorQuantizer::from_scales(dt, Granularity::PerChannel, q.scales().to_vec()).unwrap();
        assert_eq!(q.apply(&t).unwrap(), q2.apply(&t).unwrap());
        assert_eq!(q2.granularity(), Granularity::PerChannel);
        assert_eq!(q2.codec().dtype(), dt);
    }

    #[test]
    fn from_scales_validates_inputs() {
        let dt = DataType::int(4, true).unwrap();
        assert!(matches!(
            TensorQuantizer::from_scales(dt, Granularity::PerTensor, vec![]),
            Err(QuantError::EmptyCalibration)
        ));
        assert!(matches!(
            TensorQuantizer::from_scales(dt, Granularity::PerTensor, vec![1.0, 2.0]),
            Err(QuantError::ChannelMismatch { .. })
        ));
        assert!(matches!(
            TensorQuantizer::from_scales(dt, Granularity::PerChannel, vec![1.0, -2.0]),
            Err(QuantError::NonFiniteData)
        ));
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn with_scale_rejects_nonpositive() {
        let _ = Quantizer::with_scale(DataType::int(4, true).unwrap(), -1.0);
    }
}
