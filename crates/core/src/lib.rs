//! # ANT: Adaptive Numerical Data Type for Low-bit DNN Quantization
//!
//! This crate is the core of a Rust reproduction of *"ANT: Exploiting
//! Adaptive Numerical Data Type for Low-bit Deep Neural Network
//! Quantization"* (Guo et al., MICRO 2022). It implements:
//!
//! * [`flint`] — the paper's composite fixed-length primitive: first-one
//!   coded exponent/mantissa split that is `int`-like for mid-range values
//!   and `PoT`-like at the extremes (Sec. IV-A, Tables II/III),
//! * [`DataType`]/[`Codec`] — the unified view over the four primitives
//!   (`int`, `PoT`, `float`, `flint`) at any supported width/signedness,
//! * [`Quantizer`]/[`TensorQuantizer`] — min-MSE range clipping (the
//!   `ArgminMSE` of Algorithm 2) with per-tensor and per-channel scales,
//! * [`select`] — the inter-tensor type-selection algorithm (Algorithm 2),
//! * [`mixed`] — the layer-wise 4→8-bit mixed-precision controller,
//! * [`baselines`] — AdaptiveFloat, BiScaled, GOBO and OLAccel, the
//!   quantization schemes ANT is evaluated against,
//! * [`pack`] — fixed-length bit packing (the aligned-memory property of
//!   Table I),
//! * [`store`] — owned-or-borrowed 64-byte-aligned element storage, the
//!   ownership substrate that lets a serving runtime execute packed
//!   weights directly out of a memory-mapped artifact,
//! * [`posit`] — a `posit<n, es>` codec for the Sec. VIII comparison
//!   against variable-length tapered formats.
//!
//! # Quickstart
//!
//! ```
//! use ant_core::select::{select_type_auto, PrimitiveCombo};
//! use ant_core::{ClipSearch, Granularity};
//! use ant_tensor::dist::{sample_tensor, Distribution};
//!
//! // A Gaussian weight tensor, as most DNN layers exhibit (paper Fig. 1).
//! let w = sample_tensor(Distribution::Gaussian { mean: 0.0, std: 0.02 }, &[64, 64], 1);
//!
//! // Algorithm 2: pick the best 4-bit primitive and calibrate scales.
//! let sel = select_type_auto(
//!     &w,
//!     PrimitiveCombo::IntPotFlint,
//!     4,
//!     Granularity::PerChannel,
//!     ClipSearch::default(),
//! )?;
//! let quantized = sel.quantizer.apply(&w)?;
//! assert_eq!(quantized.dims(), w.dims());
//! # Ok::<(), ant_core::QuantError>(())
//! ```

#![deny(missing_docs)]

mod dtype;
mod error;
mod quantizer;

pub mod baselines;
pub mod flint;
pub mod minifloat;
pub mod mixed;
pub mod pack;
pub mod posit;
pub mod select;
pub mod store;

pub use dtype::{Codec, DataType, PrimitiveType};
pub use error::QuantError;
pub use quantizer::{ClipSearch, Granularity, Quantizer, TensorQuantizer};
