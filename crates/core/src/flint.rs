//! The `flint` primitive data type (paper Sec. IV-A).
//!
//! `flint` is a fixed-length b-bit encoding whose exponent/mantissa split
//! varies *per value interval* using first-one coding: middle-range values
//! get the most mantissa bits (int-like precision) while very small and very
//! large values get none (PoT-like range). For b = 4 unsigned this yields the
//! paper's Table II lattice `{0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 24,
//! 32, 64}`.
//!
//! Three views of a code are provided, all bit-exact against the paper:
//!
//! * [`Flint::decode`] — the real value (Table II),
//! * [`Flint::decode_int`] — the int-based `(base integer, exponent)`
//!   decomposition of Table III / Fig. 6 (`value = base << exp`),
//! * [`Flint::decode_float`] — the float-based `(exponent, mantissa)` fields
//!   of Fig. 5 / Eq. (3)–(4).
//!
//! Encoding follows Algorithm 1 exactly (integer pre-quantization, interval
//! lookup, per-interval mantissa rounding) including the hardware's
//! double-rounding behaviour, with mantissa-overflow promotion to the next
//! interval.

use crate::QuantError;

/// Supported flint bit widths (code width including the interval MSB, not
/// counting any sign bit).
pub const MIN_BITS: u32 = 3;
/// Maximum supported flint bit width.
pub const MAX_BITS: u32 = 8;

/// An unsigned b-bit flint codec.
///
/// Signed tensors use a sign bit plus a `(b-1)`-bit unsigned magnitude
/// (paper Sec. V-C); that wrapping lives in [`crate::DataType`].
///
/// # Example
///
/// ```
/// use ant_core::flint::Flint;
///
/// let f4 = Flint::new(4)?;
/// assert_eq!(f4.decode(0b1110), 12);          // paper's worked example
/// assert_eq!(f4.encode_int(11), 0b1110);      // 11 rounds to 12
/// assert_eq!(f4.max_value(), 64);
/// # Ok::<(), ant_core::QuantError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flint {
    bits: u32,
}

/// The int-based decomposition of a flint code: `value = base << exp`
/// (paper Table III). `base` fits in `bits` bits and `exp` is even.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntDecode {
    /// Base integer (`bi` in the paper).
    pub base: u32,
    /// Left-shift amount (`e` in the paper).
    pub exp: u32,
}

/// The float-based decomposition of a flint code (paper Fig. 5):
/// `value = 2^(exp - 1) * (1 + mantissa / 2^(bits - 1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatDecode {
    /// Biased exponent, i.e. the interval index `i`; real exponent is
    /// `i - 1` (the paper's bias is −1).
    pub exp: u32,
    /// Mantissa left-aligned into `bits - 1` fraction bits.
    pub mantissa: u32,
}

impl Flint {
    /// Creates a codec for `bits`-bit unsigned flint.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] outside
    /// [`MIN_BITS`]..=[`MAX_BITS`].
    pub fn new(bits: u32) -> Result<Self, QuantError> {
        if !(MIN_BITS..=MAX_BITS).contains(&bits) {
            return Err(QuantError::UnsupportedBitWidth { bits });
        }
        Ok(Flint { bits })
    }

    /// The code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of distinct codes, `2^bits`.
    pub fn num_codes(&self) -> u32 {
        1 << self.bits
    }

    /// Largest representable value, `2^(2 bits − 2)` (paper Sec. IV-A:
    /// a b-bit flint has `2b` first-one exponent codes and the value
    /// interval `[0, 2^(2b−2)]`).
    pub fn max_value(&self) -> u64 {
        1u64 << (2 * self.bits - 2)
    }

    /// Interval index of a non-zero integer value: `i = floor(log2 e) + 1`
    /// (Algorithm 1 line 7).
    ///
    /// # Panics
    ///
    /// Panics if `e == 0` or `e > max_value()`.
    pub fn interval_index(&self, e: u64) -> u32 {
        assert!(
            e > 0 && e <= self.max_value(),
            "interval_index: {e} out of range"
        );
        e.ilog2() + 1
    }

    /// Number of mantissa bits available in interval `i`.
    ///
    /// Lower intervals (`i < bits`) behave like `int` with `i − 1` usable
    /// fraction bits; upper intervals shrink back down to 0 (PoT-like).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid interval (`1..=2*bits − 1`).
    pub fn mantissa_bits(&self, i: u32) -> u32 {
        let b = self.bits;
        assert!((1..=2 * b - 1).contains(&i), "invalid interval {i}");
        if i < b {
            i - 1
        } else if i <= 2 * b - 2 {
            2 * b - i - 2
        } else {
            0
        }
    }

    /// Decodes a code to its integer value (Table II).
    ///
    /// # Panics
    ///
    /// Panics if `code >= 2^bits`.
    pub fn decode(&self, code: u32) -> u64 {
        let IntDecode { base, exp } = self.decode_int(code);
        (base as u64) << exp
    }

    /// Int-based decode to `(base integer, exponent)` per paper Eq. (5)–(6)
    /// and Table III: MSB 0 keeps the low bits as an int; MSB 1 shifts the
    /// low bits left by one and derives the exponent as `2 × LZD(low)`, with
    /// the all-zero low field special-cased to `(1, 2(bits−1))`.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 2^bits`.
    pub fn decode_int(&self, code: u32) -> IntDecode {
        let b = self.bits;
        assert!(code < self.num_codes(), "code {code:#b} exceeds {b} bits");
        let low_mask = (1u32 << (b - 1)) - 1;
        let low = code & low_mask;
        if code >> (b - 1) == 0 {
            IntDecode { base: low, exp: 0 }
        } else if low == 0 {
            IntDecode {
                base: 1,
                exp: 2 * (b - 1),
            }
        } else {
            let lz = (b - 1) - (low.ilog2() + 1); // leading zeros in a (b-1)-bit field
            IntDecode {
                base: low << 1,
                exp: 2 * lz,
            }
        }
    }

    /// Float-based decode to `(exponent, mantissa)` per paper Eq. (3)–(4).
    ///
    /// The returned exponent is the interval index `i` (so the real exponent
    /// with the paper's bias of −1 is `i − 1`), and the mantissa is the low
    /// field shifted left past its first one, left-aligned in `bits − 1`
    /// fraction bits. The all-zeros code decodes to `(0, 0)` meaning zero.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 2^bits`.
    pub fn decode_float(&self, code: u32) -> FloatDecode {
        let b = self.bits;
        assert!(code < self.num_codes(), "code {code:#b} exceeds {b} bits");
        if code == 0 {
            return FloatDecode {
                exp: 0,
                mantissa: 0,
            };
        }
        let low_mask = (1u32 << (b - 1)) - 1;
        let low = code & low_mask;
        let lz = if low == 0 {
            b - 1
        } else {
            (b - 1) - (low.ilog2() + 1)
        };
        let exp = if code >> (b - 1) == 0 {
            // Eq. (3), b3 = 0 case: exponent = (b-1) - LZD(low).
            (b - 1) - lz
        } else {
            // Eq. (3), b3 = 1 case: exponent = b + LZD(low).
            b + lz
        };
        // Eq. (4): mantissa = low << (LZD + 1), truncated to b-1 bits.
        let mantissa = (low << (lz + 1)) & low_mask;
        FloatDecode { exp, mantissa }
    }

    /// Real value of a [`FloatDecode`], for checking the two decoders agree.
    pub fn float_decode_value(&self, fd: FloatDecode) -> f64 {
        if fd.exp == 0 && fd.mantissa == 0 {
            return 0.0;
        }
        let frac_bits = self.bits - 1;
        let frac = 1.0 + fd.mantissa as f64 / (1u64 << frac_bits) as f64;
        // Bias of −1: real exponent is interval index − 1.
        frac * 2f64.powi(fd.exp as i32 - 1)
    }

    /// Encodes an integer value `e ∈ [0, max_value()]` to the nearest flint
    /// code, following Algorithm 1: interval lookup, mantissa rounding
    /// (round-half-away-from-zero) and promotion to the next interval on
    /// mantissa overflow.
    ///
    /// # Panics
    ///
    /// Panics if `e > max_value()`.
    pub fn encode_int(&self, e: u64) -> u32 {
        let b = self.bits;
        assert!(
            e <= self.max_value(),
            "encode_int: {e} exceeds max {}",
            self.max_value()
        );
        if e == 0 {
            return 0;
        }
        let mut i = self.interval_index(e);
        // In the int region the value is already on the lattice.
        if i < b {
            return e as u32;
        }
        let mut e = e;
        loop {
            if i == 2 * b - 1 {
                return 1 << (b - 1); // the single max-value code
            }
            let mb = self.mantissa_bits(i);
            // m = round((e / 2^(i-1) − 1) · 2^mb)   (Algorithm 1 line 10)
            let base = 1u64 << (i - 1);
            let m = (((e - base) as f64 / base as f64) * (1u64 << mb) as f64).round() as u64;
            if m >= (1u64 << mb) {
                // Mantissa overflow: the value rounds up onto the next
                // interval's first lattice point, 2^i.
                e = 1u64 << i;
                i += 1;
                continue;
            }
            // Code layout: MSB 1, (i−b) zeros, a 1 marker, then mb mantissa
            // bits — except the int region handled above.
            return (1u32 << (b - 1)) | (1u32 << mb) | m as u32;
        }
    }

    /// Quantizes a real value `x ≥ 0` with scale factor `scale`, returning
    /// the flint code (the full `FlintQuant` of Algorithm 1: integer
    /// pre-quantization with clamping, then [`Flint::encode_int`]).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive finite number.
    pub fn quantize(&self, x: f32, scale: f32) -> u32 {
        assert!(scale.is_finite() && scale > 0.0, "invalid scale {scale}");
        let e = (x / scale).round().max(0.0) as u64;
        self.encode_int(e.min(self.max_value()))
    }

    /// Dequantizes a code back to the real domain.
    pub fn dequantize(&self, code: u32, scale: f32) -> f32 {
        self.decode(code) as f32 * scale
    }

    /// All representable values in code order (the Table II "Value in
    /// Decimal" column when sorted).
    pub fn value_table(&self) -> Vec<u64> {
        (0..self.num_codes()).map(|c| self.decode(c)).collect()
    }

    /// The sorted, deduplicated set of representable values.
    pub fn lattice(&self) -> Vec<u64> {
        let mut v = self.value_table();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f4() -> Flint {
        Flint::new(4).unwrap()
    }

    #[test]
    fn rejects_unsupported_widths() {
        assert!(Flint::new(2).is_err());
        assert!(Flint::new(9).is_err());
        for b in MIN_BITS..=MAX_BITS {
            assert!(Flint::new(b).is_ok());
        }
    }

    #[test]
    fn table_ii_value_table_exact() {
        // Paper Table II: 4-bit unsigned flint with bias −1.
        let expect: [(u32, u64); 16] = [
            (0b0000, 0),
            (0b0001, 1),
            (0b0010, 2),
            (0b0011, 3),
            (0b0100, 4),
            (0b0101, 5),
            (0b0110, 6),
            (0b0111, 7),
            (0b1100, 8),
            (0b1101, 10),
            (0b1110, 12),
            (0b1111, 14),
            (0b1010, 16),
            (0b1011, 24),
            (0b1001, 32),
            (0b1000, 64),
        ];
        for (code, value) in expect {
            assert_eq!(f4().decode(code), value, "code {code:04b}");
        }
    }

    #[test]
    fn table_iii_int_decode_exact() {
        // Paper Table III rows.
        let f = f4();
        for code in 0b0000..=0b0111u32 {
            let d = f.decode_int(code);
            assert_eq!((d.base, d.exp), (code, 0));
        }
        for (code, base) in [(0b1100u32, 8u32), (0b1101, 10), (0b1110, 12), (0b1111, 14)] {
            let d = f.decode_int(code);
            assert_eq!((d.base, d.exp), (base, 0));
        }
        for (code, base) in [(0b1010u32, 4u32), (0b1011, 6)] {
            let d = f.decode_int(code);
            assert_eq!((d.base, d.exp), (base, 2));
        }
        let d = f.decode_int(0b1001);
        assert_eq!((d.base, d.exp), (2, 4));
        let d = f.decode_int(0b1000);
        assert_eq!((d.base, d.exp), (1, 6));
    }

    #[test]
    fn paper_worked_example_1110_is_12() {
        // Sec. IV-A: flint 1110 has exponent 4−1=3, fraction 1.5, value 12.
        let f = f4();
        assert_eq!(f.decode(0b1110), 12);
        let fd = f.decode_float(0b1110);
        assert_eq!(fd.exp, 4);
        // mantissa 110 << 1 = 100₂ left-aligned in 3 bits => fraction .100 = 0.5
        assert_eq!(fd.mantissa, 0b100);
        assert!((f.float_decode_value(fd) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example_encode_11_to_1110() {
        // Sec. IV-A encoding example: decimal 11 → interval i=4, m=round(1.5)=2,
        // code 1110 (value 12).
        assert_eq!(f4().encode_int(11), 0b1110);
        assert_eq!(f4().decode(0b1110), 12);
    }

    #[test]
    fn float_decode_agrees_with_int_decode_everywhere() {
        for b in MIN_BITS..=MAX_BITS {
            let f = Flint::new(b).unwrap();
            for code in 0..f.num_codes() {
                let via_int = f.decode(code) as f64;
                let via_float = f.float_decode_value(f.decode_float(code));
                assert_eq!(
                    via_int,
                    via_float,
                    "b={b} code={code:0width$b}",
                    width = b as usize
                );
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_on_lattice() {
        for b in MIN_BITS..=MAX_BITS {
            let f = Flint::new(b).unwrap();
            for code in 0..f.num_codes() {
                let v = f.decode(code);
                let re = f.encode_int(v);
                assert_eq!(f.decode(re), v, "b={b} code={code:b} value={v}");
            }
        }
    }

    #[test]
    fn encode_rounds_to_nearest_neighbour_of_lattice() {
        // Algorithm 1 rounds within the interval of e; verify the result is
        // always one of the two lattice neighbours and within half a step.
        for b in MIN_BITS..=MAX_BITS {
            let f = Flint::new(b).unwrap();
            let lattice = f.lattice();
            for e in 0..=f.max_value() {
                let q = f.decode(f.encode_int(e));
                let nearest = lattice
                    .iter()
                    .min_by_key(|&&v| (v as i64 - e as i64).unsigned_abs())
                    .copied()
                    .unwrap();
                let err = (q as i64 - e as i64).unsigned_abs();
                let best = (nearest as i64 - e as i64).unsigned_abs();
                // Hardware double rounding may pick the other neighbour but
                // never anything worse than the next lattice gap.
                let pos = lattice.partition_point(|&v| v < e);
                let gap = if pos == 0 || pos >= lattice.len() {
                    best
                } else {
                    lattice[pos] - lattice[pos - 1]
                };
                assert!(
                    err <= best.max(gap),
                    "b={b} e={e}: got {q} (err {err}), nearest {nearest} (err {best})"
                );
            }
        }
    }

    #[test]
    fn interval_and_mantissa_bits_match_fig3() {
        // Fig. 3: the eight interval codes 0000,0001,001x,01xx,11xx,101x,
        // 1001,1000 carry 0,0,1,2,2,1,0,0 mantissa bits; the zero code has
        // no interval index, so i = 1..7 carry 0,1,2,2,1,0,0.
        let f = f4();
        let expect = [0u32, 1, 2, 2, 1, 0, 0];
        for (i, &mb) in (1..=7u32).zip(expect.iter()) {
            assert_eq!(f.mantissa_bits(i), mb, "interval {i}");
        }
        assert_eq!(f.interval_index(1), 1);
        assert_eq!(f.interval_index(7), 3);
        assert_eq!(f.interval_index(8), 4);
        assert_eq!(f.interval_index(64), 7);
    }

    #[test]
    fn max_value_scales_with_bits() {
        for (b, max) in [
            (3u32, 16u64),
            (4, 64),
            (5, 256),
            (6, 1024),
            (7, 4096),
            (8, 16384),
        ] {
            assert_eq!(Flint::new(b).unwrap().max_value(), max);
        }
    }

    #[test]
    fn three_bit_lattice_matches_sec_v_c() {
        // Sec. V-C signed example uses the 3-bit magnitude lattice
        // {0, 1, 2, 3, 4, 6, 8, 16}.
        let f = Flint::new(3).unwrap();
        assert_eq!(f.lattice(), vec![0, 1, 2, 3, 4, 6, 8, 16]);
    }

    #[test]
    fn lattice_is_strictly_monotonic_with_unique_codes() {
        for b in MIN_BITS..=MAX_BITS {
            let f = Flint::new(b).unwrap();
            let table = f.value_table();
            let lattice = f.lattice();
            assert_eq!(
                table.len(),
                lattice.len(),
                "b={b}: duplicate decoded values"
            );
            assert_eq!(lattice.len(), f.num_codes() as usize);
        }
    }

    #[test]
    fn quantize_applies_scale_and_clamps() {
        let f = f4();
        // scale 0.5: x=6.0 → e=12 → exact code for 12.
        let c = f.quantize(6.0, 0.5);
        assert_eq!(f.decode(c), 12);
        assert_eq!(f.dequantize(c, 0.5), 6.0);
        // Above range clamps to max.
        assert_eq!(f.decode(f.quantize(1e6, 0.5)), 64);
        // Negative clamps to zero (unsigned codec).
        assert_eq!(f.quantize(-3.0, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn quantize_rejects_bad_scale() {
        f4().quantize(1.0, 0.0);
    }

    #[test]
    fn mantissa_overflow_promotes_interval() {
        let f = f4();
        // e=15: interval 4 mantissa round((15/8-1)*4)=round(3.5)=4 overflows
        // → promoted to 16.
        assert_eq!(f.decode(f.encode_int(15)), 16);
        // e=63: interval 6, m=round((63/32-1)*1)=1 overflows → 64.
        assert_eq!(f.decode(f.encode_int(63)), 64);
    }

    #[test]
    fn int_decode_base_fits_hardware_width() {
        // Fig. 6: the decoded base integer is a bits-wide quantity.
        for b in MIN_BITS..=MAX_BITS {
            let f = Flint::new(b).unwrap();
            for code in 0..f.num_codes() {
                let d = f.decode_int(code);
                assert!(d.base < (1 << b), "b={b} code={code:b} base={}", d.base);
                assert_eq!(d.exp % 2, 0, "exponent is always even (Eq. 6)");
            }
        }
    }
}
