use std::error::Error;
use std::fmt;

/// Error type for quantization operations in `ant-core`.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A codec was requested at a bit width it does not support.
    UnsupportedBitWidth {
        /// The offending width.
        bits: u32,
    },
    /// A float format's field widths are inconsistent with its total width.
    InvalidFloatFormat {
        /// Exponent field width.
        exp_bits: u32,
        /// Mantissa field width.
        man_bits: u32,
    },
    /// The data to calibrate on is empty.
    EmptyCalibration,
    /// The data contains non-finite values (NaN or infinity).
    NonFiniteData,
    /// A signed codec was applied to data requiring the opposite signedness,
    /// or vice versa (e.g. unsigned codec over negative data).
    SignednessMismatch {
        /// Whether the codec is signed.
        codec_signed: bool,
        /// Minimum value observed in the data.
        data_min: f32,
    },
    /// No candidate data type was supplied to the selection algorithm.
    NoCandidates,
    /// A per-channel operation was requested on an incompatible tensor.
    ChannelMismatch {
        /// Channels the quantizer was calibrated for.
        expected: usize,
        /// Channels of the tensor supplied.
        actual: usize,
    },
    /// An underlying tensor operation failed.
    Tensor(ant_tensor::TensorError),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::UnsupportedBitWidth { bits } => {
                write!(f, "unsupported bit width {bits}")
            }
            QuantError::InvalidFloatFormat { exp_bits, man_bits } => {
                write!(f, "invalid float format E{exp_bits}M{man_bits}")
            }
            QuantError::EmptyCalibration => write!(f, "calibration data is empty"),
            QuantError::NonFiniteData => write!(f, "data contains NaN or infinity"),
            QuantError::SignednessMismatch {
                codec_signed,
                data_min,
            } => write!(
                f,
                "signedness mismatch: codec signed={codec_signed}, data min={data_min}"
            ),
            QuantError::NoCandidates => write!(f, "candidate type list is empty"),
            QuantError::ChannelMismatch { expected, actual } => {
                write!(
                    f,
                    "per-channel quantizer has {expected} channels but tensor has {actual}"
                )
            }
            QuantError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for QuantError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ant_tensor::TensorError> for QuantError {
    fn from(e: ant_tensor::TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_for_all_variants() {
        let variants: Vec<QuantError> = vec![
            QuantError::UnsupportedBitWidth { bits: 99 },
            QuantError::InvalidFloatFormat {
                exp_bits: 0,
                man_bits: 9,
            },
            QuantError::EmptyCalibration,
            QuantError::NonFiniteData,
            QuantError::SignednessMismatch {
                codec_signed: false,
                data_min: -1.0,
            },
            QuantError::NoCandidates,
            QuantError::ChannelMismatch {
                expected: 4,
                actual: 2,
            },
            QuantError::Tensor(ant_tensor::TensorError::Empty),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn tensor_error_converts_and_sources() {
        let e: QuantError = ant_tensor::TensorError::Empty.into();
        assert!(matches!(e, QuantError::Tensor(_)));
        assert!(e.source().is_some());
        assert!(QuantError::EmptyCalibration.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantError>();
    }
}
