//! Packed quantized tensors: the memory-system view of ANT's fixed-length
//! claim (paper Table I, "Aligned" column).
//!
//! ANT stores every element of a tensor in exactly `bits` bits, so a
//! tensor packs into `⌈n·bits/8⌉` bytes with direct random access — no
//! decoder between DRAM and the PE array boundary. [`PackedTensor`] holds
//! that representation together with its scale(s). For contrast,
//! [`variable_length_size`] computes the storage an outlier-aware
//! variable-length scheme needs, including the index metadata that breaks
//! alignment (Sec. III-B's argument against OLAccel/GOBO-style encodings).
//!
//! The byte stream is also the *serialization* format: model artifacts
//! persist [`PackedTensor::bytes`]/[`PackedTensor::scales`]/
//! [`PackedTensor::dims`] verbatim and reconstruct through
//! [`PackedTensor::from_bytes`] without re-encoding any float, which is
//! what makes a reloaded plan's wire codes bit-identical to the saved
//! ones (see `docs/format.md` for the normative packing order and
//! endianness rules).
//!
//! ```
//! use ant_core::pack::PackedTensor;
//! use ant_core::DataType;
//!
//! let dt = DataType::flint(4, true)?;
//! let p = PackedTensor::pack_with_dims(dt, &(0..12).collect::<Vec<_>>(), vec![0.5, 2.0], &[2, 6])?;
//! // Persist (dtype, len, scales, dims, bytes) — reload is bit-identical.
//! let q = PackedTensor::from_bytes(dt, p.len(), p.scales().to_vec(), p.dims(), p.bytes().to_vec())?;
//! assert_eq!(p, q);
//! # Ok::<(), ant_core::QuantError>(())
//! ```

use crate::dtype::{Codec, DataType};
use crate::store::TensorBytes;
use crate::QuantError;

/// A quantized tensor in packed little-endian bit order: element `i`
/// occupies bits `[i·b, (i+1)·b)` of the byte stream.
///
/// The byte stream lives in a [`TensorBytes`] store: owned when packed
/// in-process, or borrowed straight out of a memory-mapped artifact
/// (see [`Self::from_store`]) — equality and round-trip semantics are
/// identical either way.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedTensor {
    dtype: DataType,
    len: usize,
    scales: Vec<f32>,
    bytes: TensorBytes,
    /// Logical shape of the packed elements (empty = flat/unspecified).
    dims: Vec<usize>,
}

impl PackedTensor {
    /// Packs element codes (each `< 2^bits`) with the given scales.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] when codes exceed the
    /// type's width, or [`QuantError::EmptyCalibration`] when `scales` is
    /// empty.
    pub fn pack(dtype: DataType, codes: &[u32], scales: Vec<f32>) -> Result<Self, QuantError> {
        Self::pack_with_dims(dtype, codes, scales, &[])
    }

    /// [`Self::pack`] with a logical n-D shape attached — e.g. `[out, in]`
    /// for a dense weight or `[co, ci, kh, kw]` for a conv kernel, packed
    /// row-major. The shape is metadata only (the byte stream is identical
    /// to a flat pack), but it lets consumers recover per-axis views, and
    /// [`Self::decode_channel`] decode one leading-axis slice at a time.
    ///
    /// # Errors
    ///
    /// As [`Self::pack`], plus [`QuantError::ChannelMismatch`] when the
    /// shape's element count disagrees with `codes.len()`, or when the
    /// scale count does not divide the leading axis.
    pub fn pack_with_dims(
        dtype: DataType,
        codes: &[u32],
        scales: Vec<f32>,
        dims: &[usize],
    ) -> Result<Self, QuantError> {
        if scales.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        if !dims.is_empty() {
            let n: usize = dims.iter().product();
            if n != codes.len() {
                return Err(QuantError::ChannelMismatch {
                    expected: n,
                    actual: codes.len(),
                });
            }
            if scales.len() > 1 && !dims[0].is_multiple_of(scales.len()) {
                return Err(QuantError::ChannelMismatch {
                    expected: dims[0],
                    actual: scales.len(),
                });
            }
        }
        let bits = dtype.bits();
        let mask = (1u64 << bits) - 1;
        if codes.iter().any(|&c| c as u64 > mask) {
            return Err(QuantError::UnsupportedBitWidth { bits });
        }
        let total_bits = codes.len() * bits as usize;
        let mut bytes = vec![0u8; total_bits.div_ceil(8)];
        for (i, &code) in codes.iter().enumerate() {
            let bit = i * bits as usize;
            let byte = bit / 8;
            let off = bit % 8;
            // A code spans at most three bytes for widths ≤ 16.
            let v = (code as u64) << off;
            bytes[byte] |= (v & 0xFF) as u8;
            if off + bits as usize > 8 {
                bytes[byte + 1] |= ((v >> 8) & 0xFF) as u8;
            }
            if off + bits as usize > 16 {
                bytes[byte + 2] |= ((v >> 16) & 0xFF) as u8;
            }
        }
        Ok(PackedTensor {
            dtype,
            len: codes.len(),
            scales,
            bytes: TensorBytes::from_vec(bytes),
            dims: dims.to_vec(),
        })
    }

    /// Reconstructs a packed tensor directly from its wire-code byte
    /// stream — the deserialization path used by model artifacts. The
    /// inverse of reading [`Self::bytes`]/[`Self::scales`]/[`Self::dims`]
    /// off an existing pack: no floats are re-encoded, so the codes are
    /// bit-identical to the ones that were saved.
    ///
    /// # Errors
    ///
    /// * [`QuantError::EmptyCalibration`] when `scales` is empty,
    /// * [`QuantError::ChannelMismatch`] when `dims` disagrees with `len`
    ///   or the scale count does not divide the leading axis (as in
    ///   [`Self::pack_with_dims`]),
    /// * [`QuantError::UnsupportedBitWidth`] when `bytes` is not exactly
    ///   `⌈len·bits/8⌉` long, `len·bits` overflows, or the trailing
    ///   padding bits of the last byte are not zero (all indicate a
    ///   corrupt or mis-framed stream).
    pub fn from_bytes(
        dtype: DataType,
        len: usize,
        scales: Vec<f32>,
        dims: &[usize],
        bytes: Vec<u8>,
    ) -> Result<Self, QuantError> {
        Self::from_store(dtype, len, scales, dims, TensorBytes::from_vec(bytes))
    }

    /// [`Self::from_bytes`] over an owned-or-borrowed byte store: the
    /// zero-copy deserialization path, where `bytes` borrows pages of a
    /// memory-mapped artifact instead of owning a fresh allocation. Same
    /// validation and errors as [`Self::from_bytes`].
    ///
    /// # Errors
    ///
    /// As [`Self::from_bytes`].
    pub fn from_store(
        dtype: DataType,
        len: usize,
        scales: Vec<f32>,
        dims: &[usize],
        bytes: TensorBytes,
    ) -> Result<Self, QuantError> {
        if scales.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        let bits = dtype.bits() as usize;
        if !dims.is_empty() {
            // Checked product: `len` and `dims` may come from a hostile
            // serialized stream, and an overflowed product can never
            // describe real codes.
            match dims.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d)) {
                Some(n) if n == len => {}
                n => {
                    return Err(QuantError::ChannelMismatch {
                        expected: n.unwrap_or(usize::MAX),
                        actual: len,
                    })
                }
            }
            if scales.len() > 1 && !dims[0].is_multiple_of(scales.len()) {
                return Err(QuantError::ChannelMismatch {
                    expected: dims[0],
                    actual: scales.len(),
                });
            }
        }
        let total_bits = len
            .checked_mul(bits)
            .ok_or(QuantError::UnsupportedBitWidth { bits: bits as u32 })?;
        if bytes.len() != total_bits.div_ceil(8) {
            return Err(QuantError::UnsupportedBitWidth { bits: bits as u32 });
        }
        // Trailing padding bits beyond the last element must be zero, so
        // every byte stream has exactly one valid interpretation.
        let used = total_bits % 8;
        if used != 0 {
            let last = *bytes.last().expect("non-empty when used > 0");
            if last >> used != 0 {
                return Err(QuantError::UnsupportedBitWidth { bits: bits as u32 });
            }
        }
        Ok(PackedTensor {
            dtype,
            len,
            scales,
            bytes,
            dims: dims.to_vec(),
        })
    }

    /// The element data type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-channel (or single per-tensor) scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The logical n-D shape attached at pack time (empty for flat packs).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The packed byte stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Whether the byte stream is borrowed from an external owner (a
    /// mapped artifact) rather than owned by this tensor.
    pub fn is_borrowed(&self) -> bool {
        self.bytes.is_borrowed()
    }

    /// Storage size in bytes: exactly `⌈len·bits/8⌉` — the aligned,
    /// fixed-length property.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Random access: the code of element `i`. O(1) — the point of
    /// fixed-length encoding.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn code(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of range");
        self.code_at_bit(i * self.dtype.bits() as usize)
    }

    /// Extracts the code starting at absolute bit position `bitpos`. Shared
    /// by the random-access and streaming paths so the bit arithmetic lives
    /// in one place.
    #[inline]
    fn code_at_bit(&self, bitpos: usize) -> u32 {
        let bits = self.dtype.bits() as usize;
        let byte = bitpos >> 3;
        let off = bitpos & 7;
        let mut v = (self.bytes[byte] as u64) >> off;
        let mut have = 8 - off;
        let mut next = byte + 1;
        while have < bits {
            v |= (self.bytes[next] as u64) << have;
            have += 8;
            next += 1;
        }
        (v & ((1u64 << bits) - 1)) as u32
    }

    /// Unpacks all codes in one streaming pass: a running bit cursor
    /// advances by `bits` per element instead of re-deriving `i·bits`
    /// byte/offset pairs per element the way per-element [`Self::code`]
    /// calls would.
    pub fn codes(&self) -> Vec<u32> {
        let bits = self.dtype.bits() as usize;
        let mut out = Vec::with_capacity(self.len);
        let mut bitpos = 0usize;
        for _ in 0..self.len {
            out.push(self.code_at_bit(bitpos));
            bitpos += bits;
        }
        out
    }

    /// Bulk-decodes the whole tensor to real values through the type's
    /// decode LUT ([`Codec::decode_lut`]) — one table load and one multiply
    /// per element, the software analogue of the accelerator's boundary
    /// decoders feeding a scale multiplier.
    ///
    /// Scales map onto elements as contiguous leading-axis blocks: with `s`
    /// scales over `n` elements, element `i` uses scale `i / (n / s)` —
    /// per-tensor for `s = 1`, per-output-channel for a `[out, in]` weight
    /// packed row-major with one scale per `out` row.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ChannelMismatch`] when `len` is not divisible
    /// by the number of scales, or width validation errors from
    /// [`Codec::new`].
    pub fn decode_all(&self) -> Result<Vec<f32>, QuantError> {
        let lut = Codec::new(self.dtype)?.decode_lut();
        self.decode_all_with_lut(&lut)
    }

    /// [`Self::decode_all`] with a caller-provided LUT, letting repeated
    /// decodes of same-typed tensors share one table.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ChannelMismatch`] when `len` is not divisible
    /// by the number of scales.
    ///
    /// # Panics
    ///
    /// Panics if `lut` is smaller than the code space (`2^bits`).
    pub fn decode_all_with_lut(&self, lut: &[f32]) -> Result<Vec<f32>, QuantError> {
        let bits = self.dtype.bits() as usize;
        assert!(lut.len() >= (1 << bits), "LUT smaller than code space");
        if !self.len.is_multiple_of(self.scales.len()) {
            return Err(QuantError::ChannelMismatch {
                expected: self.scales.len(),
                actual: self.len,
            });
        }
        let per_channel = self.len / self.scales.len();
        let mut out = Vec::with_capacity(self.len);
        let mut bitpos = 0usize;
        for &scale in &self.scales {
            for _ in 0..per_channel {
                out.push(lut[self.code_at_bit(bitpos) as usize] * scale);
                bitpos += bits;
            }
        }
        Ok(out)
    }

    /// Decodes one leading-axis slice of a shaped pack (e.g. one output
    /// channel of a `[co, ci, kh, kw]` conv kernel) without touching the
    /// rest of the tensor — the random-access payoff of fixed-length codes
    /// at channel granularity.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ChannelMismatch`] when the tensor has no
    /// attached shape or `channel` is out of range, and propagates width
    /// validation errors from [`Codec::new`].
    pub fn decode_channel(&self, channel: usize) -> Result<Vec<f32>, QuantError> {
        if self.dims.is_empty() || channel >= self.dims[0] {
            return Err(QuantError::ChannelMismatch {
                expected: self.dims.first().copied().unwrap_or(0),
                actual: channel,
            });
        }
        let per_channel = self.len / self.dims[0];
        let channels_per_scale = self.dims[0] / self.scales.len();
        let scale = self.scales[channel / channels_per_scale];
        let lut = Codec::new(self.dtype)?.decode_lut();
        let bits = self.dtype.bits() as usize;
        let mut bitpos = channel * per_channel * bits;
        let mut out = Vec::with_capacity(per_channel);
        for _ in 0..per_channel {
            out.push(lut[self.code_at_bit(bitpos) as usize] * scale);
            bitpos += bits;
        }
        Ok(out)
    }
}

/// Storage (in bits per element, amortised) of a variable-length
/// outlier-aware encoding: `low_bits` for normal values, `high_bits` for an
/// `outlier_frac` of outliers, plus `index_bits` of position metadata per
/// outlier (the OLAccel/GOBO-style cost ANT avoids, Sec. III-B).
pub fn variable_length_size(
    low_bits: u32,
    high_bits: u32,
    index_bits: u32,
    outlier_frac: f64,
) -> f64 {
    low_bits as f64 * (1.0 - outlier_frac) + (high_bits + index_bits) as f64 * outlier_frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;

    #[test]
    fn pack_roundtrip_4bit() {
        let dt = DataType::flint(4, false).unwrap();
        let codes: Vec<u32> = (0..33).map(|i| i % 16).collect();
        let p = PackedTensor::pack(dt, &codes, vec![0.5]).unwrap();
        assert_eq!(p.codes(), codes);
        assert_eq!(p.size_bytes(), 17); // ceil(33*4/8)
        assert_eq!(p.len(), 33);
        assert!(!p.is_empty());
        assert_eq!(p.scales(), &[0.5]);
    }

    #[test]
    fn pack_roundtrip_odd_widths() {
        for bits in [3u32, 5, 6, 7] {
            let dt = DataType::int(bits, false).unwrap();
            let codes: Vec<u32> = (0..50).map(|i| (i * 7) % (1 << bits)).collect();
            let p = PackedTensor::pack(dt, &codes, vec![1.0]).unwrap();
            assert_eq!(p.codes(), codes, "bits={bits}");
            assert_eq!(p.size_bytes(), (50 * bits as usize).div_ceil(8));
        }
    }

    #[test]
    fn pack_validates_inputs() {
        let dt = DataType::int(4, false).unwrap();
        assert!(matches!(
            PackedTensor::pack(dt, &[16], vec![1.0]),
            Err(QuantError::UnsupportedBitWidth { .. })
        ));
        assert!(matches!(
            PackedTensor::pack(dt, &[1], vec![]),
            Err(QuantError::EmptyCalibration)
        ));
    }

    #[test]
    fn random_access_matches_sequential() {
        let dt = DataType::int(6, false).unwrap();
        let codes: Vec<u32> = (0..100).map(|i| (i * 13) % 64).collect();
        let p = PackedTensor::pack(dt, &codes, vec![1.0]).unwrap();
        // Access out of order.
        for &i in &[99usize, 0, 50, 7, 63] {
            assert_eq!(p.code(i), codes[i]);
        }
    }

    #[test]
    fn empty_tensor_packs_to_zero_bytes() {
        let dt = DataType::int(4, false).unwrap();
        let p = PackedTensor::pack(dt, &[], vec![1.0]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.size_bytes(), 0);
    }

    #[test]
    fn ant_beats_variable_length_storage() {
        // ANT: 4 bits flat. OLAccel-style: 4-bit + 16-bit outliers + index.
        let ant_bits = 4.0;
        let olaccel = variable_length_size(4, 16, 8, 0.03);
        assert!(olaccel > ant_bits, "OLAccel {olaccel} bits/elem");
        // GOBO-style weight storage: 3-bit + fp32 outliers + index.
        let gobo = variable_length_size(3, 32, 16, 0.003);
        assert!(gobo > 3.0 && gobo < 3.3, "GOBO {gobo} bits/elem");
    }

    #[test]
    fn decode_all_matches_lut_times_scale() {
        let dt = DataType::flint(4, true).unwrap();
        let codec = Codec::new(dt).unwrap();
        let lut = codec.decode_lut();
        let codes: Vec<u32> = (0..16).collect();
        // Two channels of 8 elements with different scales.
        let p = PackedTensor::pack(dt, &codes, vec![0.5, 2.0]).unwrap();
        let decoded = p.decode_all().unwrap();
        for (i, &v) in decoded.iter().enumerate() {
            let scale = if i < 8 { 0.5 } else { 2.0 };
            assert_eq!(v, lut[codes[i] as usize] * scale, "element {i}");
        }
        // Shared-LUT path agrees.
        assert_eq!(p.decode_all_with_lut(&lut).unwrap(), decoded);
    }

    #[test]
    fn decode_all_validates_channel_divisibility() {
        let dt = DataType::int(4, false).unwrap();
        let p = PackedTensor::pack(dt, &[1, 2, 3], vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            p.decode_all(),
            Err(QuantError::ChannelMismatch { .. })
        ));
    }

    #[test]
    fn decode_all_roundtrips_encoded_values() {
        // encode → pack → decode_all reproduces the snapped values exactly.
        let dt = DataType::flint(4, true).unwrap();
        let codec = Codec::new(dt).unwrap();
        let scale = 0.37f32;
        let values = [-20.0f32, -3.2, -0.4, 0.0, 0.9, 4.8, 11.0, 70.0];
        let codes: Vec<u32> = values.iter().map(|&v| codec.encode(v / scale)).collect();
        let p = PackedTensor::pack(dt, &codes, vec![scale]).unwrap();
        let decoded = p.decode_all().unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(decoded[i], codec.snap(v / scale) * scale, "element {i}");
        }
    }

    #[test]
    fn streaming_codes_match_random_access_wide_types() {
        // 12-bit codes span up to 3 bytes; the streaming cursor and the
        // per-element path must agree.
        let dt = DataType::int(12, false).unwrap();
        let codes: Vec<u32> = (0..41).map(|i| (i * 251) % 4096).collect();
        let p = PackedTensor::pack(dt, &codes, vec![1.0]).unwrap();
        assert_eq!(p.codes(), codes);
        for &i in &[0usize, 7, 40] {
            assert_eq!(p.code(i), codes[i]);
        }
    }

    #[test]
    fn shaped_pack_carries_dims_and_decodes_channels() {
        // A [2, 2, 3] "conv-like" pack with one scale per leading slice.
        let dt = DataType::flint(4, true).unwrap();
        let codec = Codec::new(dt).unwrap();
        let lut = codec.decode_lut();
        let codes: Vec<u32> = (0..12).collect();
        let p = PackedTensor::pack_with_dims(dt, &codes, vec![0.5, 2.0], &[2, 2, 3]).unwrap();
        assert_eq!(p.dims(), &[2, 2, 3]);
        // Flat pack reports no dims.
        let flat = PackedTensor::pack(dt, &codes, vec![1.0]).unwrap();
        assert!(flat.dims().is_empty());
        // Channel decode equals the matching slice of decode_all.
        let all = p.decode_all().unwrap();
        for c in 0..2 {
            let ch = p.decode_channel(c).unwrap();
            assert_eq!(ch, &all[c * 6..(c + 1) * 6], "channel {c}");
            for (i, v) in ch.iter().enumerate() {
                let scale = if c == 0 { 0.5 } else { 2.0 };
                assert_eq!(*v, lut[codes[c * 6 + i] as usize] * scale);
            }
        }
    }

    #[test]
    fn shaped_pack_validates_shape_and_channel() {
        let dt = DataType::int(4, false).unwrap();
        // Shape/element-count disagreement.
        assert!(matches!(
            PackedTensor::pack_with_dims(dt, &[1, 2, 3], vec![1.0], &[2, 2]),
            Err(QuantError::ChannelMismatch { .. })
        ));
        // Scales not dividing the leading axis.
        assert!(matches!(
            PackedTensor::pack_with_dims(dt, &[1, 2, 3], vec![1.0, 2.0], &[3, 1]),
            Err(QuantError::ChannelMismatch { .. })
        ));
        // Channel decode on a flat pack or out-of-range channel.
        let flat = PackedTensor::pack(dt, &[1, 2, 3], vec![1.0]).unwrap();
        assert!(flat.decode_channel(0).is_err());
        let shaped = PackedTensor::pack_with_dims(dt, &[1, 2, 3], vec![1.0], &[3, 1]).unwrap();
        assert!(shaped.decode_channel(3).is_err());
    }

    #[test]
    fn from_bytes_roundtrips_wire_codes() {
        for bits in [3u32, 4, 6, 8] {
            let dt = DataType::int(bits, false).unwrap();
            let codes: Vec<u32> = (0..37).map(|i| (i * 5) % (1 << bits)).collect();
            let p = PackedTensor::pack(dt, &codes, vec![0.25]).unwrap();
            let q = PackedTensor::from_bytes(
                dt,
                p.len(),
                p.scales().to_vec(),
                p.dims(),
                p.bytes().to_vec(),
            )
            .unwrap();
            assert_eq!(p, q, "bits={bits}");
            assert_eq!(q.codes(), codes);
        }
        // Shaped pack with per-channel scales survives too.
        let dt = DataType::flint(4, true).unwrap();
        let codes: Vec<u32> = (0..12).collect();
        let p = PackedTensor::pack_with_dims(dt, &codes, vec![0.5, 2.0], &[2, 2, 3]).unwrap();
        let q = PackedTensor::from_bytes(
            dt,
            p.len(),
            p.scales().to_vec(),
            p.dims(),
            p.bytes().to_vec(),
        )
        .unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn from_bytes_validates_framing() {
        let dt = DataType::int(4, false).unwrap();
        // Wrong byte count.
        assert!(matches!(
            PackedTensor::from_bytes(dt, 3, vec![1.0], &[], vec![0u8; 3]),
            Err(QuantError::UnsupportedBitWidth { .. })
        ));
        // Nonzero trailing padding (3 codes × 4 bits = 12 bits; the top
        // nibble of byte 1 is padding).
        assert!(matches!(
            PackedTensor::from_bytes(dt, 3, vec![1.0], &[], vec![0xFF, 0xFF]),
            Err(QuantError::UnsupportedBitWidth { .. })
        ));
        // Empty scales / dims disagreement, as in pack_with_dims.
        assert!(matches!(
            PackedTensor::from_bytes(dt, 2, vec![], &[], vec![0x21]),
            Err(QuantError::EmptyCalibration)
        ));
        assert!(matches!(
            PackedTensor::from_bytes(dt, 2, vec![1.0], &[3], vec![0x21]),
            Err(QuantError::ChannelMismatch { .. })
        ));
        assert!(matches!(
            PackedTensor::from_bytes(dt, 3, vec![1.0, 2.0], &[3, 1], vec![0x21, 0x03]),
            Err(QuantError::ChannelMismatch { .. })
        ));
    }

    #[test]
    fn from_bytes_rejects_overflowing_element_counts() {
        // Hostile serialized streams can declare absurd sizes; the
        // arithmetic must stay checked instead of wrapping (release) or
        // panicking (debug).
        let dt = DataType::int(8, false).unwrap();
        assert!(matches!(
            PackedTensor::from_bytes(dt, 1usize << 61, vec![1.0], &[], vec![]),
            Err(QuantError::UnsupportedBitWidth { .. })
        ));
        // A dims product that wraps to exactly `len` must not pass the
        // shape check either.
        let huge = 1usize << 31;
        assert!(matches!(
            PackedTensor::from_bytes(dt, 0, vec![1.0], &[huge, huge, 4], vec![]),
            Err(QuantError::ChannelMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn code_bounds_checked() {
        let dt = DataType::int(4, false).unwrap();
        let p = PackedTensor::pack(dt, &[1, 2], vec![1.0]).unwrap();
        let _ = p.code(2);
    }
}
