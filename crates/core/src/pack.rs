//! Packed quantized tensors: the memory-system view of ANT's fixed-length
//! claim (paper Table I, "Aligned" column).
//!
//! ANT stores every element of a tensor in exactly `bits` bits, so a
//! tensor packs into `⌈n·bits/8⌉` bytes with direct random access — no
//! decoder between DRAM and the PE array boundary. [`PackedTensor`] holds
//! that representation together with its scale(s). For contrast,
//! [`variable_length_size`] computes the storage an outlier-aware
//! variable-length scheme needs, including the index metadata that breaks
//! alignment (Sec. III-B's argument against OLAccel/GOBO-style encodings).

use crate::dtype::DataType;
use crate::QuantError;

/// A quantized tensor in packed little-endian bit order: element `i`
/// occupies bits `[i·b, (i+1)·b)` of the byte stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedTensor {
    dtype: DataType,
    len: usize,
    scales: Vec<f32>,
    bytes: Vec<u8>,
}

impl PackedTensor {
    /// Packs element codes (each `< 2^bits`) with the given scales.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] when codes exceed the
    /// type's width, or [`QuantError::EmptyCalibration`] when `scales` is
    /// empty.
    pub fn pack(dtype: DataType, codes: &[u32], scales: Vec<f32>) -> Result<Self, QuantError> {
        if scales.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        let bits = dtype.bits();
        let mask = (1u64 << bits) - 1;
        if codes.iter().any(|&c| c as u64 > mask) {
            return Err(QuantError::UnsupportedBitWidth { bits });
        }
        let total_bits = codes.len() * bits as usize;
        let mut bytes = vec![0u8; total_bits.div_ceil(8)];
        for (i, &code) in codes.iter().enumerate() {
            let bit = i * bits as usize;
            let byte = bit / 8;
            let off = bit % 8;
            // A code spans at most three bytes for widths ≤ 16.
            let v = (code as u64) << off;
            bytes[byte] |= (v & 0xFF) as u8;
            if off + bits as usize > 8 {
                bytes[byte + 1] |= ((v >> 8) & 0xFF) as u8;
            }
            if off + bits as usize > 16 {
                bytes[byte + 2] |= ((v >> 16) & 0xFF) as u8;
            }
        }
        Ok(PackedTensor {
            dtype,
            len: codes.len(),
            scales,
            bytes,
        })
    }

    /// The element data type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-channel (or single per-tensor) scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The packed byte stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Storage size in bytes: exactly `⌈len·bits/8⌉` — the aligned,
    /// fixed-length property.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Random access: the code of element `i`. O(1) — the point of
    /// fixed-length encoding.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn code(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of range");
        let bits = self.dtype.bits() as usize;
        let bit = i * bits;
        let byte = bit / 8;
        let off = bit % 8;
        let mut v = self.bytes[byte] as u64 >> off;
        if off + bits > 8 {
            v |= (self.bytes[byte + 1] as u64) << (8 - off);
        }
        if off + bits > 16 {
            v |= (self.bytes[byte + 2] as u64) << (16 - off);
        }
        (v & ((1 << bits) - 1)) as u32
    }

    /// Unpacks all codes.
    pub fn codes(&self) -> Vec<u32> {
        (0..self.len).map(|i| self.code(i)).collect()
    }
}

/// Storage (in bits per element, amortised) of a variable-length
/// outlier-aware encoding: `low_bits` for normal values, `high_bits` for an
/// `outlier_frac` of outliers, plus `index_bits` of position metadata per
/// outlier (the OLAccel/GOBO-style cost ANT avoids, Sec. III-B).
pub fn variable_length_size(
    low_bits: u32,
    high_bits: u32,
    index_bits: u32,
    outlier_frac: f64,
) -> f64 {
    low_bits as f64 * (1.0 - outlier_frac) + (high_bits + index_bits) as f64 * outlier_frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;

    #[test]
    fn pack_roundtrip_4bit() {
        let dt = DataType::flint(4, false).unwrap();
        let codes: Vec<u32> = (0..33).map(|i| i % 16).collect();
        let p = PackedTensor::pack(dt, &codes, vec![0.5]).unwrap();
        assert_eq!(p.codes(), codes);
        assert_eq!(p.size_bytes(), 17); // ceil(33*4/8)
        assert_eq!(p.len(), 33);
        assert!(!p.is_empty());
        assert_eq!(p.scales(), &[0.5]);
    }

    #[test]
    fn pack_roundtrip_odd_widths() {
        for bits in [3u32, 5, 6, 7] {
            let dt = DataType::int(bits, false).unwrap();
            let codes: Vec<u32> = (0..50).map(|i| (i * 7) % (1 << bits)).collect();
            let p = PackedTensor::pack(dt, &codes, vec![1.0]).unwrap();
            assert_eq!(p.codes(), codes, "bits={bits}");
            assert_eq!(p.size_bytes(), (50 * bits as usize).div_ceil(8));
        }
    }

    #[test]
    fn pack_validates_inputs() {
        let dt = DataType::int(4, false).unwrap();
        assert!(matches!(
            PackedTensor::pack(dt, &[16], vec![1.0]),
            Err(QuantError::UnsupportedBitWidth { .. })
        ));
        assert!(matches!(
            PackedTensor::pack(dt, &[1], vec![]),
            Err(QuantError::EmptyCalibration)
        ));
    }

    #[test]
    fn random_access_matches_sequential() {
        let dt = DataType::int(6, false).unwrap();
        let codes: Vec<u32> = (0..100).map(|i| (i * 13) % 64).collect();
        let p = PackedTensor::pack(dt, &codes, vec![1.0]).unwrap();
        // Access out of order.
        for &i in &[99usize, 0, 50, 7, 63] {
            assert_eq!(p.code(i), codes[i]);
        }
    }

    #[test]
    fn empty_tensor_packs_to_zero_bytes() {
        let dt = DataType::int(4, false).unwrap();
        let p = PackedTensor::pack(dt, &[], vec![1.0]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.size_bytes(), 0);
    }

    #[test]
    fn ant_beats_variable_length_storage() {
        // ANT: 4 bits flat. OLAccel-style: 4-bit + 16-bit outliers + index.
        let ant_bits = 4.0;
        let olaccel = variable_length_size(4, 16, 8, 0.03);
        assert!(olaccel > ant_bits, "OLAccel {olaccel} bits/elem");
        // GOBO-style weight storage: 3-bit + fp32 outliers + index.
        let gobo = variable_length_size(3, 32, 16, 0.003);
        assert!(gobo > 3.0 && gobo < 3.3, "GOBO {gobo} bits/elem");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn code_bounds_checked() {
        let dt = DataType::int(4, false).unwrap();
        let p = PackedTensor::pack(dt, &[1, 2], vec![1.0]).unwrap();
        let _ = p.code(2);
    }
}
