//! Quantization baselines the paper compares against (Sec. II, III-B, VII):
//! AdaptiveFloat, BiScaled, GOBO and OLAccel.
//!
//! Each baseline exposes the same surface: calibrate on data, fake-quantize,
//! and report its effective memory cost in bits per element (the quantity
//! behind the paper's Table I). The outlier-aware schemes (GOBO, OLAccel)
//! additionally report their outlier fraction, which drives the accelerator
//! model in `ant-sim`.

use crate::dtype::{Codec, DataType};
use crate::minifloat::FloatFormat;
use crate::QuantError;

// ---------------------------------------------------------------------------
// AdaptiveFloat [78]
// ---------------------------------------------------------------------------

/// AdaptiveFloat: a miniature float with a *tensor-wise exponent bias*
/// (paper Sec. II-B). Scaling is restricted to powers of two — the bias —
/// which is exactly what distinguishes it from an arbitrary-scale float
/// quantizer.
#[derive(Debug, Clone)]
pub struct AdaFloat {
    format: FloatFormat,
    /// The chosen power-of-two scale, `2^k`.
    scale: f32,
    magnitudes: Vec<f32>,
}

impl AdaFloat {
    /// Calibrates an AdaptiveFloat quantizer. `bits` includes the sign bit
    /// when `signed`; the exponent field follows the AdaptiveFloat paper's
    /// split (`E = min(4, bits − 1 − signed)`, remainder mantissa).
    ///
    /// # Errors
    ///
    /// * [`QuantError::EmptyCalibration`] / [`QuantError::NonFiniteData`]
    ///   on bad data,
    /// * [`QuantError::InvalidFloatFormat`] when `bits` cannot host the
    ///   field split.
    pub fn fit(bits: u32, signed: bool, data: &[f32]) -> Result<(Self, f64), QuantError> {
        if data.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(QuantError::NonFiniteData);
        }
        let avail = bits.saturating_sub(u32::from(signed));
        let exp_bits = avail.saturating_sub(1).clamp(1, 4);
        let man_bits = avail - exp_bits;
        let format = FloatFormat::new(exp_bits, man_bits, signed)?;
        let codec = Codec::new(DataType::float_with_format(format))?;
        let magnitudes = codec.magnitudes().to_vec();
        let max_abs = data.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        if max_abs == 0.0 {
            return Ok((
                AdaFloat {
                    format,
                    scale: 1.0,
                    magnitudes,
                },
                0.0,
            ));
        }
        // Bias search: the scale is 2^k; start from the k that just covers
        // max_abs and probe a few finer settings (clipping outliers).
        let k0 = (max_abs / codec.max_value()).log2().ceil() as i32;
        let mut best = (1.0f32, f64::INFINITY);
        for k in (k0 - 4)..=(k0 + 1) {
            let scale = 2f32.powi(k);
            let mse = mse_with(&magnitudes, signed, scale, data);
            if mse < best.1 {
                best = (scale, mse);
            }
        }
        Ok((
            AdaFloat {
                format,
                scale: best.0,
                magnitudes,
            },
            best.1,
        ))
    }

    /// The element format.
    pub fn format(&self) -> FloatFormat {
        self.format
    }

    /// The chosen power-of-two scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Fake-quantizes one value.
    pub fn quantize_dequantize(&self, x: f32) -> f32 {
        snap_signed(&self.magnitudes, self.format.is_signed(), x / self.scale) * self.scale
    }

    /// Bits per element in memory (fixed-length; the tensor-wise bias is
    /// amortised to zero).
    pub fn mem_bits(&self) -> f64 {
        self.format.total_bits() as f64
    }
}

// ---------------------------------------------------------------------------
// BiScaled [43]
// ---------------------------------------------------------------------------

/// BiScaled-DNN: fixed-length `bits`-bit integer codes with *two* scale
/// factors — a fine scale for the dense low-magnitude region and a coarse
/// scale for the long tail — plus a per-element selector mask
/// (paper Sec. III-B: "it requires an extra bit mask for indicating
/// different scale factors").
#[derive(Debug, Clone)]
pub struct BiScaled {
    bits: u32,
    signed: bool,
    fine_scale: f32,
    coarse_scale: f32,
    split: f32,
}

/// Per-element mask overhead of BiScaled in bits. The paper's Table I
/// reports 6.16 average bits for the 6-bit configuration; the 0.16 bit
/// delta is the amortised sparse mask cost we adopt.
pub const BISCALED_MASK_BITS: f64 = 0.16;

impl BiScaled {
    /// Calibrates: grid-searches the split threshold `t`; values with
    /// `|x| ≤ t` use the fine scale `t / maxq`, the rest the coarse scale
    /// `max_abs / maxq`.
    ///
    /// # Errors
    ///
    /// * [`QuantError::EmptyCalibration`] / [`QuantError::NonFiniteData`]
    ///   on bad data,
    /// * [`QuantError::UnsupportedBitWidth`] when `bits` is outside
    ///   `2..=16`.
    pub fn fit(bits: u32, signed: bool, data: &[f32]) -> Result<(Self, f64), QuantError> {
        if !(2..=16).contains(&bits) {
            return Err(QuantError::UnsupportedBitWidth { bits });
        }
        if data.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(QuantError::NonFiniteData);
        }
        let maxq = Self::maxq(bits, signed);
        let max_abs = data.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        if max_abs == 0.0 {
            let q = BiScaled {
                bits,
                signed,
                fine_scale: 1.0,
                coarse_scale: 1.0,
                split: 0.0,
            };
            return Ok((q, 0.0));
        }
        let coarse_scale = max_abs / maxq;
        let mut best = (max_abs, f64::INFINITY);
        for k in 1..=32 {
            let split = max_abs * k as f32 / 32.0;
            let fine_scale = split / maxq;
            let q = BiScaled {
                bits,
                signed,
                fine_scale,
                coarse_scale,
                split,
            };
            let mse = data
                .iter()
                .map(|&x| {
                    let d = (x - q.quantize_dequantize(x)) as f64;
                    d * d
                })
                .sum::<f64>()
                / data.len() as f64;
            if mse < best.1 {
                best = (split, mse);
            }
        }
        let fine_scale = best.0 / maxq;
        Ok((
            BiScaled {
                bits,
                signed,
                fine_scale,
                coarse_scale,
                split: best.0,
            },
            best.1,
        ))
    }

    fn maxq(bits: u32, signed: bool) -> f32 {
        if signed {
            ((1u64 << (bits - 1)) - 1) as f32
        } else {
            ((1u64 << bits) - 1) as f32
        }
    }

    /// The split threshold between the two scale regions.
    pub fn split(&self) -> f32 {
        self.split
    }

    /// Fake-quantizes one value: the selector picks the fine or coarse
    /// scale by magnitude.
    pub fn quantize_dequantize(&self, x: f32) -> f32 {
        let maxq = Self::maxq(self.bits, self.signed);
        let scale = if x.abs() <= self.split {
            self.fine_scale
        } else {
            self.coarse_scale
        };
        let lo = if self.signed { -maxq } else { 0.0 };
        (x / scale).round().clamp(lo, maxq) * scale
    }

    /// Bits per element including the selector mask.
    pub fn mem_bits(&self) -> f64 {
        self.bits as f64 + BISCALED_MASK_BITS
    }
}

// ---------------------------------------------------------------------------
// GOBO [86]
// ---------------------------------------------------------------------------

/// GOBO: weight-only outlier-aware quantization. Weights within
/// `outlier_sigma` standard deviations of the mean (the "G" group) are
/// mapped to one of `2^bits` learned centroids; the rare outliers (the "O"
/// group) stay at full precision (paper Sec. II-D).
#[derive(Debug, Clone)]
pub struct Gobo {
    bits: u32,
    centroids: Vec<f32>,
    lo: f32,
    hi: f32,
    outlier_frac: f64,
}

impl Gobo {
    /// Calibrates on weight data: detects outliers at `outlier_sigma`
    /// deviations, then runs Lloyd iterations to place `2^bits` centroids
    /// over the inlier group.
    ///
    /// # Errors
    ///
    /// * [`QuantError::EmptyCalibration`] / [`QuantError::NonFiniteData`]
    ///   on bad data,
    /// * [`QuantError::UnsupportedBitWidth`] when `bits` is outside
    ///   `2..=8`.
    pub fn fit(bits: u32, outlier_sigma: f32, data: &[f32]) -> Result<(Self, f64), QuantError> {
        if !(2..=8).contains(&bits) {
            return Err(QuantError::UnsupportedBitWidth { bits });
        }
        if data.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(QuantError::NonFiniteData);
        }
        let n = data.len() as f64;
        let mean = data.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = data.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt() as f32;
        let lo = mean as f32 - outlier_sigma * std;
        let hi = mean as f32 + outlier_sigma * std;
        let inliers: Vec<f32> = data
            .iter()
            .copied()
            .filter(|&x| x >= lo && x <= hi)
            .collect();
        let outlier_frac = 1.0 - inliers.len() as f64 / n;
        let k = 1usize << bits;
        let mut centroids = init_quantile_centroids(&inliers, k);
        // Lloyd's algorithm over the inlier set.
        for _ in 0..12 {
            let mut sums = vec![0.0f64; k];
            let mut counts = vec![0usize; k];
            for &x in &inliers {
                let c = nearest_index(&centroids, x);
                sums[c] += x as f64;
                counts[c] += 1;
            }
            let mut moved = false;
            for c in 0..k {
                if counts[c] > 0 {
                    let next = (sums[c] / counts[c] as f64) as f32;
                    if next != centroids[c] {
                        centroids[c] = next;
                        moved = true;
                    }
                }
            }
            centroids.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            if !moved {
                break;
            }
        }
        let q = Gobo {
            bits,
            centroids,
            lo,
            hi,
            outlier_frac,
        };
        let mse = data
            .iter()
            .map(|&x| {
                let d = (x - q.quantize_dequantize(x)) as f64;
                d * d
            })
            .sum::<f64>()
            / n;
        Ok((q, mse))
    }

    /// The learned centroid table.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Fraction of weights kept at full precision.
    pub fn outlier_frac(&self) -> f64 {
        self.outlier_frac
    }

    /// Fake-quantizes one value (outliers pass through unchanged, i.e. at
    /// full precision).
    pub fn quantize_dequantize(&self, x: f32) -> f32 {
        if x < self.lo || x > self.hi {
            return x;
        }
        self.centroids[nearest_index(&self.centroids, x)]
    }

    /// Average bits per element: b-bit index for inliers, 32-bit floats for
    /// outliers (GOBO's paper reports e.g. 3.04 effective bits for its
    /// 3-bit mode).
    pub fn mem_bits(&self) -> f64 {
        self.bits as f64 * (1.0 - self.outlier_frac) + 32.0 * self.outlier_frac
    }
}

// ---------------------------------------------------------------------------
// OLAccel [66]
// ---------------------------------------------------------------------------

/// OLAccel: element-wise outlier-aware quantization — the top
/// `outlier_frac` of magnitudes use high-precision (16-bit) integers, the
/// rest 4-bit integers (paper Sec. II-D). Variable-length in memory, hence
/// the decoder/controller overhead charged in Table I.
#[derive(Debug, Clone)]
pub struct OlAccel {
    low_bits: u32,
    high_bits: u32,
    signed: bool,
    threshold: f32,
    low_scale: f32,
    high_scale: f32,
    outlier_frac: f64,
}

impl OlAccel {
    /// Calibrates with a target outlier fraction (OLAccel's own evaluation
    /// uses 1–3%).
    ///
    /// # Errors
    ///
    /// * [`QuantError::EmptyCalibration`] / [`QuantError::NonFiniteData`]
    ///   on bad data,
    /// * [`QuantError::UnsupportedBitWidth`] when widths are outside
    ///   `2..=16` or `low_bits >= high_bits`.
    pub fn fit(
        low_bits: u32,
        high_bits: u32,
        signed: bool,
        outlier_frac: f64,
        data: &[f32],
    ) -> Result<(Self, f64), QuantError> {
        if !(2..=16).contains(&low_bits) || !(2..=16).contains(&high_bits) || low_bits >= high_bits
        {
            return Err(QuantError::UnsupportedBitWidth { bits: low_bits });
        }
        if data.is_empty() {
            return Err(QuantError::EmptyCalibration);
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(QuantError::NonFiniteData);
        }
        let mut mags: Vec<f32> = data.iter().map(|x| x.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((1.0 - outlier_frac) * (mags.len() - 1) as f64).round() as usize;
        let threshold = mags[idx.min(mags.len() - 1)];
        let max_abs = *mags.last().expect("non-empty");
        let lowq = BiScaled::maxq(low_bits, signed);
        let highq = BiScaled::maxq(high_bits, signed);
        let low_scale = if threshold > 0.0 {
            threshold / lowq
        } else {
            1.0
        };
        let high_scale = if max_abs > 0.0 { max_abs / highq } else { 1.0 };
        let actual_frac =
            data.iter().filter(|x| x.abs() > threshold).count() as f64 / data.len() as f64;
        let q = OlAccel {
            low_bits,
            high_bits,
            signed,
            threshold,
            low_scale,
            high_scale,
            outlier_frac: actual_frac,
        };
        let mse = data
            .iter()
            .map(|&x| {
                let d = (x - q.quantize_dequantize(x)) as f64;
                d * d
            })
            .sum::<f64>()
            / data.len() as f64;
        Ok((q, mse))
    }

    /// The realised outlier fraction after thresholding.
    pub fn outlier_frac(&self) -> f64 {
        self.outlier_frac
    }

    /// Fake-quantizes one value.
    pub fn quantize_dequantize(&self, x: f32) -> f32 {
        let (scale, maxq) = if x.abs() > self.threshold {
            (self.high_scale, BiScaled::maxq(self.high_bits, self.signed))
        } else {
            (self.low_scale, BiScaled::maxq(self.low_bits, self.signed))
        };
        let lo = if self.signed { -maxq } else { 0.0 };
        (x / scale).round().clamp(lo, maxq) * scale
    }

    /// Average bits per element in memory.
    pub fn mem_bits(&self) -> f64 {
        self.low_bits as f64 * (1.0 - self.outlier_frac) + self.high_bits as f64 * self.outlier_frac
    }
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn init_quantile_centroids(data: &[f32], k: usize) -> Vec<f32> {
    if data.is_empty() {
        return vec![0.0; k];
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (0..k)
        .map(|i| {
            let pos = (i as f64 + 0.5) / k as f64 * (sorted.len() - 1) as f64;
            sorted[pos.round() as usize]
        })
        .collect()
}

fn nearest_index(sorted: &[f32], x: f32) -> usize {
    let pos = sorted.partition_point(|&v| v < x);
    if pos == 0 {
        0
    } else if pos >= sorted.len() {
        sorted.len() - 1
    } else if x - sorted[pos - 1] <= sorted[pos] - x {
        pos - 1
    } else {
        pos
    }
}

fn mse_with(magnitudes: &[f32], signed: bool, scale: f32, data: &[f32]) -> f64 {
    data.iter()
        .map(|&x| {
            let q = snap_signed(magnitudes, signed, x / scale) * scale;
            let d = (x - q) as f64;
            d * d
        })
        .sum::<f64>()
        / data.len() as f64
}

fn snap_signed(magnitudes: &[f32], signed: bool, x: f32) -> f32 {
    let mag = if signed { x.abs() } else { x.max(0.0) };
    let q = magnitudes[nearest_index(magnitudes, mag)];
    if signed && x < 0.0 {
        -q
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_tensor::dist::{sample_vec, Distribution};

    fn gaussian(n: usize, seed: u64) -> Vec<f32> {
        sample_vec(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            n,
            seed,
        )
    }

    #[test]
    fn adafloat_scale_is_power_of_two() {
        let data = gaussian(4096, 41);
        let (q, mse) = AdaFloat::fit(8, true, &data).unwrap();
        assert!(mse > 0.0);
        assert_eq!(q.scale().log2().fract(), 0.0, "scale {} not 2^k", q.scale());
        assert_eq!(q.mem_bits(), 8.0);
    }

    #[test]
    fn adafloat_8bit_is_accurate_on_gaussian() {
        let data = gaussian(4096, 43);
        let (q, mse) = AdaFloat::fit(8, true, &data).unwrap();
        assert!(mse < 1e-3, "8-bit AdaFloat MSE {mse}");
        let y = q.quantize_dequantize(0.5);
        assert!((y - 0.5).abs() < 0.05);
    }

    #[test]
    fn adafloat_rejects_bad_input() {
        assert!(AdaFloat::fit(8, true, &[]).is_err());
        assert!(AdaFloat::fit(8, true, &[f32::INFINITY]).is_err());
    }

    #[test]
    fn biscaled_two_scales_beat_one_on_long_tails() {
        let data = sample_vec(Distribution::Laplace { mu: 0.0, b: 1.0 }, 8192, 47);
        let (bi, bi_mse) = BiScaled::fit(6, true, &data).unwrap();
        // Single-scale 6-bit int with max-abs scaling.
        let maxq = 31.0f32;
        let max_abs = data.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        let s = max_abs / maxq;
        let single: f64 = data
            .iter()
            .map(|&x| {
                let d = (x - (x / s).round().clamp(-maxq, maxq) * s) as f64;
                d * d
            })
            .sum::<f64>()
            / data.len() as f64;
        assert!(bi_mse < single, "biscaled {bi_mse} vs single {single}");
        assert!(bi.split() < max_abs);
        assert!((bi.mem_bits() - 6.16).abs() < 1e-9);
    }

    #[test]
    fn biscaled_handles_all_zero() {
        let (q, mse) = BiScaled::fit(6, true, &[0.0; 64]).unwrap();
        assert_eq!(mse, 0.0);
        assert_eq!(q.quantize_dequantize(0.0), 0.0);
    }

    #[test]
    fn gobo_outliers_pass_through_exactly() {
        let mut data = gaussian(4096, 53);
        data[0] = 40.0; // an extreme outlier
        let (q, _) = Gobo::fit(3, 3.0, &data).unwrap();
        assert_eq!(q.quantize_dequantize(40.0), 40.0);
        assert!(q.outlier_frac() > 0.0);
        assert_eq!(q.centroids().len(), 8);
    }

    #[test]
    fn gobo_mem_bits_slightly_above_index_bits() {
        let data = gaussian(8192, 59);
        let (q, _) = Gobo::fit(3, 3.0, &data).unwrap();
        // ~0.3% outliers at 32 bits: ≈ 3.09 effective bits — the paper's
        // GOBO comparison reports 3.04.
        assert!(q.mem_bits() > 3.0 && q.mem_bits() < 3.5, "{}", q.mem_bits());
    }

    #[test]
    fn gobo_beats_plain_int_on_gaussian() {
        let data = gaussian(8192, 61);
        let (g, gobo_mse) = Gobo::fit(3, 3.0, &data).unwrap();
        let maxq = 3.0f32;
        let max_abs = data.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        let s = max_abs / maxq;
        let int_mse: f64 = data
            .iter()
            .map(|&x| {
                let d = (x - (x / s).round().clamp(-maxq, maxq) * s) as f64;
                d * d
            })
            .sum::<f64>()
            / data.len() as f64;
        assert!(gobo_mse < int_mse, "gobo {gobo_mse} vs int3 {int_mse}");
        let _ = g;
    }

    #[test]
    fn olaccel_outlier_fraction_near_target() {
        let data = gaussian(8192, 67);
        let (q, _) = OlAccel::fit(4, 16, true, 0.03, &data).unwrap();
        assert!(
            (q.outlier_frac() - 0.03).abs() < 0.01,
            "{}",
            q.outlier_frac()
        );
        // Memory bits between 4 and 16, near 4.36 (Table I).
        assert!(q.mem_bits() > 4.0 && q.mem_bits() < 5.0, "{}", q.mem_bits());
    }

    #[test]
    fn olaccel_outliers_high_precision() {
        let data = gaussian(8192, 71);
        let (q, mse) = OlAccel::fit(4, 16, true, 0.02, &data).unwrap();
        // The largest value is an outlier → quantized with 16-bit precision,
        // so relative error is tiny.
        let max = data.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        let qd = q.quantize_dequantize(max);
        assert!((qd - max).abs() / max < 1e-3);
        assert!(mse > 0.0);
    }

    #[test]
    fn olaccel_validates_widths() {
        assert!(OlAccel::fit(8, 4, true, 0.03, &[1.0]).is_err());
        assert!(OlAccel::fit(1, 16, true, 0.03, &[1.0]).is_err());
    }
}
