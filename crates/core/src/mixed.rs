//! Layer-wise mixed-precision controller (paper Sec. IV-C "Mixed
//! Precision" and Sec. V-D).
//!
//! ANT's 4-bit type alone cannot always match full-precision accuracy, so
//! the paper promotes layers to 8-bit `int`, one at a time in descending
//! quantization-MSE order, fine-tuning in between, until the quantized
//! model is within a preset threshold of the original. [`run_mixed_precision`]
//! implements exactly that loop over any [`MixedPrecisionTarget`] (the DNN
//! framework in `ant-nn` implements the trait; tests here use a synthetic
//! model).

/// Precision assignment of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 4-bit ANT (the default starting point).
    Ant4,
    /// Promoted to 8-bit int.
    Int8,
}

/// A model that the mixed-precision controller can drive.
///
/// Implementations quantize their layers at the requested precisions,
/// optionally fine-tune, and report a quality metric (accuracy in the
/// paper; any higher-is-better score works).
pub trait MixedPrecisionTarget {
    /// Number of quantizable layers.
    fn num_layers(&self) -> usize;

    /// Quantization MSE of layer `layer` under its current precision
    /// assignment (used to rank promotion candidates).
    fn layer_mse(&self, layer: usize) -> f64;

    /// Sets the precision of one layer.
    fn set_precision(&mut self, layer: usize, precision: Precision);

    /// Re-quantizes / fine-tunes under the current assignment and returns
    /// the quality metric (higher is better).
    fn evaluate(&mut self) -> f64;
}

/// Configuration for the promotion loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedPrecisionConfig {
    /// Stop once `baseline_metric − metric <= threshold`.
    pub threshold: f64,
    /// Upper bound on promotions (defaults to "all layers").
    pub max_promotions: Option<usize>,
}

impl Default for MixedPrecisionConfig {
    fn default() -> Self {
        // The paper uses <0.1% loss for CNNs and <1% for Transformers;
        // 0.01 (1 percentage point on a 0..1 accuracy) is the looser bound.
        MixedPrecisionConfig {
            threshold: 0.01,
            max_promotions: None,
        }
    }
}

/// Result of the mixed-precision search.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedPrecisionReport {
    /// Final per-layer precisions.
    pub precisions: Vec<Precision>,
    /// Quality metric after each evaluation (index 0 = all-4-bit).
    pub metric_trace: Vec<f64>,
    /// Layers promoted, in promotion order.
    pub promoted: Vec<usize>,
    /// Whether the threshold was met.
    pub converged: bool,
}

impl MixedPrecisionReport {
    /// Fraction of layers still at 4-bit ANT (the paper reports up to 91%
    /// of tensors staying at 4 bits, Sec. V-D).
    pub fn low_bit_ratio(&self) -> f64 {
        if self.precisions.is_empty() {
            return 1.0;
        }
        let low = self
            .precisions
            .iter()
            .filter(|p| **p == Precision::Ant4)
            .count();
        low as f64 / self.precisions.len() as f64
    }
}

/// Runs the paper's promotion loop: start all layers at 4-bit ANT, then
/// repeatedly promote the remaining 4-bit layer with the greatest MSE to
/// 8-bit int and re-evaluate, until the metric is within
/// `config.threshold` of `baseline_metric` (or promotions are exhausted).
pub fn run_mixed_precision<T: MixedPrecisionTarget + ?Sized>(
    target: &mut T,
    baseline_metric: f64,
    config: MixedPrecisionConfig,
) -> MixedPrecisionReport {
    let n = target.num_layers();
    let mut precisions = vec![Precision::Ant4; n];
    for l in 0..n {
        target.set_precision(l, Precision::Ant4);
    }
    let mut metric_trace = vec![target.evaluate()];
    let mut promoted = Vec::new();
    let budget = config.max_promotions.unwrap_or(n).min(n);
    let mut converged = baseline_metric - metric_trace[0] <= config.threshold;
    while !converged && promoted.len() < budget {
        // Greatest-MSE layer still at 4 bits (paper: "enlarge the bit width
        // of a layer with the greatest MSE to 8 bits").
        let candidate = (0..n)
            .filter(|l| precisions[*l] == Precision::Ant4)
            .max_by(|&a, &b| {
                target
                    .layer_mse(a)
                    .partial_cmp(&target.layer_mse(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        let Some(layer) = candidate else { break };
        precisions[layer] = Precision::Int8;
        target.set_precision(layer, Precision::Int8);
        promoted.push(layer);
        let metric = target.evaluate();
        metric_trace.push(metric);
        converged = baseline_metric - metric <= config.threshold;
    }
    MixedPrecisionReport {
        precisions,
        metric_trace,
        promoted,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic target: each layer contributes an accuracy penalty when
    /// at 4 bits, removed by promotion; MSE ranks the penalties.
    struct Synthetic {
        penalties: Vec<f64>,
        precisions: Vec<Precision>,
    }

    impl Synthetic {
        fn new(penalties: Vec<f64>) -> Self {
            let n = penalties.len();
            Synthetic {
                penalties,
                precisions: vec![Precision::Ant4; n],
            }
        }
    }

    impl MixedPrecisionTarget for Synthetic {
        fn num_layers(&self) -> usize {
            self.penalties.len()
        }
        fn layer_mse(&self, layer: usize) -> f64 {
            self.penalties[layer]
        }
        fn set_precision(&mut self, layer: usize, precision: Precision) {
            self.precisions[layer] = precision;
        }
        fn evaluate(&mut self) -> f64 {
            let loss: f64 = self
                .penalties
                .iter()
                .zip(&self.precisions)
                .filter(|(_, p)| **p == Precision::Ant4)
                .map(|(pen, _)| pen)
                .sum();
            1.0 - loss
        }
    }

    #[test]
    fn promotes_highest_mse_first() {
        let mut t = Synthetic::new(vec![0.001, 0.05, 0.002, 0.03]);
        let report = run_mixed_precision(
            &mut t,
            1.0,
            MixedPrecisionConfig {
                threshold: 0.01,
                max_promotions: None,
            },
        );
        // Promote layer 1 (0.05) then layer 3 (0.03): residual loss 0.003.
        assert_eq!(report.promoted, vec![1, 3]);
        assert!(report.converged);
        assert_eq!(report.precisions[1], Precision::Int8);
        assert_eq!(report.precisions[0], Precision::Ant4);
        assert!((report.low_bit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_promotion_needed_when_within_threshold() {
        let mut t = Synthetic::new(vec![0.001, 0.002]);
        let report = run_mixed_precision(&mut t, 1.0, MixedPrecisionConfig::default());
        assert!(report.converged);
        assert!(report.promoted.is_empty());
        assert_eq!(report.low_bit_ratio(), 1.0);
        assert_eq!(report.metric_trace.len(), 1);
    }

    #[test]
    fn budget_caps_promotions() {
        let mut t = Synthetic::new(vec![0.5, 0.5, 0.5]);
        let report = run_mixed_precision(
            &mut t,
            1.0,
            MixedPrecisionConfig {
                threshold: 0.0,
                max_promotions: Some(2),
            },
        );
        assert_eq!(report.promoted.len(), 2);
        assert!(!report.converged);
    }

    #[test]
    fn promotes_everything_when_necessary() {
        let mut t = Synthetic::new(vec![0.1, 0.2, 0.3]);
        let report = run_mixed_precision(
            &mut t,
            1.0,
            MixedPrecisionConfig {
                threshold: 0.0,
                max_promotions: None,
            },
        );
        assert_eq!(report.promoted.len(), 3);
        assert!(report.converged);
        assert_eq!(report.low_bit_ratio(), 0.0);
        // Promotion order is descending penalty.
        assert_eq!(report.promoted, vec![2, 1, 0]);
    }

    #[test]
    fn empty_model_is_trivially_converged() {
        let mut t = Synthetic::new(vec![]);
        let report = run_mixed_precision(&mut t, 1.0, MixedPrecisionConfig::default());
        assert!(report.converged);
        assert_eq!(report.low_bit_ratio(), 1.0);
    }
}
