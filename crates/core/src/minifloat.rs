//! Parametric low-bit floating-point formats (`float` in the paper's
//! candidate list, plus the AdaptiveFloat baseline's element format).
//!
//! A [`FloatFormat`] is the classical `sign? / E exponent bits / M mantissa
//! bits` layout of Eq. (1) in the paper, with IEEE-style subnormals so the
//! lattice reaches zero gracefully. The paper's observations hinge on this
//! format's *rigid resolution*: exponentially finer spacing toward zero,
//! which wastes representation space on unimportant small values (Sec. I).

use crate::QuantError;

/// A miniature floating-point format.
///
/// # Example
///
/// ```
/// use ant_core::minifloat::FloatFormat;
///
/// // The unsigned 4-bit float with a 2-bit exponent from paper Fig. 3.
/// let f = FloatFormat::new(2, 2, false)?;
/// assert_eq!(f.total_bits(), 4);
/// let lattice = f.lattice();
/// assert_eq!(lattice.len(), 16);
/// # Ok::<(), ant_core::QuantError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFormat {
    exp_bits: u32,
    man_bits: u32,
    signed: bool,
    bias: i32,
}

impl FloatFormat {
    /// Creates a format with the default bias `2^(E−1) − 1` (or 0 when
    /// `E == 1`).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidFloatFormat`] when `exp_bits == 0` or
    /// the total width exceeds 16 bits.
    pub fn new(exp_bits: u32, man_bits: u32, signed: bool) -> Result<Self, QuantError> {
        let default_bias = if exp_bits >= 1 {
            (1i32 << (exp_bits - 1)) - 1
        } else {
            0
        };
        Self::with_bias(exp_bits, man_bits, signed, default_bias)
    }

    /// Creates a format with an explicit exponent bias (AdaptiveFloat's
    /// tensor-wise bias, paper Sec. II-B).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidFloatFormat`] when `exp_bits == 0` or
    /// the total width exceeds 16 bits.
    pub fn with_bias(
        exp_bits: u32,
        man_bits: u32,
        signed: bool,
        bias: i32,
    ) -> Result<Self, QuantError> {
        let total = exp_bits + man_bits + u32::from(signed);
        if exp_bits == 0 || total > 16 {
            return Err(QuantError::InvalidFloatFormat { exp_bits, man_bits });
        }
        Ok(FloatFormat {
            exp_bits,
            man_bits,
            signed,
            bias,
        })
    }

    /// The paper's default b-bit float candidate: unsigned uses a 2-bit
    /// exponent (Fig. 3 "Float 2-bit Exp."); signed spends one bit on sign
    /// and uses a 3-bit exponent for b = 4, which makes it value-identical
    /// to signed PoT exactly as Sec. VII-E observes.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] when `bits < 3`.
    pub fn default_for_bits(bits: u32, signed: bool) -> Result<Self, QuantError> {
        if bits < 3 {
            return Err(QuantError::UnsupportedBitWidth { bits });
        }
        if signed {
            // 1 sign + (bits-1) split favouring exponent: E = bits-1-M with
            // M chosen so 4-bit → E3M0 (PoT-equivalent per the paper).
            let exp = (bits - 1).min(3);
            let man = bits - 1 - exp;
            FloatFormat::new(exp, man, true)
        } else {
            let exp = 2.min(bits - 1);
            let man = bits - exp;
            FloatFormat::new(exp, man, false)
        }
    }

    /// Exponent field width.
    pub fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Mantissa field width.
    pub fn man_bits(&self) -> u32 {
        self.man_bits
    }

    /// Whether the format has a sign bit.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Exponent bias.
    pub fn bias(&self) -> i32 {
        self.bias
    }

    /// Total encoded width including any sign bit.
    pub fn total_bits(&self) -> u32 {
        self.exp_bits + self.man_bits + u32::from(self.signed)
    }

    /// Number of distinct codes.
    pub fn num_codes(&self) -> u32 {
        1 << self.total_bits()
    }

    /// Decodes a code (sign ++ exponent ++ mantissa, sign highest) to its
    /// real value. Exponent field 0 is subnormal: `2^(1−bias) · m/2^M`.
    ///
    /// # Panics
    ///
    /// Panics if `code >= num_codes()`.
    pub fn decode(&self, code: u32) -> f64 {
        assert!(code < self.num_codes(), "code out of range");
        let man_mask = (1u32 << self.man_bits) - 1;
        let m = code & man_mask;
        let e = (code >> self.man_bits) & ((1 << self.exp_bits) - 1);
        let neg = self.signed && (code >> (self.exp_bits + self.man_bits)) & 1 == 1;
        let frac_den = (1u64 << self.man_bits) as f64;
        let mag = if e == 0 {
            // Subnormal range.
            2f64.powi(1 - self.bias) * (m as f64 / frac_den)
        } else {
            2f64.powi(e as i32 - self.bias) * (1.0 + m as f64 / frac_den)
        };
        if neg {
            -mag
        } else {
            mag
        }
    }

    /// Largest finite magnitude.
    pub fn max_value(&self) -> f64 {
        let emax = (1i32 << self.exp_bits) - 1;
        2f64.powi(emax - self.bias) * (2.0 - 1.0 / (1u64 << self.man_bits) as f64)
    }

    /// The sorted set of representable values (including negatives for
    /// signed formats; −0 and +0 collapse to a single 0).
    pub fn lattice(&self) -> Vec<f64> {
        let mut v: Vec<f64> = (0..self.num_codes()).map(|c| self.decode(c)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite lattice"));
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(FloatFormat::new(0, 3, false).is_err());
        assert!(FloatFormat::new(9, 9, false).is_err());
        assert!(FloatFormat::new(2, 2, false).is_ok());
    }

    #[test]
    fn e2m2_unsigned_lattice() {
        // E2M2, bias 1: subnormals {0, .25, .5, .75}·2^0, then
        // e=1: 1..1.75, e=2: 2..3.5, e=3: 4..7.
        let f = FloatFormat::new(2, 2, false).unwrap();
        let lat = f.lattice();
        assert_eq!(lat.len(), 16);
        assert_eq!(lat[0], 0.0);
        assert_eq!(*lat.last().unwrap(), 7.0);
        assert!((f.max_value() - 7.0).abs() < 1e-12);
        // Subnormal spacing equals first normal spacing (no gap at the
        // subnormal boundary).
        assert!((lat[1] - 0.25).abs() < 1e-12);
        assert!((lat[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn signed_format_is_symmetric() {
        let f = FloatFormat::new(3, 0, true).unwrap();
        let lat = f.lattice();
        // Symmetric: for every v, −v is present.
        for &v in &lat {
            assert!(lat.iter().any(|&u| u == -v), "missing -{v}");
        }
        // ±0 collapse: 2^4 codes → 15 distinct values.
        assert_eq!(lat.len(), 15);
    }

    #[test]
    fn signed_4bit_default_equals_pot_shape() {
        // Paper Sec. VII-E: signed 4-bit float and PoT are identical.
        let f = FloatFormat::default_for_bits(4, true).unwrap();
        assert_eq!((f.exp_bits(), f.man_bits()), (3, 0));
        let lat = f.lattice();
        let pos: Vec<f64> = lat.iter().copied().filter(|&v| v > 0.0).collect();
        // All positive values are powers of two.
        for v in pos {
            assert_eq!(v.log2().fract(), 0.0, "{v} not a power of two");
        }
    }

    #[test]
    fn unsigned_default_is_e2() {
        let f = FloatFormat::default_for_bits(4, false).unwrap();
        assert_eq!((f.exp_bits(), f.man_bits()), (2, 2));
        assert_eq!(f.total_bits(), 4);
    }

    #[test]
    fn bias_shifts_lattice() {
        let a = FloatFormat::with_bias(2, 2, false, 0).unwrap();
        let b = FloatFormat::with_bias(2, 2, false, 2).unwrap();
        // Same shape, scaled by 2^-2.
        let la = a.lattice();
        let lb = b.lattice();
        for (x, y) in la.iter().zip(&lb) {
            assert!((x / 4.0 - y).abs() < 1e-12);
        }
    }

    #[test]
    fn decode_monotonic_in_unsigned_code() {
        let f = FloatFormat::new(3, 2, false).unwrap();
        let mut prev = -1.0;
        for c in 0..f.num_codes() {
            let v = f.decode(c);
            assert!(v > prev, "code {c}: {v} <= {prev}");
            prev = v;
        }
    }

    #[test]
    fn rigid_resolution_near_zero() {
        // The paper's critique: float resolution increases toward zero.
        let f = FloatFormat::new(3, 1, false).unwrap();
        let lat = f.lattice();
        let small_gap = lat[2] - lat[1];
        let large_gap = lat[lat.len() - 1] - lat[lat.len() - 2];
        assert!(large_gap > small_gap * 8.0);
    }
}
