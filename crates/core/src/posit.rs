//! A minimal Posit codec for the paper's related-work comparison
//! (Sec. VIII): "Posit ... uses variable length encoding for the regime
//! bits to extend the exponent range. Our proposed flint is different from
//! Posit in the aspect that flint has no regime bit and an efficient
//! encoding/decoding process based on float or int type."
//!
//! This module implements standard `posit<n, es>` decoding (sign, regime,
//! exponent, fraction) so the claim can be made quantitative: the
//! `ext_posit_comparison` report compares 4-bit posit lattices against
//! flint on the paper's tensor families, and tests verify the structural
//! difference (posit's regime is unbounded-length; flint's exponent field
//! is delimited by the first one).

use crate::QuantError;

/// A `posit<n, es>` format (Gustafson & Yonemoto, 2017).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posit {
    n: u32,
    es: u32,
}

impl Posit {
    /// Creates a posit format with `n` total bits and `es` exponent bits.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] unless `2 ≤ n ≤ 16` and
    /// `es < n - 1`.
    pub fn new(n: u32, es: u32) -> Result<Self, QuantError> {
        if !(2..=16).contains(&n) || es >= n - 1 {
            return Err(QuantError::UnsupportedBitWidth { bits: n });
        }
        Ok(Posit { n, es })
    }

    /// Total width in bits.
    pub fn bits(&self) -> u32 {
        self.n
    }

    /// Exponent field width (the posit `es` parameter).
    pub fn es(&self) -> u32 {
        self.es
    }

    /// `useed = 2^(2^es)`, the regime step factor.
    pub fn useed(&self) -> f64 {
        2f64.powi(1 << self.es)
    }

    /// Decodes a posit code to its real value. Code 0 is zero; the
    /// "NaR" pattern (sign bit only) decodes to `f64::NAN`.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 2^n`.
    pub fn decode(&self, code: u32) -> f64 {
        let n = self.n;
        assert!(code < (1u32 << n), "code exceeds {n} bits");
        if code == 0 {
            return 0.0;
        }
        if code == 1 << (n - 1) {
            return f64::NAN; // NaR
        }
        let negative = (code >> (n - 1)) & 1 == 1;
        // Two's complement negation for negative posits.
        let body = if negative {
            ((!code).wrapping_add(1)) & ((1 << n) - 1)
        } else {
            code
        };
        let bits = body & ((1 << (n - 1)) - 1); // drop the (now 0) sign bit
                                                // Regime: run of identical bits after the sign.
        let width = n - 1;
        let first = (bits >> (width - 1)) & 1;
        let mut run = 1u32;
        while run < width && (bits >> (width - 1 - run)) & 1 == first {
            run += 1;
        }
        let k: i32 = if first == 1 {
            run as i32 - 1
        } else {
            -(run as i32)
        };
        // Remaining bits after the regime and its terminating bit.
        let consumed = (run + 1).min(width);
        let rest_width = width - consumed;
        let rest = bits & ((1u32 << rest_width).wrapping_sub(1));
        // Exponent: next es bits (zero-padded on the right).
        let e_width = self.es.min(rest_width);
        let e = if self.es == 0 {
            0
        } else {
            let e_partial = rest >> (rest_width - e_width);
            e_partial << (self.es - e_width)
        };
        let f_width = rest_width - e_width;
        let f = rest & ((1u32 << f_width).wrapping_sub(1));
        let fraction = 1.0 + f as f64 / 2f64.powi(f_width as i32);
        let mag = self.useed().powi(k) * 2f64.powi(e as i32) * fraction;
        if negative {
            -mag
        } else {
            mag
        }
    }

    /// The sorted finite value lattice (NaR excluded).
    pub fn lattice(&self) -> Vec<f64> {
        let mut v: Vec<f64> = (0..(1u32 << self.n))
            .map(|c| self.decode(c))
            .filter(|x| x.is_finite())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        v.dedup();
        v
    }

    /// Length of the regime field (including the terminating bit when
    /// present) for a code — posit's *variable-length* component, which is
    /// what costs hardware relative to flint's first-one coding.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 2^n` or the code is 0 / NaR (no regime).
    pub fn regime_length(&self, code: u32) -> u32 {
        let n = self.n;
        assert!(code < (1u32 << n), "code exceeds {n} bits");
        assert!(code != 0 && code != 1 << (n - 1), "zero/NaR has no regime");
        let negative = (code >> (n - 1)) & 1 == 1;
        let body = if negative {
            ((!code).wrapping_add(1)) & ((1 << n) - 1)
        } else {
            code
        };
        let bits = body & ((1 << (n - 1)) - 1);
        let width = n - 1;
        let first = (bits >> (width - 1)) & 1;
        let mut run = 1u32;
        while run < width && (bits >> (width - 1 - run)) & 1 == first {
            run += 1;
        }
        (run + 1).min(width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Posit::new(1, 0).is_err());
        assert!(Posit::new(4, 3).is_err());
        assert!(Posit::new(4, 1).is_ok());
        assert!(Posit::new(17, 2).is_err());
    }

    #[test]
    fn posit4_es0_known_values() {
        // posit<4,0>: useed 2. Positive codes 0001..0111:
        // 0001=1/4? Standard table: p<4,0> positives are
        // 0001=0.25, 0010=0.5, 0011=0.75, 0100=1, 0101=1.5, 0110=2, 0111=4.
        let p = Posit::new(4, 0).unwrap();
        let expect = [
            (1u32, 0.25),
            (2, 0.5),
            (3, 0.75),
            (4, 1.0),
            (5, 1.5),
            (6, 2.0),
            (7, 4.0),
        ];
        for (code, v) in expect {
            assert_eq!(p.decode(code), v, "code {code:04b}");
        }
        assert_eq!(p.decode(0), 0.0);
        assert!(p.decode(0b1000).is_nan());
    }

    #[test]
    fn negation_is_twos_complement() {
        let p = Posit::new(4, 0).unwrap();
        for code in 1..8u32 {
            let neg = ((!code).wrapping_add(1)) & 0xF;
            assert_eq!(p.decode(neg), -p.decode(code), "code {code:04b}");
        }
    }

    #[test]
    fn posit8_lattice_is_symmetric_and_monotone_by_magnitude() {
        let p = Posit::new(8, 1).unwrap();
        let lat = p.lattice();
        assert_eq!(lat.len(), 255); // 256 codes − NaR, ±0 collapse... 0 unique
        for &v in &lat {
            assert!(lat.contains(&-v), "missing -{v}");
        }
        assert!(lat.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn useed_and_max_value() {
        let p = Posit::new(8, 1).unwrap();
        assert_eq!(p.useed(), 4.0);
        // Max posit<8,1> = useed^(n-2) = 4^6 = 4096.
        let max = p.lattice().last().copied().unwrap();
        assert_eq!(max, 4096.0);
        assert_eq!(p.bits(), 8);
        assert_eq!(p.es(), 1);
    }

    #[test]
    fn regime_is_variable_length_unlike_flint() {
        // The structural contrast the paper draws (Sec. VIII): posit codes
        // of the same width have different regime lengths, so field
        // boundaries move with the value; flint's exponent code never
        // exceeds its fixed budget and is delimited by the first one.
        let p = Posit::new(8, 1).unwrap();
        let lengths: std::collections::BTreeSet<u32> =
            (1..128u32).map(|c| p.regime_length(c)).collect();
        assert!(lengths.len() >= 4, "regime lengths {lengths:?}");
        assert!(lengths.contains(&2) && lengths.contains(&7));
    }

    #[test]
    fn tapered_precision_near_one() {
        // Posit's signature: more fraction bits near 1.0, fewer at the
        // extremes — the same "important middle" idea as flint, achieved
        // with a variable-length regime.
        let p = Posit::new(8, 0).unwrap();
        let lat = p.lattice();
        let gap_near = |target: f64| {
            let pos = lat.partition_point(|&v| v < target);
            lat[pos.min(lat.len() - 1)] - lat[pos.saturating_sub(1)]
        };
        let near_one = gap_near(1.0);
        let near_max = gap_near(lat.last().unwrap() * 0.9);
        assert!(near_max > near_one * 8.0, "{near_one} vs {near_max}");
    }
}
