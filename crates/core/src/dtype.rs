//! The unified data-type abstraction over ANT's primitive types
//! (paper Sec. IV-B): `int`, `PoT`, `float` and `flint`.
//!
//! Every primitive is *fixed-length*: a tensor quantized with any of them
//! stores exactly `bits` (+ sign) per element, which is what keeps ANT's
//! memory accesses aligned (paper Table I). A [`DataType`] names a
//! primitive at a width and signedness; a [`Codec`] materialises its
//! normalized value lattice and performs the hardware-faithful snap
//! (quantize-to-lattice) operation.

use crate::flint::Flint;
use crate::minifloat::FloatFormat;
use crate::QuantError;

/// The primitive numeric families ANT composes (paper Fig. 3 and Sec. IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveType {
    /// Fixed-point integer: uniform resolution, narrow range.
    Int,
    /// Power-of-two: exponent only, extreme dynamic range.
    Pot,
    /// Miniature float: exponential spacing, rigid resolution near zero.
    Float,
    /// ANT's composite primitive: int-like in the middle, PoT-like at the
    /// extremes (Sec. IV-A).
    Flint,
}

impl std::fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PrimitiveType::Int => "int",
            PrimitiveType::Pot => "pot",
            PrimitiveType::Float => "float",
            PrimitiveType::Flint => "flint",
        };
        f.write_str(s)
    }
}

/// A concrete numeric data type: primitive × bit width × signedness.
///
/// Signed variants spend their most significant bit on a sign and encode a
/// `(bits − 1)`-wide magnitude (sign-magnitude, paper Sec. V-C), so signed
/// and unsigned variants of a primitive have the same total width.
///
/// # Example
///
/// ```
/// use ant_core::{DataType, Codec};
///
/// let dt = DataType::flint(4, false)?;
/// let codec = Codec::new(dt)?;
/// assert_eq!(codec.max_value(), 64.0);
/// assert_eq!(codec.snap(11.0), 12.0); // Algorithm 1's worked example
/// # Ok::<(), ant_core::QuantError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataType {
    primitive: PrimitiveType,
    bits: u32,
    signed: bool,
    /// Explicit float format (only for `PrimitiveType::Float`).
    float_format: Option<FloatFormat>,
}

impl DataType {
    /// A `bits`-wide two's-complement-style integer type. Signed variants
    /// use the symmetric range `[−(2^(b−1)−1), 2^(b−1)−1]` as is standard
    /// for weight quantization.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] outside `2..=16`.
    pub fn int(bits: u32, signed: bool) -> Result<Self, QuantError> {
        if !(2..=16).contains(&bits) {
            return Err(QuantError::UnsupportedBitWidth { bits });
        }
        Ok(DataType {
            primitive: PrimitiveType::Int,
            bits,
            signed,
            float_format: None,
        })
    }

    /// A `bits`-wide power-of-two type: code 0 is zero, code `c ≥ 1` is
    /// `2^(c−1)` (per magnitude for signed variants).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] outside `2..=6` (wider
    /// PoT lattices overflow `f32` dynamic range to no benefit).
    pub fn pot(bits: u32, signed: bool) -> Result<Self, QuantError> {
        if !(2..=6).contains(&bits) {
            return Err(QuantError::UnsupportedBitWidth { bits });
        }
        Ok(DataType {
            primitive: PrimitiveType::Pot,
            bits,
            signed,
            float_format: None,
        })
    }

    /// A `bits`-wide miniature float using the paper's default field split
    /// (see [`FloatFormat::default_for_bits`]).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] when `bits < 3`.
    pub fn float(bits: u32, signed: bool) -> Result<Self, QuantError> {
        let fmt = FloatFormat::default_for_bits(bits, signed)?;
        Ok(DataType {
            primitive: PrimitiveType::Float,
            bits,
            signed,
            float_format: Some(fmt),
        })
    }

    /// A float type with an explicit [`FloatFormat`].
    pub fn float_with_format(fmt: FloatFormat) -> Self {
        DataType {
            primitive: PrimitiveType::Float,
            bits: fmt.total_bits(),
            signed: fmt.is_signed(),
            float_format: Some(fmt),
        }
    }

    /// A `bits`-wide flint type (paper Sec. IV-A).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] when the (magnitude)
    /// width falls outside the supported flint range: unsigned `3..=8`,
    /// signed `4..=9`.
    pub fn flint(bits: u32, signed: bool) -> Result<Self, QuantError> {
        let mag_bits = if signed { bits.saturating_sub(1) } else { bits };
        Flint::new(mag_bits)?;
        Ok(DataType {
            primitive: PrimitiveType::Flint,
            bits,
            signed,
            float_format: None,
        })
    }

    /// The primitive family.
    pub fn primitive(&self) -> PrimitiveType {
        self.primitive
    }

    /// Total encoded bits per element, including any sign bit.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Whether the type represents negative values.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The float format, when this is a float type.
    pub fn float_format(&self) -> Option<FloatFormat> {
        self.float_format
    }

    /// Magnitude width: `bits` for unsigned types, `bits − 1` for signed.
    pub fn magnitude_bits(&self) -> u32 {
        if self.signed {
            self.bits - 1
        } else {
            self.bits
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            self.primitive,
            self.bits,
            if self.signed { "s" } else { "u" }
        )
    }
}

/// How a codec snaps a real value onto its lattice.
#[derive(Debug, Clone)]
enum SnapKind {
    /// Round-to-nearest integer with clamping.
    IntRound { lo: f32, hi: f32 },
    /// The hardware flint path (Algorithm 1) on the magnitude.
    FlintHw(Flint),
    /// Nearest lattice value by binary search over magnitudes.
    NearestMagnitude,
}

/// A materialised codec for a [`DataType`]: the sorted normalized value
/// lattice plus the snap operation.
///
/// The lattice is in *normalized units*; a quantizer maps real data onto it
/// with a scale factor `s` such that `x ≈ s · snap(x / s)` (paper Eq. (2)).
#[derive(Debug, Clone)]
pub struct Codec {
    dtype: DataType,
    /// Sorted non-negative magnitudes (excluding sign mirroring).
    magnitudes: Vec<f32>,
    max: f32,
    snap: SnapKind,
}

impl Codec {
    /// Builds the codec for `dtype`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] if the type's parameters
    /// are invalid (cannot happen for types built via `DataType`
    /// constructors, but guards hand-rolled values).
    pub fn new(dtype: DataType) -> Result<Self, QuantError> {
        let mag_bits = dtype.magnitude_bits();
        match dtype.primitive {
            PrimitiveType::Int => {
                let hi = ((1u64 << mag_bits) - 1) as f32;
                let lo = if dtype.signed { -hi } else { 0.0 };
                let magnitudes: Vec<f32> = (0..=(hi as u32)).map(|v| v as f32).collect();
                Ok(Codec {
                    dtype,
                    max: hi,
                    magnitudes,
                    snap: SnapKind::IntRound { lo, hi },
                })
            }
            PrimitiveType::Pot => {
                let mut magnitudes = vec![0.0f32];
                for c in 1..(1u32 << mag_bits) {
                    magnitudes.push(2f32.powi(c as i32 - 1));
                }
                let max = *magnitudes.last().expect("non-empty");
                Ok(Codec {
                    dtype,
                    max,
                    magnitudes,
                    snap: SnapKind::NearestMagnitude,
                })
            }
            PrimitiveType::Float => {
                let fmt = dtype
                    .float_format
                    .unwrap_or(FloatFormat::default_for_bits(dtype.bits, dtype.signed)?);
                let mut magnitudes: Vec<f32> = fmt
                    .lattice()
                    .into_iter()
                    .filter(|&v| v >= 0.0)
                    .map(|v| v as f32)
                    .collect();
                magnitudes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                magnitudes.dedup();
                let max = *magnitudes.last().expect("non-empty");
                Ok(Codec {
                    dtype,
                    max,
                    magnitudes,
                    snap: SnapKind::NearestMagnitude,
                })
            }
            PrimitiveType::Flint => {
                let flint = Flint::new(mag_bits)?;
                let magnitudes: Vec<f32> = flint.lattice().into_iter().map(|v| v as f32).collect();
                let max = *magnitudes.last().expect("non-empty");
                Ok(Codec {
                    dtype,
                    max,
                    magnitudes,
                    snap: SnapKind::FlintHw(flint),
                })
            }
        }
    }

    /// The data type this codec implements.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Largest representable normalized magnitude.
    pub fn max_value(&self) -> f32 {
        self.max
    }

    /// Sorted non-negative magnitude lattice.
    pub fn magnitudes(&self) -> &[f32] {
        &self.magnitudes
    }

    /// The full signed lattice (mirrored magnitudes for signed types).
    pub fn lattice(&self) -> Vec<f32> {
        if self.dtype.signed {
            let mut v: Vec<f32> = self
                .magnitudes
                .iter()
                .rev()
                .filter(|&&m| m > 0.0)
                .map(|&m| -m)
                .chain(self.magnitudes.iter().copied())
                .collect();
            v.dedup();
            v
        } else {
            self.magnitudes.clone()
        }
    }

    /// The wire code space size, `2^bits`.
    pub fn num_codes(&self) -> usize {
        1usize << self.dtype.bits
    }

    /// Decode lookup table over the wire code space: entry `c` is the
    /// normalized value of code `c` under the hardware decoder semantics of
    /// `ant-hw` (Fig. 9's boundary decoders):
    ///
    /// * `int` — two's complement (sign-extended when signed),
    /// * `PoT` — sign bit above a magnitude code `m`, value `2^(m−1)`
    ///   (`m = 0` is zero),
    /// * `flint` — sign bit above an unsigned flint magnitude (Table III),
    /// * `float` — sign bit above an index into the sorted magnitude
    ///   lattice (a pure LUT decoder; indices past the lattice saturate to
    ///   the maximum and are never produced by [`Codec::encode`]).
    ///
    /// The table has [`Codec::num_codes`] entries (16 for the paper's 4-bit
    /// types), which is what makes bulk decoding a single indexed load per
    /// element.
    pub fn decode_lut(&self) -> Vec<f32> {
        let bits = self.dtype.bits;
        let mag_bits = self.dtype.magnitude_bits();
        (0..self.num_codes() as u32)
            .map(|code| {
                if let SnapKind::IntRound { .. } = self.snap {
                    return if self.dtype.signed {
                        let shift = 32 - bits;
                        (((code << shift) as i32) >> shift) as f32
                    } else {
                        code as f32
                    };
                }
                let (neg, mag_code) = if self.dtype.signed {
                    ((code >> mag_bits) & 1 == 1, code & ((1 << mag_bits) - 1))
                } else {
                    (false, code)
                };
                let mag = match &self.snap {
                    SnapKind::IntRound { .. } => unreachable!("handled above"),
                    SnapKind::FlintHw(flint) => flint.decode(mag_code) as f32,
                    SnapKind::NearestMagnitude => {
                        let idx = (mag_code as usize).min(self.magnitudes.len() - 1);
                        self.magnitudes[idx]
                    }
                };
                if neg {
                    -mag
                } else {
                    mag
                }
            })
            .collect()
    }

    /// Integer decode LUT: [`Codec::decode_lut`] with every entry as the
    /// exact lattice integer it is, or `None` when any entry is
    /// non-integral (the `float` primitive's fractional mantissas) or
    /// falls outside `i32`. This is the table the packed runtime's integer
    /// GEMM consumes — after the boundary decode every ANT operand *is* a
    /// small integer (paper Sec. VI-A), so the MAC array never needs the
    /// f32 image at all.
    pub fn decode_lut_int(&self) -> Option<Vec<i32>> {
        self.decode_lut()
            .into_iter()
            .map(|v| {
                if v.fract() != 0.0 {
                    return None;
                }
                let wide = v as i64;
                if wide < i32::MIN as i64 || wide > i32::MAX as i64 {
                    return None;
                }
                Some(wide as i32)
            })
            .collect()
    }

    /// Narrow decode LUT: [`Codec::decode_lut_int`] when every lattice
    /// value fits a single byte (`i8`), which is what qualifies a type for
    /// the byte-wide microkernel GEMM path. All of the paper's 4-bit types
    /// qualify (Table I magnitudes top out at 64); `int8` does too (±127);
    /// wider flint/PoT magnitudes fall back to the `i16`/`i32` paths.
    pub fn decode_lut_i8(&self) -> Option<Vec<i8>> {
        self.decode_lut_int()?
            .into_iter()
            .map(|v| i8::try_from(v).ok())
            .collect()
    }

    /// Encodes a normalized value to its wire code: the inverse of
    /// [`Codec::decode_lut`] composed with [`Codec::snap`], so that for
    /// every `x`, `decode_lut()[encode(x) as usize] == snap(x)`. This is
    /// the software side of the paper's fixed-length encoding: what
    /// [`crate::pack::PackedTensor`] stores and what the `ant-hw` decoders
    /// consume.
    pub fn encode(&self, x: f32) -> u32 {
        let mag_bits = self.dtype.magnitude_bits();
        let sign_bit = 1u32 << mag_bits;
        match &self.snap {
            SnapKind::IntRound { lo, hi } => {
                let v = x.round().clamp(*lo, *hi) as i32;
                (v as u32) & ((1u32 << self.dtype.bits) - 1)
            }
            SnapKind::FlintHw(flint) => {
                let mag = if self.dtype.signed {
                    x.abs()
                } else {
                    x.max(0.0)
                }
                .round()
                .min(flint.max_value() as f32) as u64;
                let code = flint.encode_int(mag);
                if self.dtype.signed && x < 0.0 && mag > 0 {
                    code | sign_bit
                } else {
                    code
                }
            }
            SnapKind::NearestMagnitude => {
                let mag = if self.dtype.signed {
                    x.abs()
                } else {
                    x.max(0.0)
                };
                let idx = nearest_index(&self.magnitudes, mag) as u32;
                if self.dtype.signed && x < 0.0 && idx > 0 {
                    idx | sign_bit
                } else {
                    idx
                }
            }
        }
    }

    /// Snaps a normalized value to the nearest representable lattice point,
    /// using the hardware-faithful path for each primitive: integer rounding
    /// for `int`, Algorithm 1 (with its double rounding) for `flint`, and
    /// nearest-value for `PoT`/`float`. Unsigned codecs clamp negatives to
    /// zero; magnitudes beyond the range clamp to the maximum.
    pub fn snap(&self, x: f32) -> f32 {
        match &self.snap {
            SnapKind::IntRound { lo, hi } => x.round().clamp(*lo, *hi),
            SnapKind::FlintHw(flint) => {
                if self.dtype.signed {
                    let mag = x.abs().round().min(flint.max_value() as f32) as u64;
                    let q = flint.decode(flint.encode_int(mag)) as f32;
                    if x < 0.0 {
                        -q
                    } else {
                        q
                    }
                } else {
                    let e = x.round().max(0.0).min(flint.max_value() as f32) as u64;
                    flint.decode(flint.encode_int(e)) as f32
                }
            }
            SnapKind::NearestMagnitude => {
                let mag = if self.dtype.signed {
                    x.abs()
                } else {
                    x.max(0.0)
                };
                let q = nearest(&self.magnitudes, mag);
                if self.dtype.signed && x < 0.0 {
                    -q
                } else {
                    q
                }
            }
        }
    }
}

/// Index of the nearest value in a sorted slice (ties go to the lower
/// value).
fn nearest_index(sorted: &[f32], x: f32) -> usize {
    debug_assert!(!sorted.is_empty());
    let pos = sorted.partition_point(|&v| v < x);
    if pos == 0 {
        0
    } else if pos >= sorted.len() {
        sorted.len() - 1
    } else if x - sorted[pos - 1] <= sorted[pos] - x {
        pos - 1
    } else {
        pos
    }
}

/// Nearest value in a sorted slice (ties go to the lower value).
fn nearest(sorted: &[f32], x: f32) -> f32 {
    sorted[nearest_index(sorted, x)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_display() {
        assert_eq!(DataType::flint(4, true).unwrap().to_string(), "flint4s");
        assert_eq!(DataType::int(8, false).unwrap().to_string(), "int8u");
        assert_eq!(DataType::pot(4, false).unwrap().to_string(), "pot4u");
    }

    #[test]
    fn dtype_width_validation() {
        assert!(DataType::int(1, false).is_err());
        assert!(DataType::int(17, true).is_err());
        assert!(DataType::pot(7, false).is_err());
        assert!(DataType::flint(3, true).is_err()); // magnitude would be 2 bits
        assert!(DataType::flint(3, false).is_ok());
        assert!(DataType::float(2, false).is_err());
    }

    #[test]
    fn int_codec_signed_symmetric() {
        let c = Codec::new(DataType::int(4, true).unwrap()).unwrap();
        assert_eq!(c.max_value(), 7.0);
        assert_eq!(c.snap(9.3), 7.0);
        assert_eq!(c.snap(-9.3), -7.0);
        assert_eq!(c.snap(2.4), 2.0);
        assert_eq!(c.snap(-2.6), -3.0);
        let lat = c.lattice();
        assert_eq!(lat.len(), 15);
        assert_eq!(lat[0], -7.0);
    }

    #[test]
    fn int_codec_unsigned_clamps_negative() {
        let c = Codec::new(DataType::int(4, false).unwrap()).unwrap();
        assert_eq!(c.max_value(), 15.0);
        assert_eq!(c.snap(-3.0), 0.0);
        assert_eq!(c.snap(15.6), 15.0);
    }

    #[test]
    fn pot_codec_lattice() {
        let c = Codec::new(DataType::pot(4, false).unwrap()).unwrap();
        assert_eq!(c.magnitudes()[0], 0.0);
        assert_eq!(c.magnitudes()[1], 1.0);
        assert_eq!(c.max_value(), 2f32.powi(14));
        // Nearest: 3.0 is closer to 4 than to 2 (equidistant ties to lower);
        // 2.9 → 2, 3.1 → 4.
        assert_eq!(c.snap(2.9), 2.0);
        assert_eq!(c.snap(3.1), 4.0);
    }

    #[test]
    fn signed_pot_is_4bit_float_shaped() {
        // Paper Sec. VII-E: signed 4-bit float and PoT are identical.
        let pot = Codec::new(DataType::pot(4, true).unwrap()).unwrap();
        let flt = Codec::new(DataType::float(4, true).unwrap()).unwrap();
        let pm = pot.magnitudes();
        let fm = flt.magnitudes();
        assert_eq!(pm.len(), fm.len());
        // Same lattice up to a constant scale factor.
        let ratio = pm[1] / fm[1];
        for (p, f) in pm.iter().zip(fm.iter()).skip(1) {
            assert!((p / f - ratio).abs() < 1e-6, "pot {p} float {f}");
        }
    }

    #[test]
    fn flint_codec_matches_table_ii() {
        let c = Codec::new(DataType::flint(4, false).unwrap()).unwrap();
        assert_eq!(
            c.magnitudes(),
            &[
                0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 14.0, 16.0, 24.0, 32.0,
                64.0
            ]
        );
        assert_eq!(c.snap(11.0), 12.0);
        assert_eq!(c.snap(100.0), 64.0);
        assert_eq!(c.snap(-5.0), 0.0);
    }

    #[test]
    fn signed_flint_uses_three_bit_magnitude() {
        let c = Codec::new(DataType::flint(4, true).unwrap()).unwrap();
        assert_eq!(c.magnitudes(), &[0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0]);
        assert_eq!(c.snap(-5.2), -6.0);
        assert_eq!(c.snap(5.2), 6.0);
        assert_eq!(c.snap(-100.0), -16.0);
        let lat = c.lattice();
        assert_eq!(lat.len(), 15); // ±7 magnitudes + 0
    }

    #[test]
    fn float_codec_snap_nearest() {
        let c = Codec::new(DataType::float(4, false).unwrap()).unwrap();
        // E2M2 max is 7.0
        assert_eq!(c.max_value(), 7.0);
        assert_eq!(c.snap(100.0), 7.0);
        // Between 6 and 7 → nearest
        assert_eq!(c.snap(6.6), 7.0);
    }

    #[test]
    fn snap_is_idempotent_for_all_types() {
        for dt in [
            DataType::int(4, true).unwrap(),
            DataType::int(4, false).unwrap(),
            DataType::pot(4, true).unwrap(),
            DataType::float(4, false).unwrap(),
            DataType::flint(4, true).unwrap(),
            DataType::flint(5, false).unwrap(),
        ] {
            let c = Codec::new(dt).unwrap();
            for &v in &c.lattice() {
                assert_eq!(c.snap(v), v, "{dt}: snap({v})");
            }
        }
    }

    #[test]
    fn snap_never_exceeds_lattice_gap() {
        for dt in [
            DataType::flint(4, false).unwrap(),
            DataType::pot(4, false).unwrap(),
            DataType::float(4, false).unwrap(),
        ] {
            let c = Codec::new(dt).unwrap();
            let lat = c.lattice();
            let mut x = 0.0f32;
            while x <= c.max_value() {
                let q = c.snap(x);
                let pos = lat.partition_point(|&v| v < x);
                let gap = if pos == 0 || pos >= lat.len() {
                    f32::INFINITY
                } else {
                    lat[pos] - lat[pos - 1]
                };
                assert!((q - x).abs() <= gap.max(1.0), "{dt}: snap({x}) = {q}");
                x += 0.37;
            }
        }
    }

    #[test]
    fn encode_decode_lut_inverts_snap_for_all_types() {
        for dt in [
            DataType::int(4, true).unwrap(),
            DataType::int(4, false).unwrap(),
            DataType::int(8, true).unwrap(),
            DataType::pot(4, true).unwrap(),
            DataType::pot(4, false).unwrap(),
            DataType::float(4, true).unwrap(),
            DataType::float(5, false).unwrap(),
            DataType::flint(4, true).unwrap(),
            DataType::flint(4, false).unwrap(),
            DataType::flint(6, true).unwrap(),
        ] {
            let c = Codec::new(dt).unwrap();
            let lut = c.decode_lut();
            assert_eq!(lut.len(), c.num_codes(), "{dt}");
            let mut x = -(c.max_value() * 1.5);
            let step = c.max_value() / 37.0;
            while x <= c.max_value() * 1.5 {
                let code = c.encode(x);
                assert!(code < c.num_codes() as u32, "{dt}: code {code}");
                let decoded = lut[code as usize];
                let snapped = c.snap(x);
                assert_eq!(decoded, snapped, "{dt}: x={x} code={code:b}");
                x += step;
            }
        }
    }

    #[test]
    fn decode_lut_int_matches_f32_lut_exactly() {
        for dt in [
            DataType::int(4, true).unwrap(),
            DataType::int(8, true).unwrap(),
            DataType::int(8, false).unwrap(),
            DataType::pot(4, true).unwrap(),
            DataType::pot(4, false).unwrap(),
            DataType::flint(4, true).unwrap(),
            DataType::flint(8, false).unwrap(),
            DataType::flint(9, true).unwrap(),
        ] {
            let c = Codec::new(dt).unwrap();
            let lut = c.decode_lut();
            let int = c
                .decode_lut_int()
                .unwrap_or_else(|| panic!("{dt} is integral"));
            assert_eq!(int.len(), c.num_codes(), "{dt}");
            for (i, (&f, &v)) in lut.iter().zip(&int).enumerate() {
                assert_eq!(f, v as f32, "{dt}: code {i}");
            }
        }
    }

    #[test]
    fn decode_lut_int_rejects_fractional_lattices() {
        // E2M2 floats have fractional lattice points (0.25 steps).
        let c = Codec::new(DataType::float(5, true).unwrap()).unwrap();
        assert!(c.decode_lut_int().is_none());
        // pot6u magnitudes reach 2^62, far past i32.
        let c = Codec::new(DataType::pot(6, false).unwrap()).unwrap();
        assert!(c.decode_lut_int().is_none());
    }

    #[test]
    fn decode_lut_i8_covers_exactly_the_byte_sized_types() {
        // Every paper 4-bit type fits a byte, as does int8 (hw range −128).
        for dt in [
            DataType::int(4, true).unwrap(),
            DataType::int(8, true).unwrap(),
            DataType::pot(4, true).unwrap(),
            DataType::flint(4, true).unwrap(),
            DataType::flint(4, false).unwrap(),
        ] {
            let c = Codec::new(dt).unwrap();
            let lut8 = c.decode_lut_i8().unwrap_or_else(|| panic!("{dt} fits i8"));
            let lut = c.decode_lut_int().unwrap();
            for (&narrow, &wide) in lut8.iter().zip(&lut) {
                assert_eq!(narrow as i32, wide, "{dt}");
            }
        }
        // flint8u reaches 16384: integral but not byte-sized.
        let c = Codec::new(DataType::flint(8, false).unwrap()).unwrap();
        assert!(c.decode_lut_int().is_some());
        assert!(c.decode_lut_i8().is_none());
    }

    #[test]
    fn decode_lut_int_is_twos_complement() {
        let c = Codec::new(DataType::int(4, true).unwrap()).unwrap();
        let lut = c.decode_lut();
        assert_eq!(lut[0b0111], 7.0);
        assert_eq!(lut[0b1000], -8.0); // hw range; never produced by encode
        assert_eq!(lut[0b1111], -1.0);
        assert_eq!(c.encode(-7.0), 0b1001);
    }

    #[test]
    fn decode_lut_flint_matches_table_ii_order() {
        let c = Codec::new(DataType::flint(4, false).unwrap()).unwrap();
        let lut = c.decode_lut();
        // Codes in Table III order: int region 0..7, then 64, 16, 24, 8,
        // 10, 12, 14 per the first-one encoding.
        assert_eq!(lut[0b1110], 12.0);
        assert_eq!(lut[0b1000], 64.0);
        assert_eq!(c.encode(11.0), 0b1110);
    }

    #[test]
    fn encode_negative_zero_magnitude_has_no_sign_bit() {
        for dt in [
            DataType::flint(4, true).unwrap(),
            DataType::pot(4, true).unwrap(),
        ] {
            let c = Codec::new(dt).unwrap();
            assert_eq!(c.encode(-0.2), 0, "{dt}");
        }
    }

    #[test]
    fn nearest_helper_edges() {
        let v = [1.0f32, 2.0, 4.0];
        assert_eq!(nearest(&v, 0.0), 1.0);
        assert_eq!(nearest(&v, 10.0), 4.0);
        assert_eq!(nearest(&v, 1.5), 1.0); // tie goes low
        assert_eq!(nearest(&v, 1.6), 2.0);
        assert_eq!(nearest(&v, 2.0), 2.0);
    }
}
