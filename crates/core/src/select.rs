//! ANT's inter-tensor data-type selection (paper Algorithm 2, Sec. IV-B/C).
//!
//! For each tensor, every candidate primitive type is calibrated with
//! min-MSE range clipping and the type achieving the lowest MSE wins. The
//! paper's evaluated combinations (Sec. VII-B) are provided as
//! [`PrimitiveCombo`] values: `Int`, `IP` (int+PoT), `FIP` (float+int+PoT),
//! `IP-F` (int+PoT+flint — the shipped ANT configuration) and `FIP-F`.

use crate::dtype::DataType;
use crate::quantizer::{ClipSearch, Granularity, TensorQuantizer};
use crate::QuantError;
use ant_tensor::Tensor;

/// The primitive-type combinations evaluated in the paper's Fig. 10–12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveCombo {
    /// `int` only — the conventional fixed-point baseline.
    Int,
    /// `int` + `PoT` (inter-tensor adaptivity only).
    IntPot,
    /// `float` + `int` + `PoT` (inter-tensor adaptivity only).
    FloatIntPot,
    /// `int` + `PoT` + `flint` — the final ANT configuration ("IP-F"),
    /// chosen because it only needs the int-based PE (Sec. VII-B).
    IntPotFlint,
    /// All four primitives ("FIP-F"); needs the float-based PE.
    FloatIntPotFlint,
}

impl PrimitiveCombo {
    /// The paper's abbreviation for this combination.
    pub fn label(&self) -> &'static str {
        match self {
            PrimitiveCombo::Int => "Int",
            PrimitiveCombo::IntPot => "IP",
            PrimitiveCombo::FloatIntPot => "FIP",
            PrimitiveCombo::IntPotFlint => "IP-F",
            PrimitiveCombo::FloatIntPotFlint => "FIP-F",
        }
    }

    /// All combinations in the order of the paper's figures.
    pub fn all() -> [PrimitiveCombo; 5] {
        [
            PrimitiveCombo::Int,
            PrimitiveCombo::IntPot,
            PrimitiveCombo::FloatIntPot,
            PrimitiveCombo::IntPotFlint,
            PrimitiveCombo::FloatIntPotFlint,
        ]
    }

    /// Materialises the candidate list at a bit width and signedness.
    ///
    /// Signed 4-bit `float` is value-identical to signed PoT (paper
    /// Sec. VII-E), so it is still included — selection simply never
    /// prefers it strictly.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] when `bits` is invalid
    /// for any member primitive.
    pub fn candidates(&self, bits: u32, signed: bool) -> Result<Vec<DataType>, QuantError> {
        // Construct only the members this combination actually uses: e.g.
        // the Int combo must stay valid at widths PoT does not support
        // (8-bit promotion in mixed precision).
        Ok(match self {
            PrimitiveCombo::Int => vec![DataType::int(bits, signed)?],
            PrimitiveCombo::IntPot => {
                vec![DataType::int(bits, signed)?, DataType::pot(bits, signed)?]
            }
            PrimitiveCombo::FloatIntPot => vec![
                DataType::float(bits, signed)?,
                DataType::int(bits, signed)?,
                DataType::pot(bits, signed)?,
            ],
            PrimitiveCombo::IntPotFlint => vec![
                DataType::int(bits, signed)?,
                DataType::pot(bits, signed)?,
                DataType::flint(bits, signed)?,
            ],
            PrimitiveCombo::FloatIntPotFlint => vec![
                DataType::float(bits, signed)?,
                DataType::int(bits, signed)?,
                DataType::pot(bits, signed)?,
                DataType::flint(bits, signed)?,
            ],
        })
    }
}

impl std::fmt::Display for PrimitiveCombo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of Algorithm 2 on one tensor.
#[derive(Debug, Clone)]
pub struct TypeSelection {
    /// The winning data type.
    pub dtype: DataType,
    /// Its calibrated quantizer.
    pub quantizer: TensorQuantizer,
    /// The winning (minimum) MSE.
    pub mse: f64,
    /// MSE of every candidate, in candidate order, for analysis (Fig. 14).
    pub per_candidate: Vec<(DataType, f64)>,
}

/// Runs Algorithm 2: calibrates every candidate on `tensor` and returns the
/// minimum-MSE choice.
///
/// # Errors
///
/// * [`QuantError::NoCandidates`] when `candidates` is empty,
/// * calibration errors from [`TensorQuantizer::fit`].
///
/// # Example
///
/// ```
/// use ant_core::select::{select_type, PrimitiveCombo};
/// use ant_core::{Granularity, ClipSearch, PrimitiveType};
/// use ant_tensor::dist::{sample_tensor, Distribution};
///
/// // Gaussian-like weights with a long tail: flint should win (Sec. IV-B).
/// let w = sample_tensor(
///     Distribution::OutlierGaussian { std: 0.5, outlier_frac: 0.01, outlier_scale: 4.0 },
///     &[4096],
///     7,
/// );
/// let cands = PrimitiveCombo::IntPotFlint.candidates(4, true)?;
/// let sel = select_type(&w, &cands, Granularity::PerTensor, ClipSearch::default())?;
/// assert_eq!(sel.dtype.primitive(), PrimitiveType::Flint);
/// # Ok::<(), ant_core::QuantError>(())
/// ```
pub fn select_type(
    tensor: &Tensor,
    candidates: &[DataType],
    granularity: Granularity,
    search: ClipSearch,
) -> Result<TypeSelection, QuantError> {
    if candidates.is_empty() {
        return Err(QuantError::NoCandidates);
    }
    let mut per_candidate = Vec::with_capacity(candidates.len());
    let mut best: Option<(DataType, TensorQuantizer, f64)> = None;
    for &dt in candidates {
        let (q, mse) = TensorQuantizer::fit(dt, tensor, granularity, search)?;
        per_candidate.push((dt, mse));
        let better = match &best {
            None => true,
            Some((_, _, best_mse)) => mse < *best_mse,
        };
        if better {
            best = Some((dt, q, mse));
        }
    }
    let (dtype, quantizer, mse) = best.expect("candidates non-empty");
    Ok(TypeSelection {
        dtype,
        quantizer,
        mse,
        per_candidate,
    })
}

/// Convenience: Algorithm 2 with signedness inferred from the data (the
/// paper uses unsigned types for post-ReLU activations, Sec. II-B).
///
/// # Errors
///
/// Same conditions as [`select_type`].
pub fn select_type_auto(
    tensor: &Tensor,
    combo: PrimitiveCombo,
    bits: u32,
    granularity: Granularity,
    search: ClipSearch,
) -> Result<TypeSelection, QuantError> {
    let signed = tensor.min().is_none_or(|m| m < 0.0);
    let candidates = combo.candidates(bits, signed)?;
    select_type(tensor, &candidates, granularity, search)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::PrimitiveType;
    use ant_tensor::dist::{sample_tensor, Distribution};

    fn run(dist: Distribution, combo: PrimitiveCombo, signed: bool) -> TypeSelection {
        let t = sample_tensor(dist, &[4096], 101);
        let cands = combo.candidates(4, signed).unwrap();
        select_type(&t, &cands, Granularity::PerTensor, ClipSearch::default()).unwrap()
    }

    #[test]
    fn empty_candidates_rejected() {
        let t = Tensor::ones(&[4]);
        assert!(matches!(
            select_type(&t, &[], Granularity::PerTensor, ClipSearch::default()),
            Err(QuantError::NoCandidates)
        ));
    }

    #[test]
    fn gaussian_weights_prefer_flint() {
        // Paper Sec. IV-B: flint is most suitable for Gaussian-like tensors.
        // Real weight tensors are Gaussian with a long tail (Sec. I: "the
        // Gaussian-like distribution also has a long tail"), modelled here
        // as a 1% × 4σ contamination.
        let sel = run(
            Distribution::OutlierGaussian {
                std: 1.0,
                outlier_frac: 0.01,
                outlier_scale: 4.0,
            },
            PrimitiveCombo::IntPotFlint,
            true,
        );
        assert_eq!(
            sel.dtype.primitive(),
            PrimitiveType::Flint,
            "{:?}",
            sel.per_candidate
        );
    }

    #[test]
    fn pure_gaussian_narrow_range_prefers_int() {
        // Without the long tail, a 4-bit int's uniform lattice is optimal —
        // the inter-tensor adaptivity ANT exploits.
        let sel = run(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            PrimitiveCombo::IntPotFlint,
            true,
        );
        assert_eq!(
            sel.dtype.primitive(),
            PrimitiveType::Int,
            "{:?}",
            sel.per_candidate
        );
    }

    #[test]
    fn uniform_tensors_prefer_int() {
        // Paper Fig. 1 left: int fits uniform-like narrow-range tensors.
        let sel = run(
            Distribution::Uniform { lo: 0.0, hi: 1.0 },
            PrimitiveCombo::IntPotFlint,
            false,
        );
        assert_eq!(
            sel.dtype.primitive(),
            PrimitiveType::Int,
            "{:?}",
            sel.per_candidate
        );
    }

    #[test]
    fn heavy_outlier_activations_prefer_pot() {
        // Paper Sec. VII-E: activation tensors with significant outliers
        // prefer PoT (or float).
        let sel = run(
            Distribution::OutlierGaussian {
                std: 1.0,
                outlier_frac: 0.002,
                outlier_scale: 60.0,
            },
            PrimitiveCombo::IntPotFlint,
            true,
        );
        assert_eq!(
            sel.dtype.primitive(),
            PrimitiveType::Pot,
            "{:?}",
            sel.per_candidate
        );
    }

    #[test]
    fn winner_has_minimum_mse_of_candidates() {
        let sel = run(
            Distribution::Laplace { mu: 0.0, b: 1.0 },
            PrimitiveCombo::FloatIntPotFlint,
            true,
        );
        for (dt, mse) in &sel.per_candidate {
            assert!(sel.mse <= *mse + 1e-12, "{dt} beat the winner");
        }
        assert_eq!(sel.per_candidate.len(), 4);
    }

    #[test]
    fn richer_combos_never_increase_mse() {
        // Adding candidates can only help (Fig. 10's monotone trend).
        let t = sample_tensor(Distribution::Laplace { mu: 0.0, b: 1.0 }, &[4096], 202);
        let mut prev = f64::INFINITY;
        for combo in [
            PrimitiveCombo::Int,
            PrimitiveCombo::IntPot,
            PrimitiveCombo::IntPotFlint,
            PrimitiveCombo::FloatIntPotFlint,
        ] {
            let cands = combo.candidates(4, true).unwrap();
            let sel =
                select_type(&t, &cands, Granularity::PerTensor, ClipSearch::default()).unwrap();
            assert!(sel.mse <= prev + 1e-12, "{combo}: {} > {prev}", sel.mse);
            prev = sel.mse;
        }
    }

    #[test]
    fn auto_signedness_detection() {
        let relu = sample_tensor(Distribution::HalfGaussian { std: 1.0 }, &[2048], 303);
        let sel = select_type_auto(
            &relu,
            PrimitiveCombo::IntPotFlint,
            4,
            Granularity::PerTensor,
            ClipSearch::default(),
        )
        .unwrap();
        assert!(!sel.dtype.is_signed());
        let signed = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[2048],
            304,
        );
        let sel2 = select_type_auto(
            &signed,
            PrimitiveCombo::IntPotFlint,
            4,
            Granularity::PerTensor,
            ClipSearch::default(),
        )
        .unwrap();
        assert!(sel2.dtype.is_signed());
    }

    #[test]
    fn combo_labels_and_candidate_counts() {
        assert_eq!(PrimitiveCombo::IntPotFlint.label(), "IP-F");
        assert_eq!(PrimitiveCombo::all().len(), 5);
        for combo in PrimitiveCombo::all() {
            let n = combo.candidates(4, true).unwrap().len();
            let expect = match combo {
                PrimitiveCombo::Int => 1,
                PrimitiveCombo::IntPot => 2,
                PrimitiveCombo::FloatIntPot | PrimitiveCombo::IntPotFlint => 3,
                PrimitiveCombo::FloatIntPotFlint => 4,
            };
            assert_eq!(n, expect, "{combo}");
        }
    }
}
