//! Liveness and backpressure contracts of the public `Engine` API.
//!
//! These pin the two serving-critical behaviors from the outside, with
//! no test hooks: a full submit queue sheds load with
//! [`RuntimeError::Overloaded`] (and recovers once drained), and
//! deadline-bounded waits expire instead of trusting worker liveness.
//!
//! Determinism on one core: the worker's gather loop holds the first
//! batch open for `max_wait` *without draining the queue* (the drain
//! happens when the batch closes), so with a large `max_batch` and a
//! generous `max_wait`, quick submits pile into the bounded queue and
//! the `max_queue + 1`-th is rejected — no sleeps, no racing.

use ant_nn::model::mlp;
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_runtime::{BatchPolicy, CompiledPlan, Engine, RuntimeError};
use ant_tensor::dist::{sample_tensor, Distribution};
use std::time::{Duration, Instant};

fn plan() -> CompiledPlan {
    let mut model = mlp(8, 4, 17);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[64, 8],
        3,
    );
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    CompiledPlan::from_quantized(&model).unwrap()
}

#[test]
fn bounded_queue_sheds_load_and_recovers() {
    // max_batch is unreachable, so the worker holds its gather window
    // open for the full max_wait while our submits land in the queue.
    let engine = Engine::new(
        plan(),
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(500),
            max_queue: 4,
        },
    );
    let row = [0.5_f32; 8];
    let ids: Vec<_> = (0..4).map(|_| engine.submit(&row).unwrap()).collect();
    let err = engine.submit(&row).unwrap_err();
    match err {
        RuntimeError::Overloaded { queued, max_queue } => {
            assert_eq!(queued, 4);
            assert_eq!(max_queue, 4);
        }
        other => panic!("expected Overloaded, got: {other}"),
    }
    // Everything admitted completes; nothing admitted was lost.
    for id in ids {
        assert_eq!(engine.wait(id).unwrap().len(), 4);
    }
    // The queue drained with the batch: admission is open again.
    assert_eq!(engine.queue_depth(), 0);
    let id = engine.submit(&row).unwrap();
    assert_eq!(engine.wait(id).unwrap().len(), 4);
    let stats = engine.stats();
    assert_eq!(stats.submitted, 5, "the shed request must not be counted");
    assert_eq!(stats.completed, 5);
}

#[test]
fn wait_timeout_expires_while_batch_is_held_open() {
    let engine = Engine::new(
        plan(),
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(500),
            max_queue: 64,
        },
    );
    let id = engine.submit(&[0.5; 8]).unwrap();
    // The batch is held open for ~500ms; a 20ms deadline expires first.
    let start = Instant::now();
    let got = engine.wait_timeout(id, Duration::from_millis(20)).unwrap();
    assert!(got.is_none(), "deadline cannot have been met");
    assert!(
        start.elapsed() < Duration::from_millis(450),
        "expiry returned only after the batch closed"
    );
    // The request was not lost: an unbounded wait still delivers it.
    assert_eq!(engine.wait(id).unwrap().len(), 4);
}

#[test]
fn cancel_after_timeout_drops_the_result() {
    let engine = Engine::new(
        plan(),
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(200),
            max_queue: 64,
        },
    );
    let id = engine.submit(&[0.5; 8]).unwrap();
    assert!(engine
        .wait_timeout(id, Duration::from_millis(10))
        .unwrap()
        .is_none());
    // Deadline handling à la antd: give up and cancel so the eventual
    // result is dropped instead of parking in the engine forever. The
    // request was still queued, so cancel removes it outright.
    assert!(engine.cancel(id));
    assert_eq!(engine.queue_depth(), 0);
    // The worker survives its now-empty batch window: a fresh request
    // still completes, and the cancelled id is gone, not parked.
    let fresh = engine.submit(&[0.25; 8]).unwrap();
    assert_eq!(engine.wait(fresh).unwrap().len(), 4);
    assert!(matches!(engine.wait(id), Err(RuntimeError::Engine(_))));
}
