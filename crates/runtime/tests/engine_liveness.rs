//! Liveness and backpressure contracts of the public `Engine` API.
//!
//! These pin the two serving-critical behaviors from the outside, with
//! no test hooks: a full submit queue sheds load with
//! [`RuntimeError::Overloaded`] (and recovers once drained), and
//! deadline-bounded waits expire instead of trusting worker liveness.
//!
//! Determinism on one core: the worker's gather loop holds the first
//! batch open for `max_wait` *without draining the queue* (the drain
//! happens when the batch closes), so with a large `max_batch` and a
//! generous `max_wait`, quick submits pile into the bounded queue and
//! the `max_queue + 1`-th is rejected — no sleeps, no racing.

use ant_nn::model::{decoder_block, mlp};
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_runtime::{BatchPolicy, CompiledPlan, Engine, RuntimeError};
use ant_tensor::dist::{sample_tensor, Distribution};
use std::time::{Duration, Instant};

fn plan() -> CompiledPlan {
    let mut model = mlp(8, 4, 17);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[64, 8],
        3,
    );
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    CompiledPlan::from_quantized(&model).unwrap()
}

const SEQ: usize = 8;
const DIM: usize = 16;

fn decoder_plan() -> CompiledPlan {
    let mut model = decoder_block(SEQ, DIM, 1, 19);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[24, SEQ * DIM],
        5,
    );
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    CompiledPlan::from_quantized_strict(&model)
        .unwrap()
        .with_threads(1)
}

fn token(seed: u64) -> Vec<f32> {
    sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[1, DIM],
        seed,
    )
    .as_slice()
    .to_vec()
}

#[test]
fn bounded_queue_sheds_load_and_recovers() {
    // max_batch is unreachable, so the worker holds its gather window
    // open for the full max_wait while our submits land in the queue.
    let engine = Engine::new(
        plan(),
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(500),
            max_queue: 4,
            ..BatchPolicy::default()
        },
    );
    let row = [0.5_f32; 8];
    let ids: Vec<_> = (0..4).map(|_| engine.submit(&row).unwrap()).collect();
    let err = engine.submit(&row).unwrap_err();
    match err {
        RuntimeError::Overloaded { queued, max_queue } => {
            assert_eq!(queued, 4);
            assert_eq!(max_queue, 4);
        }
        other => panic!("expected Overloaded, got: {other}"),
    }
    // Everything admitted completes; nothing admitted was lost.
    for id in ids {
        assert_eq!(engine.wait(id).unwrap().len(), 4);
    }
    // The queue drained with the batch: admission is open again.
    assert_eq!(engine.queue_depth(), 0);
    let id = engine.submit(&row).unwrap();
    assert_eq!(engine.wait(id).unwrap().len(), 4);
    let stats = engine.stats();
    assert_eq!(stats.submitted, 5, "the shed request must not be counted");
    assert_eq!(stats.completed, 5);
}

#[test]
fn wait_timeout_expires_while_batch_is_held_open() {
    let engine = Engine::new(
        plan(),
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(500),
            max_queue: 64,
            ..BatchPolicy::default()
        },
    );
    let id = engine.submit(&[0.5; 8]).unwrap();
    // The batch is held open for ~500ms; a 20ms deadline expires first.
    let start = Instant::now();
    let got = engine.wait_timeout(id, Duration::from_millis(20)).unwrap();
    assert!(got.is_none(), "deadline cannot have been met");
    assert!(
        start.elapsed() < Duration::from_millis(450),
        "expiry returned only after the batch closed"
    );
    // The request was not lost: an unbounded wait still delivers it.
    assert_eq!(engine.wait(id).unwrap().len(), 4);
}

#[test]
fn cancel_after_timeout_drops_the_result() {
    let engine = Engine::new(
        plan(),
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(200),
            max_queue: 64,
            ..BatchPolicy::default()
        },
    );
    let id = engine.submit(&[0.5; 8]).unwrap();
    assert!(engine
        .wait_timeout(id, Duration::from_millis(10))
        .unwrap()
        .is_none());
    // Deadline handling à la antd: give up and cancel so the eventual
    // result is dropped instead of parking in the engine forever. The
    // request was still queued, so cancel removes it outright.
    assert!(engine.cancel(id));
    assert_eq!(engine.queue_depth(), 0);
    // The worker survives its now-empty batch window: a fresh request
    // still completes, and the cancelled id is gone, not parked.
    let fresh = engine.submit(&[0.25; 8]).unwrap();
    assert_eq!(engine.wait(fresh).unwrap().len(), 4);
    assert!(matches!(engine.wait(id), Err(RuntimeError::Engine(_))));
}

#[test]
fn decode_steps_from_many_sessions_coalesce_into_one_batch() {
    // Gather-window determinism trick: max_batch is unreachable, so the
    // first decode step holds the window open for the full max_wait
    // while the other sessions' steps pile in behind it — the batch
    // that finally closes must contain every one of them.
    let engine = Engine::new(
        decoder_plan(),
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(500),
            max_queue: 64,
            ..BatchPolicy::default()
        },
    );
    let sids: Vec<_> = (0..6).map(|_| engine.open_session(SEQ).unwrap()).collect();
    assert_eq!(engine.session_count(), 6);
    assert!(engine.kv_bytes() > 0);
    let ids: Vec<_> = sids
        .iter()
        .enumerate()
        .map(|(i, sid)| engine.submit_decode(*sid, &token(i as u64)).unwrap())
        .collect();
    for id in &ids {
        assert_eq!(engine.wait(*id).unwrap().len(), DIM);
    }
    let stats = engine.stats();
    assert_eq!(stats.decode_batches, 1, "{stats:?}");
    assert_eq!(stats.largest_decode_batch, 6, "{stats:?}");
    assert_eq!(stats.decode_tokens, 6);
    for sid in sids {
        assert!(engine.close_session(sid));
    }
    assert_eq!(engine.kv_bytes(), 0);
}

#[test]
fn prefill_does_not_starve_queued_decode_steps_past_max_wait() {
    // A prefill at the queue head closes its gather window immediately
    // (it always runs alone), so decode steps queued behind a prefill
    // are dispatched right after it rather than waiting out a second
    // max_wait-long gather window.
    let max_wait = Duration::from_millis(400);
    let engine = Engine::new(
        decoder_plan(),
        BatchPolicy {
            max_batch: 64,
            max_wait,
            max_queue: 64,
            ..BatchPolicy::default()
        },
    );
    let a = engine.open_session(SEQ).unwrap();
    let b = engine.open_session(SEQ).unwrap();
    // Warm the plan (scratch growth, first-touch) outside the timed
    // region, and give both sessions a token of history.
    let w = engine.submit_prefill(a, &token(1)).unwrap();
    engine.wait(w).unwrap();
    let start = Instant::now();
    // One long-ish prompt, then a decode step right behind it.
    let prompt: Vec<f32> = (0..SEQ - 1).flat_map(|t| token(10 + t as u64)).collect();
    let p = engine.submit_prefill(b, &prompt).unwrap();
    let d = engine.submit_decode(a, &token(2)).unwrap();
    assert_eq!(engine.wait(p).unwrap().len(), DIM);
    assert_eq!(engine.wait(d).unwrap().len(), DIM);
    let elapsed = start.elapsed();
    // The decode step rides out at most ONE gather window (its own),
    // never the prefill's: well under 2×max_wait total.
    assert!(
        elapsed < 2 * max_wait,
        "decode step starved behind prefill: {elapsed:?}"
    );
    let stats = engine.stats();
    assert_eq!(stats.prefills, 2);
    assert_eq!(stats.decode_tokens, 1);
}

#[test]
fn session_close_frees_kv_even_with_requests_in_flight() {
    // Public-API variant of the eager-release regression: a caller that
    // times out, cancels, and closes its session must leave no KV bytes
    // pinned once the engine quiesces — with no further caller action.
    let engine = Engine::new(
        decoder_plan(),
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(300),
            max_queue: 64,
            ..BatchPolicy::default()
        },
    );
    let sid = engine.open_session(SEQ).unwrap();
    assert!(engine.kv_bytes() > 0);
    let id = engine.submit_decode(sid, &token(3)).unwrap();
    // Expire a deadline shorter than the gather window, then abandon.
    assert!(engine
        .wait_timeout(id, Duration::from_millis(10))
        .unwrap()
        .is_none());
    assert!(engine.cancel(id));
    assert!(engine.close_session(sid));
    assert!(!engine.close_session(sid), "close is idempotent");
    // Whether the step was still queued (dropped by cancel) or already
    // claimed by the worker (dropped at the batch boundary), the cache
    // is released without the caller reaping anything.
    let mut freed = false;
    for _ in 0..5000 {
        if engine.kv_bytes() == 0 && engine.session_count() == 0 {
            freed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(freed, "closed session left KV bytes pinned");
    // The engine stays live for other traffic.
    let sid2 = engine.open_session(SEQ).unwrap();
    let id2 = engine.submit_decode(sid2, &token(4)).unwrap();
    assert_eq!(engine.wait(id2).unwrap().len(), DIM);
}
