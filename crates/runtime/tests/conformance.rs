//! Cross-layer differential conformance suite for the packed runtime.
//!
//! Three promises are checked for *every* layer kind the planner accepts
//! (dense, conv, attention, relu, gelu, pool, norm):
//!
//! 1. **Differential**: packed-domain execution matches the QAT
//!    fake-quantized forward within 1e-4 relative tolerance, across the
//!    int / PoT / flint primitives at 4- and 8-bit widths (where the
//!    width is representable — PoT codes saturate at 6 bits), and via the
//!    reference fallback for the `float` primitive.
//! 2. **Code-for-code**: the conv and attention GEMMs compute exactly
//!    what `ant-hw`'s bit-level decoder + MAC pipeline computes over the
//!    same wire codes.
//! 3. **Serving**: the batch scheduler returns bit-identical results for
//!    mixed conv/dense models no matter how concurrent submissions are
//!    grouped, and misuse (consumed/unknown ids) errors instead of
//!    hanging — the regression guard for the PR 2 `wait` fix.

use ant_core::{
    ClipSearch, Codec, DataType, Granularity, PrimitiveType, Quantizer, TensorQuantizer,
};
use ant_hw::decode::{decode, WireType};
use ant_hw::systolic::{reference_gemm, DecodedMatrix};
use ant_nn::model::{mlp, small_cnn, tiny_transformer, transformer_block, NetLayer, Sequential};
use ant_nn::qat::{capture_layer_inputs, dequantize_layer, quantize_model, QuantSpec};
use ant_runtime::gemm::{im2row_i32, int_gemm};
use ant_runtime::{BatchPolicy, CompiledPlan, Engine, PlanLayer, Planner, RuntimeError};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;
use proptest::prelude::*;
use std::time::Duration;

fn gaussian(dims: &[usize], seed: u64) -> Tensor {
    sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        dims,
        seed,
    )
}

/// The model zoo: between them these cover every [`NetLayer`] variant
/// (Dense, Relu, Conv, Pool, Norm, Attn, Gelu).
fn model_zoo(seed: u64) -> Vec<(&'static str, Sequential, usize)> {
    vec![
        ("mlp", mlp(6, 3, seed), 6),
        ("cnn", small_cnn(3, seed), 144),
        ("transformer", tiny_transformer(4, 8, 3, seed), 32),
        ("attn-gelu", transformer_block(4, 8, 3, seed), 32),
    ]
}

fn make_dtype(prim: PrimitiveType, bits: u32, signed: bool) -> Option<DataType> {
    match prim {
        PrimitiveType::Int => DataType::int(bits, signed).ok(),
        PrimitiveType::Pot => DataType::pot(bits, signed).ok(),
        PrimitiveType::Flint => DataType::flint(bits, signed).ok(),
        PrimitiveType::Float => DataType::float(bits, signed).ok(),
    }
}

/// Quantizes every quantizable layer at one forced primitive/width —
/// Algorithm 2 with a single candidate — so the differential property can
/// sweep the primitive × width grid deterministically.
fn force_quantize(model: &mut Sequential, calib: &Tensor, prim: PrimitiveType, bits: u32) {
    let search = ClipSearch::default();
    for layer in model.layers_mut() {
        dequantize_layer(layer);
    }
    let inputs = capture_layer_inputs(model, calib).expect("calibration forward");
    for (i, layer) in model.layers_mut().iter_mut().enumerate() {
        let Some(input) = &inputs[i] else { continue };
        let act_signed = input.as_slice().iter().any(|&v| v < 0.0);
        let w_dt = make_dtype(prim, bits, true).expect("gated by caller");
        let a_dt = make_dtype(prim, bits, act_signed).expect("gated by caller");
        let fit_w = |w: &Tensor| {
            TensorQuantizer::fit(w_dt, w, Granularity::PerChannel, search)
                .expect("weight fit")
                .0
        };
        let act = Quantizer::fit(a_dt, input.as_slice(), search)
            .expect("activation fit")
            .0;
        match layer {
            NetLayer::Dense(l) => {
                l.quant.weight = Some(fit_w(&l.weight().clone()));
                l.quant.activation = Some(act);
            }
            NetLayer::Conv(l) => {
                l.quant.weight = Some(fit_w(&l.weight().clone()));
                l.quant.activation = Some(act);
            }
            NetLayer::Attn(l) => {
                let ws: Vec<Tensor> = l
                    .projection_weights()
                    .iter()
                    .map(|w| (*w).clone())
                    .collect();
                for (slot, w) in ws.iter().enumerate() {
                    l.quant.weights[slot] = Some(fit_w(w));
                }
                l.quant.activation = Some(act);
            }
            _ => {}
        }
    }
}

fn assert_plan_matches_reference(
    label: &str,
    plan: &mut CompiledPlan,
    model: &mut Sequential,
    x: &Tensor,
) -> Result<(), TestCaseError> {
    let reference = model.forward(x).expect("reference forward");
    let packed = plan.forward(x).expect("packed forward");
    prop_assert_eq!(packed.dims(), reference.dims(), "{}", label);
    for (i, (a, b)) in packed
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .enumerate()
    {
        prop_assert!(
            (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
            "{}[{}]: packed {} vs reference {}",
            label,
            i,
            a,
            b
        );
    }
    Ok(())
}

fn wire_type(dtype: DataType) -> WireType {
    let signed = dtype.is_signed();
    match dtype.primitive() {
        PrimitiveType::Int => WireType::Int { signed },
        PrimitiveType::Pot => WireType::Pot { signed },
        PrimitiveType::Flint => WireType::Flint { signed },
        PrimitiveType::Float => panic!("float never reaches the packed path"),
    }
}

/// Decodes a packed tensor's codes through the *hardware* bit-level
/// decoder (not the codec LUT) into integers, asserting the two agree on
/// every code along the way.
fn hw_decode_ints(t: &ant_core::pack::PackedTensor) -> Vec<i32> {
    let dt = t.dtype();
    let codec = Codec::new(dt).expect("valid dtype");
    let lut = codec.decode_lut();
    let wt = wire_type(dt);
    t.codes()
        .iter()
        .map(|&c| {
            let hw = decode(c, dt.bits(), wt).expect("valid code");
            assert_eq!(
                lut[c as usize] as i64,
                hw.value(),
                "{dt}: code {c:b} decodes differently in hw"
            );
            hw.value() as i32
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Differential conformance: packed execution ≡ fake-quant forward
    /// (≤1e-4 rel) for every layer kind, across int/PoT/flint × {4, 8}
    /// bits, with coverage 1.0 under strict compilation.
    #[test]
    fn packed_matches_fake_quant_across_primitives_and_widths(
        seed in 0u64..500, batch in 1usize..4,
    ) {
        for prim in [PrimitiveType::Int, PrimitiveType::Pot, PrimitiveType::Flint] {
            for bits in [4u32, 8] {
                // Skip widths the primitive cannot represent (PoT stops
                // at 6 bits); every primitive is still exercised at 4.
                if make_dtype(prim, bits, true).is_none() {
                    continue;
                }
                for (name, mut model, feat) in model_zoo(seed) {
                    let calib = gaussian(&[16, feat], seed.wrapping_add(29));
                    force_quantize(&mut model, &calib, prim, bits);
                    let mut plan = CompiledPlan::from_quantized_strict(&model)
                        .expect("strict compile");
                    prop_assert_eq!(plan.coverage(), 1.0, "{} {:?}{}", name, prim, bits);
                    prop_assert_eq!(plan.packed_layer_count() > 0, true);
                    let x = gaussian(&[batch, feat], seed.wrapping_add(41));
                    let label = format!("{name} {prim:?}{bits}");
                    assert_plan_matches_reference(&label, &mut plan, &mut model, &x)?;
                }
            }
        }
    }

    /// The `float` primitive has no integer decoder: lenient compilation
    /// falls back to the reference path (still conformant, coverage < 1),
    /// strict compilation refuses with `UnsupportedLayer`.
    #[test]
    fn float_primitive_falls_back_conformantly(seed in 0u64..500) {
        for bits in [4u32, 8] {
            for (name, mut model, feat) in model_zoo(seed) {
                let calib = gaussian(&[16, feat], seed.wrapping_add(3));
                force_quantize(&mut model, &calib, PrimitiveType::Float, bits);
                let mut plan = CompiledPlan::from_quantized(&model).expect("lenient compile");
                prop_assert!(plan.coverage() < 1.0, "{}: float must not be packed", name);
                prop_assert_eq!(plan.packed_layer_count(), 0);
                let x = gaussian(&[2, feat], seed.wrapping_add(5));
                let label = format!("{name} float{bits}");
                assert_plan_matches_reference(&label, &mut plan, &mut model, &x)?;
                prop_assert!(matches!(
                    CompiledPlan::from_quantized_strict(&model),
                    Err(RuntimeError::UnsupportedLayer { .. })
                ));
            }
        }
    }

    /// Code-for-code: every conv layer's GEMM over the *actual packed
    /// kernel codes* equals the cycle-level hardware reference (`ant_hw`
    /// decode + mac) over the same codes, with the activation side (the
    /// layer's real calibrated input stream) lowered by the same integer
    /// im2row the runtime uses.
    #[test]
    fn conv_gemm_matches_hw_pipeline(seed in 0u64..500) {
        let mut model = small_cnn(3, seed);
        let calib = gaussian(&[16, 144], seed.wrapping_add(1));
        quantize_model(&mut model, &calib, QuantSpec::default()).expect("quantize");
        let plan = CompiledPlan::from_quantized_strict(&model).expect("compile");
        // Each quantizable layer's input under fake-quant execution — the
        // same activation distribution the packed layer sees.
        let x = gaussian(&[1, 144], seed.wrapping_add(2));
        let layer_inputs = capture_layer_inputs(&mut model, &x).expect("capture");
        let mut checked = 0;
        for (i, layer) in plan.layers().iter().enumerate() {
            let PlanLayer::PackedConv(p) = layer else { continue };
            let input = layer_inputs[i].as_ref().expect("conv input captured");
            // Weight integers through the hardware decoder.
            let w_int = hw_decode_ints(p.weights());
            let dims = p.weights().dims().to_vec();
            let (co, k) = (dims[0], dims[1] * dims[2] * dims[3]);
            // Activation integers exactly as the runtime quantizes them.
            let aq = p.activation();
            let (s_a, codec) = (aq.scale(), aq.codec());
            let a_int: Vec<i32> = input.as_slice().iter()
                .map(|&v| codec.snap(v / s_a) as i32)
                .collect();
            let (ci, h, w) = p.in_shape();
            let (_, oh, ow) = p.out_shape();
            let pixels = oh * ow;
            let mut rows = vec![0i32; pixels * k];
            im2row_i32(&a_int, ci, h, w, p.geometry(), &mut rows);
            // Runtime GEMM.
            let mut acc = vec![0i64; pixels * co];
            int_gemm(&rows, &w_int, pixels, k, co, &mut acc);
            // Hardware reference over Decoded operands: rows · Wᵀ, the
            // weight side decoded from the *wire codes* by the boundary
            // decoder, transposed into [k, co].
            let dt = p.weights().dtype();
            let w_dec =
                DecodedMatrix::from_codes(co, k, &p.weights().codes(), dt.bits(), wire_type(dt))
                    .expect("hw decode");
            let mut wt = vec![ant_hw::decode::Decoded { base: 0, exp: 0 }; k * co];
            for r in 0..co {
                for c in 0..k {
                    wt[c * co + r] = w_dec.get(r, c);
                }
            }
            let w_mat = DecodedMatrix::new(k, co, wt);
            let a_mat = DecodedMatrix::new(
                pixels,
                k,
                rows.iter()
                    .map(|&v| ant_hw::decode::Decoded { base: v, exp: 0 })
                    .collect(),
            );
            prop_assert_eq!(&acc, &reference_gemm(&a_mat, &w_mat), "conv {}", p.name());
            checked += 1;
        }
        prop_assert_eq!(checked, 2, "both conv layers must be checked");
    }
}

#[test]
fn attention_gemms_match_hw_pipeline() {
    // All four attention projections: packed codes → hw decode → mac
    // reference equals the runtime's integer GEMM operands.
    let mut model = transformer_block(4, 8, 3, 77);
    let calib = gaussian(&[16, 32], 78);
    quantize_model(&mut model, &calib, QuantSpec::default()).expect("quantize");
    let plan = CompiledPlan::from_quantized_strict(&model).expect("compile");
    let x = gaussian(&[1, 32], 79);
    let Some(PlanLayer::PackedAttn(p)) = plan
        .layers()
        .iter()
        .find(|l| matches!(l, PlanLayer::PackedAttn(_)))
    else {
        panic!("no attention layer in plan");
    };
    let (seq, dim) = (p.seq(), p.dim());
    let aq = p.activation();
    let (s_a, codec) = (aq.scale(), aq.codec());
    let a_int: Vec<i32> = x
        .as_slice()
        .iter()
        .map(|&v| codec.snap(v / s_a) as i32)
        .collect();
    for (slot, packed) in p.projections().into_iter().enumerate() {
        let w_int = hw_decode_ints(packed);
        assert_eq!(packed.dims(), &[dim, dim], "projection {slot}");
        // Runtime GEMM: [seq, dim] · Wᵀ.
        let mut acc = vec![0i64; seq * dim];
        int_gemm(&a_int, &w_int, seq, dim, dim, &mut acc);
        // Hardware reference: the weight side decoded from the wire codes
        // by the boundary decoder, transposed into [dim, dim].
        let dt = packed.dtype();
        let w_dec = DecodedMatrix::from_codes(dim, dim, &packed.codes(), dt.bits(), wire_type(dt))
            .expect("hw decode");
        let mut wt = vec![ant_hw::decode::Decoded { base: 0, exp: 0 }; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                wt[c * dim + r] = w_dec.get(r, c);
            }
        }
        let w_mat = DecodedMatrix::new(dim, dim, wt);
        let a_mat = DecodedMatrix::new(
            seq,
            dim,
            a_int
                .iter()
                .map(|&v| ant_hw::decode::Decoded { base: v, exp: 0 })
                .collect(),
        );
        assert_eq!(
            acc,
            reference_gemm(&a_mat, &w_mat),
            "attention projection {slot}"
        );
    }
}

#[test]
fn transformer_serves_batched_through_engine() {
    // The acceptance model: a 1-block transformer (attn → gelu → dense)
    // compiles with zero fallback and serves batched through the engine,
    // bit-identical to single-row execution (packed layers are exact and
    // the f32 stages are per-sample, so grouping cannot matter).
    let mut model = transformer_block(4, 8, 3, 91);
    let calib = gaussian(&[24, 32], 92);
    quantize_model(&mut model, &calib, QuantSpec::default()).expect("quantize");
    let mut planner = Planner::new().strict();
    let plan = planner
        .compile(&mut model, &calib, QuantSpec::default())
        .expect("strict compile");
    assert_eq!(
        plan.coverage(),
        1.0,
        "transformer plan must be fully packed"
    );
    assert_eq!(plan.packed_layer_count(), 2); // attn + head
    let inputs = gaussian(&[12, 32], 93);
    let mut reference_plan = plan.clone();
    let engine = Engine::new(
        plan,
        BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            ..BatchPolicy::default()
        },
    );
    let ids: Vec<_> = (0..12)
        .map(|i| {
            engine
                .submit(&inputs.as_slice()[i * 32..(i + 1) * 32])
                .expect("submit")
        })
        .collect();
    for (i, id) in ids.into_iter().enumerate() {
        let got = engine.wait(id).expect("result");
        let row =
            Tensor::from_vec(inputs.as_slice()[i * 32..(i + 1) * 32].to_vec(), &[1, 32]).unwrap();
        let expect = reference_plan.forward(&row).unwrap();
        assert_eq!(got, expect.as_slice(), "request {i}");
    }
}

#[test]
fn engine_stress_threaded_submits_are_grouping_independent() {
    // A mixed conv/dense model served from many threads at once: every
    // response must be bit-identical to the single-row reference
    // execution, no matter how the scheduler grouped the batches.
    let mut model = small_cnn(4, 51);
    let calib = gaussian(&[24, 144], 52);
    quantize_model(&mut model, &calib, QuantSpec::default()).expect("quantize");
    let plan = CompiledPlan::from_quantized_strict(&model).expect("compile");
    let inputs = gaussian(&[16, 144], 53);
    // Reference outputs, one row at a time.
    let mut reference_plan = plan.clone();
    let expected: Vec<Vec<f32>> = (0..16)
        .map(|i| {
            let row = Tensor::from_vec(
                inputs.as_slice()[i * 144..(i + 1) * 144].to_vec(),
                &[1, 144],
            )
            .unwrap();
            reference_plan.forward(&row).unwrap().as_slice().to_vec()
        })
        .collect();
    let engine = Engine::new(
        plan,
        BatchPolicy {
            max_batch: 5,
            max_wait: Duration::from_millis(2),
            ..BatchPolicy::default()
        },
    );
    const THREADS: usize = 4;
    const PER_THREAD: usize = 24;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = &engine;
            let inputs = &inputs;
            let expected = &expected;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let row = (t * 7 + i * 3) % 16;
                    let id = engine
                        .submit(&inputs.as_slice()[row * 144..(row + 1) * 144])
                        .expect("submit");
                    let got = engine.wait(id).expect("result");
                    assert_eq!(got, expected[row], "thread {t} request {i} row {row}");
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.submitted, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.completed, (THREADS * PER_THREAD) as u64);
    assert!(stats.largest_batch <= 5);
    // Regression guard for the PR 2 hang fix: waiting on a consumed or
    // never-issued id errors instead of blocking forever.
    let id = engine.submit(&inputs.as_slice()[..144]).expect("submit");
    assert!(engine.wait(id).is_ok());
    assert!(matches!(engine.wait(id), Err(RuntimeError::Engine(_))));
    assert!(engine.poll(id).is_none());
    assert!(matches!(
        engine.wait(ant_runtime::RequestId::from_raw(u64::MAX)),
        Err(RuntimeError::Engine(_))
    ));
}

#[test]
fn fingerprint_invalidation_covers_conv_attention_and_bias() {
    use ant_nn::layer::Layer as _;
    // CNN: mutating a conv kernel or a conv bias must miss the selection
    // cache; an unchanged model must hit it.
    let mut model = small_cnn(3, 61);
    let calib = gaussian(&[16, 144], 62);
    let mut planner = Planner::new();
    let spec = QuantSpec::default();
    planner.compile(&mut model, &calib, spec).expect("cold");
    planner.compile(&mut model, &calib, spec).expect("warm");
    assert_eq!(planner.cache().stats(), (1, 1), "unchanged CNN must hit");
    // Perturb one conv kernel element (rank-4 param).
    if let NetLayer::Conv(c) = &mut model.layers_mut()[0] {
        c.for_each_param(&mut |p| {
            if p.value.rank() == 4 {
                p.value.as_mut_slice()[0] += 0.25;
            }
        });
    } else {
        panic!("layer 0 is not a conv");
    }
    planner
        .compile(&mut model, &calib, spec)
        .expect("kernel change");
    assert_eq!(
        planner.cache().stats(),
        (1, 2),
        "conv kernel change must miss"
    );
    // Perturb the same conv's bias (rank-1 param).
    if let NetLayer::Conv(c) = &mut model.layers_mut()[0] {
        c.for_each_param(&mut |p| {
            if p.value.rank() == 1 {
                p.value.as_mut_slice()[0] += 1.0;
            }
        });
    }
    planner
        .compile(&mut model, &calib, spec)
        .expect("bias change");
    assert_eq!(
        planner.cache().stats(),
        (1, 3),
        "conv bias change must miss"
    );
    // Unchanged again: hit.
    planner
        .compile(&mut model, &calib, spec)
        .expect("warm again");
    assert_eq!(planner.cache().stats(), (2, 3));

    // Transformer: mutating one attention projection weight must miss.
    let mut model = transformer_block(4, 8, 3, 63);
    let calib = gaussian(&[16, 32], 64);
    let mut planner = Planner::new().strict();
    assert!(planner.is_strict());
    planner.compile(&mut model, &calib, spec).expect("cold");
    planner.compile(&mut model, &calib, spec).expect("warm");
    assert_eq!(planner.cache().stats(), (1, 1));
    if let NetLayer::Attn(a) = &mut model.layers_mut()[0] {
        let mut first = true;
        a.for_each_param(&mut |p| {
            if first {
                p.value.as_mut_slice()[3] -= 0.5; // wq only
                first = false;
            }
        });
    } else {
        panic!("layer 0 is not attention");
    }
    planner
        .compile(&mut model, &calib, spec)
        .expect("wq change");
    assert_eq!(
        planner.cache().stats(),
        (1, 2),
        "attention projection change must miss"
    );
}

#[test]
fn polymorphic_prefix_still_pins_plan_input_width() {
    // tiny_transformer opens with layer norm, which is
    // shape-polymorphic; the attention layer behind it must still pin
    // the plan's input width (width propagates backwards through the
    // polymorphic prefix), or Engine-based serving rejects the model.
    let mut model = tiny_transformer(4, 8, 3, 17);
    let calib = gaussian(&[16, 32], 18);
    quantize_model(&mut model, &calib, QuantSpec::default()).expect("quantize");
    let plan = CompiledPlan::from_quantized_strict(&model).expect("compile");
    assert_eq!(plan.in_features(), Some(32));
}
