//! Worker-pool telemetry invariants (obs builds only).
//!
//! The pool records counts-only telemetry into pool-local per-slot
//! counters (slot 0 = the participating `run` caller, slots 1.. = the
//! parked workers). Two contracts are pinned here:
//!
//! * **Exactness**: the per-slot executed-task counts always sum to the
//!   pool's total executed-task counter — under any job shape, any pool
//!   width, and under concurrent 8-thread submitter stress.
//! * **Isolation of failure**: a panicking task body re-raises on its
//!   own submitter while other concurrent submitters keep making
//!   progress on the same pool, and the counters keep counting.
#![cfg(feature = "obs")]

use ant_runtime::WorkerPool;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-slot counters sum exactly to the pool total for sampled job
    /// shapes (the same width range the microkernel partition suite
    /// drives: 1..9 threads).
    #[test]
    fn slot_counts_sum_exactly_to_total(
        threads in 1usize..9,
        jobs in proptest::collection::vec(1usize..40, 1..16),
    ) {
        let pool = WorkerPool::new(threads);
        let hits = AtomicUsize::new(0);
        for &tasks in &jobs {
            pool.run(tasks, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        let expected: usize = jobs.iter().sum();
        prop_assert_eq!(hits.load(Ordering::Relaxed), expected);
        prop_assert_eq!(pool.executed_tasks(), expected as u64);
        let slots = pool.slot_task_counts();
        prop_assert_eq!(slots.len(), threads.max(1));
        prop_assert_eq!(slots.iter().sum::<u64>(), expected as u64);
    }
}

/// 8 submitter threads hammer one pool concurrently; afterwards the
/// per-slot counters still sum exactly to the total (no lost or
/// double-counted task), and every task body ran exactly once.
#[test]
fn slot_counts_stay_exact_under_8_thread_stress() {
    let pool = Arc::new(WorkerPool::new(8));
    let executed = Arc::new(AtomicUsize::new(0));
    let mut expected = 0usize;
    for s in 0..8usize {
        for i in 0..40usize {
            expected += 1 + (s * 7 + i * 3) % 23;
        }
    }
    let submitters: Vec<_> = (0..8usize)
        .map(|s| {
            let pool = Arc::clone(&pool);
            let executed = Arc::clone(&executed);
            std::thread::spawn(move || {
                for i in 0..40usize {
                    let tasks = 1 + (s * 7 + i * 3) % 23;
                    pool.run(tasks, &|_| {
                        executed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
        })
        .collect();
    for t in submitters {
        t.join().unwrap();
    }
    assert_eq!(executed.load(Ordering::Relaxed), expected);
    assert_eq!(pool.executed_tasks(), expected as u64);
    let slots = pool.slot_task_counts();
    assert_eq!(slots.len(), 8);
    assert_eq!(
        slots.iter().sum::<u64>(),
        expected as u64,
        "per-slot counts {slots:?} must sum to the pool total"
    );
    // NOTE: no assertion that worker slots (1..) are nonzero here — a
    // fast caller may legally claim every task before a parked worker
    // wakes. Worker participation is forced deterministically below.
}

/// Worker slots really do record: a two-task job whose bodies
/// rendezvous on a barrier cannot complete on the caller alone, so a
/// parked worker must claim the second task and its slot counter must
/// show it.
#[test]
fn worker_slots_record_when_participation_is_forced() {
    use std::sync::Barrier;
    let pool = WorkerPool::new(4);
    let barrier = Barrier::new(2);
    for _ in 0..8 {
        pool.run(2, &|_| {
            barrier.wait();
        });
    }
    let slots = pool.slot_task_counts();
    assert_eq!(slots.iter().sum::<u64>(), 16);
    assert!(
        slots[1..].iter().any(|&c| c > 0),
        "rendezvous jobs completed yet no worker slot counted: {slots:?}"
    );
}

/// A panicking job re-raises on its submitter; a concurrent well-behaved
/// submitter on the same pool keeps progressing to completion, and the
/// telemetry total keeps matching the slot sum afterwards.
#[test]
fn panicking_job_propagates_while_other_submitters_progress() {
    let pool = Arc::new(WorkerPool::new(4));
    let good_done = Arc::new(AtomicUsize::new(0));

    let good = {
        let pool = Arc::clone(&pool);
        let good_done = Arc::clone(&good_done);
        std::thread::spawn(move || {
            for _ in 0..100 {
                pool.run(8, &|_| {
                    good_done.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
    };
    let bad = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            for _ in 0..25 {
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    pool.run(8, &|t| {
                        if t == 3 {
                            panic!("poisoned task");
                        }
                    });
                }));
                assert!(caught.is_err(), "the panic must re-raise on the submitter");
            }
        })
    };
    good.join().unwrap();
    bad.join().unwrap();

    // The well-behaved submitter finished every task despite the
    // interleaved poisoned jobs.
    assert_eq!(good_done.load(Ordering::Relaxed), 100 * 8);
    // Panicked tasks still count as executed (they were claimed and
    // run), so the exactness invariant holds across failures too.
    assert_eq!(pool.executed_tasks(), (100 + 25) * 8);
    assert_eq!(
        pool.slot_task_counts().iter().sum::<u64>(),
        pool.executed_tasks()
    );
    // And the pool is still serviceable.
    let after = AtomicUsize::new(0);
    pool.run(16, &|_| {
        after.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(after.load(Ordering::Relaxed), 16);
}

/// Park counts only ever belong to worker slots: the caller (slot 0)
/// never parks on the work condvar.
#[test]
fn caller_slot_never_parks() {
    let pool = WorkerPool::new(4);
    for _ in 0..50 {
        pool.run(16, &|_| {});
    }
    let parks = pool.slot_park_counts();
    assert_eq!(parks.len(), 4);
    assert_eq!(
        parks[0], 0,
        "slot 0 is the caller; it never parks: {parks:?}"
    );
}
