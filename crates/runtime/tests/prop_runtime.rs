//! Property suite for the packed runtime: for random small models the
//! packed-domain forward must match the fake-quantized QAT forward, and
//! the packed representation must match `ant-hw`'s decoder semantics
//! code for code — the two promises that make the runtime a faithful
//! stand-in for the TypeFusion accelerator.

use ant_core::{Codec, PrimitiveType};
use ant_hw::decode::{decode, WireType};
use ant_hw::systolic::{reference_gemm, DecodedMatrix};
use ant_nn::layer::{Dense, Relu};
use ant_nn::model::{NetLayer, Sequential};
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_runtime::gemm::int_gemm;
use ant_runtime::{CompiledPlan, PlanLayer};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;
use proptest::prelude::*;

fn gaussian(dims: &[usize], seed: u64) -> Tensor {
    sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        dims,
        seed,
    )
}

/// A random small MLP: `depth` hidden Dense+ReLU blocks plus a head.
fn random_mlp(input: usize, width: usize, depth: usize, classes: usize, seed: u64) -> Sequential {
    let mut m = Sequential::new();
    let mut inp = input;
    for i in 0..depth {
        m = m
            .push(NetLayer::Dense(Dense::init(
                format!("fc{i}"),
                width,
                inp,
                seed.wrapping_add(i as u64),
            )))
            .push(NetLayer::Relu(Relu::new(format!("relu{i}"))));
        inp = width;
    }
    m.push(NetLayer::Dense(Dense::init(
        "head",
        classes,
        inp,
        seed.wrapping_add(100),
    )))
}

fn wire_type(dtype: ant_core::DataType) -> WireType {
    let signed = dtype.is_signed();
    match dtype.primitive() {
        PrimitiveType::Int => WireType::Int { signed },
        PrimitiveType::Pot => WireType::Pot { signed },
        PrimitiveType::Flint => WireType::Flint { signed },
        PrimitiveType::Float => panic!("float never reaches the packed path"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Packed-domain forward matches the fake-quantized reference forward
    /// within 1e-4 relative tolerance on random small models.
    #[test]
    fn runtime_matches_qat_forward(
        input in 2usize..8, width in 3usize..10, depth in 1usize..3,
        classes in 2usize..5, batch in 1usize..5, seed in 0u64..500,
    ) {
        let mut model = random_mlp(input, width, depth, classes, seed);
        let calib = gaussian(&[48, input], seed.wrapping_add(7));
        quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
        let mut plan = CompiledPlan::from_quantized(&model).unwrap();
        let x = gaussian(&[batch, input], seed.wrapping_add(13));
        let reference = model.forward(&x).unwrap();
        let packed = plan.forward(&x).unwrap();
        prop_assert_eq!(packed.dims(), reference.dims());
        for (i, (a, b)) in packed.as_slice().iter().zip(reference.as_slice()).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                "output {i}: packed {a} vs reference {b}"
            );
        }
    }

    /// Every packed layer's decode LUT agrees with the bit-level `ant-hw`
    /// decoder on every code, and the packed codes decode to exactly the
    /// fake-quantized weights.
    #[test]
    fn packed_codes_match_hw_decoder_semantics(
        input in 2usize..8, width in 3usize..10, seed in 0u64..500,
    ) {
        let mut model = random_mlp(input, width, 1, 3, seed);
        let calib = gaussian(&[48, input], seed.wrapping_add(3));
        quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
        let plan = CompiledPlan::from_quantized(&model).unwrap();
        for layer in plan.layers() {
            let PlanLayer::Packed(p) = layer else { continue };
            for q in [p.dtype(), p.activation().dtype()] {
                let codec = Codec::new(q).unwrap();
                let lut = codec.decode_lut();
                let wt = wire_type(q);
                for code in 0..codec.num_codes() as u32 {
                    let hw = decode(code, q.bits(), wt).unwrap();
                    prop_assert_eq!(
                        lut[code as usize] as i64, hw.value(),
                        "{}: code {:b}", q, code
                    );
                }
            }
        }
        // decode_all equals the reference effective (fake-quantized) weight.
        for (layer, plan_layer) in model.layers().iter().zip(plan.layers()) {
            if let (NetLayer::Dense(d), PlanLayer::Packed(p)) = (layer, plan_layer) {
                let expected = d.effective_weight().unwrap();
                let decoded = p.weights().decode_all().unwrap();
                for (a, b) in decoded.iter().zip(expected.as_slice()) {
                    prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "{} vs {}", a, b);
                }
            }
        }
    }

    /// The runtime's integer GEMM equals the cycle-stepped hardware
    /// reference over decoded operands (mac semantics, Fig. 7).
    #[test]
    fn int_gemm_matches_hw_reference(
        m in 1usize..7, k in 1usize..9, n in 1usize..7, seed in 0u32..1000,
    ) {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut codes = |len: usize| -> Vec<u32> {
            (0..len)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) & 0xF
                })
                .collect()
        };
        let a_codes = codes(m * k);
        let b_codes = codes(n * k);
        let a = DecodedMatrix::from_codes(m, k, &a_codes, 4, WireType::Flint { signed: false })
            .unwrap();
        // b as [n, k]: the runtime's weight-stationary layout.
        let b = DecodedMatrix::from_codes(n, k, &b_codes, 4, WireType::Flint { signed: true })
            .unwrap();
        let a_int: Vec<i32> = a.values().iter().map(|&v| v as i32).collect();
        let b_int: Vec<i32> = b.values().iter().map(|&v| v as i32).collect();
        let mut out = vec![0i64; m * n];
        int_gemm(&a_int, &b_int, m, k, n, &mut out);
        // Hardware reference computes a (m×k) × bᵀ (k×n): transpose b.
        let mut bt = vec![ant_hw::decode::Decoded { base: 0, exp: 0 }; k * n];
        for r in 0..n {
            for c in 0..k {
                bt[c * n + r] = b.get(r, c);
            }
        }
        let bt = DecodedMatrix::new(k, n, bt);
        prop_assert_eq!(out, reference_gemm(&a, &bt));
    }
}
