//! Lifetime and sharing guarantees of the mmap-borrowed `.antm` v2 path.
//!
//! The ownership contract under test: a [`MappedArtifact`]'s pages are
//! kept alive by *whoever borrows them* (the `Arc<Mmap>` owner threaded
//! through every borrowed store), so
//!
//! * a compiled plan stays valid after the artifact handle is dropped,
//! * any number of concurrent plans share the same read-only mapping
//!   (weights are not duplicated per plan), and
//! * a second process serving the same file shares the pages with the
//!   first: the mapping contributes no meaningful `Private_Dirty` memory
//!   (checked against `/proc/self/smaps`).

use ant_nn::model::{small_cnn, transformer_block};
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_runtime::{MappedArtifact, ModelArtifact};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;
use std::path::PathBuf;

fn gaussian(dims: &[usize], seed: u64) -> Tensor {
    sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        dims,
        seed,
    )
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ant-mapped-{}-{name}.antm", std::process::id()))
}

/// Quantizes a small CNN and saves it as a v2 artifact at `path`.
fn write_cnn_artifact(path: &PathBuf, seed: u64) {
    let mut model = small_cnn(4, seed);
    let calib = gaussian(&[24, 144], seed.wrapping_add(1));
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    ModelArtifact::from_model(&model)
        .unwrap()
        .save_path(path)
        .unwrap();
    // Flush writeback so the smaps-based tests below measure this
    // process's copy-on-write, not leftover page-cache dirtiness from
    // having just written the file.
    std::fs::File::open(path).unwrap().sync_all().unwrap();
}

#[test]
fn plan_outlives_the_artifact_handle() {
    let path = temp_path("outlive");
    write_cnn_artifact(&path, 3);
    let x = gaussian(&[2, 144], 7);

    let mapped = MappedArtifact::open(&path).unwrap();
    let mut plan = mapped.compile_strict().unwrap();
    let before = plan.forward(&x).unwrap();
    drop(mapped);
    // The file can even disappear from the filesystem: the mapping (and
    // the plan borrowing it) is kept alive by the kernel until unmapped.
    std::fs::remove_file(&path).unwrap();
    let after = plan.forward(&x).unwrap();
    assert_eq!(before.as_slice(), after.as_slice());
}

#[test]
fn concurrent_plans_share_one_mapping() {
    let path = temp_path("share");
    // Attention exercises all five PANL entry kinds (4 projections +
    // the transposed f32 output operand).
    let mut model = transformer_block(4, 8, 3, 21);
    let calib = gaussian(&[24, 32], 11);
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    ModelArtifact::from_model(&model)
        .unwrap()
        .save_path(&path)
        .unwrap();

    let mapped = MappedArtifact::open(&path).unwrap();
    let x = gaussian(&[3, 32], 17);
    let mut reference = mapped.compile_strict().unwrap();
    let want: Vec<f32> = reference.forward(&x).unwrap().as_slice().to_vec();

    // Eight plans compiled from the same handle, serving on worker
    // threads while the main thread drops the handle mid-flight.
    let mut handles = Vec::new();
    for _ in 0..8 {
        let mut plan = mapped.compile_strict().unwrap();
        assert!(plan.borrowed_layer_count() > 0, "plans must borrow");
        let x = x.clone();
        let want = want.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..20 {
                let got = plan.forward(&x).unwrap();
                assert_eq!(got.as_slice(), &want[..]);
            }
        }));
    }
    drop(mapped);
    std::fs::remove_file(&path).ok();
    for h in handles {
        h.join().unwrap();
    }
}

/// Child-process mode for [`two_processes_share_pages_rss_stays_flat`]:
/// serve the artifact and report how much of the mapping is
/// private-dirty. Activated via env var so the test binary can re-exec
/// itself as the second process.
fn child_serve_and_report(path: &str) -> ! {
    let mapped = MappedArtifact::open(path).unwrap();
    assert!(mapped.is_zero_copy(), "child: mapped load copied");
    let mut plan = mapped.compile_strict().unwrap();
    let x = gaussian(&[2, 144], 7);
    plan.forward(&x).unwrap();
    let dirty = mapping_private_dirty_kb(mapped.mapped_bytes().as_ptr() as usize);
    println!("PRIVATE_DIRTY_KB={dirty}");
    std::process::exit(0);
}

/// Sums the `Private_Dirty` of the `/proc/self/smaps` entry containing
/// `addr` (linux only; returns 0 elsewhere so callers can gate).
fn mapping_private_dirty_kb(addr: usize) -> u64 {
    let smaps = match std::fs::read_to_string("/proc/self/smaps") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let mut in_target = false;
    for line in smaps.lines() {
        if let Some((range, _)) = line.split_once(' ') {
            if let Some((lo, hi)) = range.split_once('-') {
                if let (Ok(lo), Ok(hi)) =
                    (usize::from_str_radix(lo, 16), usize::from_str_radix(hi, 16))
                {
                    in_target = lo <= addr && addr < hi;
                }
            }
        }
        if in_target {
            if let Some(rest) = line.strip_prefix("Private_Dirty:") {
                return rest
                    .trim()
                    .trim_end_matches(" kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
            }
        }
    }
    0
}

#[test]
#[cfg(target_os = "linux")]
fn two_processes_share_pages_rss_stays_flat() {
    // Re-exec dispatch: when the env var is set, this *test process* is
    // the child (the harness runs the test function in both, but the
    // child exits inside child_serve_and_report before reaching here).
    if let Ok(path) = std::env::var("ANT_MAPPED_LIFETIME_CHILD") {
        child_serve_and_report(&path);
    }
    let path = temp_path("two-proc");
    write_cnn_artifact(&path, 3);

    // Parent serves the mapping...
    let mapped = MappedArtifact::open(&path).unwrap();
    assert!(mapped.is_zero_copy());
    let mut plan = mapped.compile_strict().unwrap();
    plan.forward(&gaussian(&[2, 144], 7)).unwrap();
    let parent_dirty = mapping_private_dirty_kb(mapped.mapped_bytes().as_ptr() as usize);

    // ...while a second process opens the same file. MAP_PRIVATE
    // read-only pages are shared until written; neither process should
    // dirty the weight pages at all.
    let out = std::process::Command::new(std::env::current_exe().unwrap())
        .arg("two_processes_share_pages_rss_stays_flat")
        .arg("--exact")
        .arg("--nocapture")
        .env("ANT_MAPPED_LIFETIME_CHILD", path.to_str().unwrap())
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The harness prints "test name ... " without a newline before the
    // test body runs, so the marker may appear mid-line: split, don't
    // scan line starts.
    let child_dirty: u64 = stdout
        .split("PRIVATE_DIRTY_KB=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("child report")
        .parse()
        .unwrap();
    // The artifact is ~10s of KiB; a copied load would dirty all of it
    // in both processes. Shared clean pages keep Private_Dirty at (or
    // within one page of) zero.
    assert!(
        parent_dirty <= 8,
        "parent dirtied {parent_dirty} kB of the mapping"
    );
    assert!(
        child_dirty <= 8,
        "child dirtied {child_dirty} kB of the mapping"
    );
    std::fs::remove_file(&path).ok();
}
