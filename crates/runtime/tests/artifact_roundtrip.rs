//! Differential round-trip suite for the `.antm` model artifact.
//!
//! The contract under test (ISSUE 4 acceptance criteria): a quantized
//! model saved to an artifact, reloaded, and strict-compiled produces
//! **bit-identical packed wire codes** and ≤1e-6 relative output
//! difference versus the never-serialized pipeline — across the int, PoT
//! and flint primitives at low and high bit widths — and corrupted,
//! truncated or wrong-version artifacts fail with structured
//! [`ArtifactError`]s, never panics.

use ant_core::select::PrimitiveCombo;
use ant_core::{ClipSearch, DataType, Granularity, Quantizer, TensorQuantizer};
use ant_nn::model::{mlp, small_cnn, tiny_transformer, transformer_block, NetLayer, Sequential};
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_runtime::{
    probe, ArtifactError, BatchPolicy, CompiledPlan, Engine, ModelArtifact, PlanLayer, Planner,
    RuntimeError, FORMAT_VERSION,
};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;

fn gaussian(dims: &[usize], seed: u64) -> Tensor {
    sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        dims,
        seed,
    )
}

fn assert_rel_close(a: &Tensor, b: &Tensor, tol: f32, context: &str) {
    assert_eq!(a.dims(), b.dims(), "{context}: dims");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + y.abs()),
            "{context}: element {i}: {x} vs {y}"
        );
    }
}

/// Compares every packed weight tensor of two plans bit-for-bit and
/// returns how many tensors were compared.
fn assert_bit_identical(a: &CompiledPlan, b: &CompiledPlan, context: &str) -> usize {
    assert_eq!(a.layers().len(), b.layers().len(), "{context}: layer count");
    let mut compared = 0;
    for (i, (la, lb)) in a.layers().iter().zip(b.layers()).enumerate() {
        match (la, lb) {
            (PlanLayer::Packed(pa), PlanLayer::Packed(pb)) => {
                assert_eq!(pa.weights(), pb.weights(), "{context}: layer {i} codes");
                compared += 1;
            }
            (PlanLayer::PackedConv(pa), PlanLayer::PackedConv(pb)) => {
                assert_eq!(pa.weights(), pb.weights(), "{context}: layer {i} codes");
                compared += 1;
            }
            (PlanLayer::PackedAttn(pa), PlanLayer::PackedAttn(pb)) => {
                for (wa, wb) in pa.projections().into_iter().zip(pb.projections()) {
                    assert_eq!(wa, wb, "{context}: layer {i} projection codes");
                    compared += 1;
                }
            }
            _ => {}
        }
    }
    compared
}

/// Saves, reloads and strict-compiles `model`, checking the reloaded plan
/// against the never-serialized one: bit-identical codes, ≤1e-6 relative
/// outputs.
fn roundtrip_and_check(model: &Sequential, x: &Tensor, context: &str) {
    let mut direct = CompiledPlan::from_quantized_strict(model)
        .unwrap_or_else(|e| panic!("{context}: direct compile: {e}"));
    let artifact = ModelArtifact::from_model(model).unwrap();
    let mut bytes = Vec::new();
    artifact.save(&mut bytes).unwrap();
    let reloaded = ModelArtifact::load(&bytes[..]).unwrap();
    let mut replayed = reloaded
        .compile_strict()
        .unwrap_or_else(|e| panic!("{context}: reloaded compile: {e}"));
    let compared = assert_bit_identical(&direct, &replayed, context);
    assert!(compared > 0, "{context}: no packed tensors compared");
    let want = direct.forward(x).unwrap();
    let got = replayed.forward(x).unwrap();
    assert_rel_close(&got, &want, 1e-6, context);
    // The reconstructed fake-quantized model agrees with the packed plan
    // to the usual packed-vs-reference tolerance.
    let mut rebuilt = reloaded.to_model().unwrap();
    let model_out = rebuilt.forward(x).unwrap();
    assert_rel_close(&model_out, &want, 1e-4, &format!("{context} (to_model)"));
}

#[test]
fn spec_quantized_mlp_roundtrips_across_combos_and_widths() {
    for (combo, bits) in [
        (PrimitiveCombo::Int, 4),
        (PrimitiveCombo::Int, 8),
        (PrimitiveCombo::IntPot, 4),
        (PrimitiveCombo::IntPotFlint, 4),
    ] {
        let mut model = mlp(8, 4, 11);
        let calib = gaussian(&[64, 8], 3);
        let spec = QuantSpec {
            combo,
            bits,
            ..QuantSpec::default()
        };
        quantize_model(&mut model, &calib, spec).unwrap();
        let x = gaussian(&[5, 8], 29);
        roundtrip_and_check(&model, &x, &format!("{combo} @{bits}b"));
    }
}

#[test]
fn forced_primitives_roundtrip_bit_identically() {
    // quantize_model cannot select PoT above 6 bits or flint at widths the
    // combo does not offer, so force each primitive explicitly onto every
    // dense layer (weights AND activations) to cover the full
    // primitive × width matrix.
    for dt in [
        DataType::int(4, true).unwrap(),
        DataType::int(8, true).unwrap(),
        DataType::pot(4, true).unwrap(),
        DataType::pot(6, true).unwrap(),
        DataType::flint(4, true).unwrap(),
        DataType::flint(8, true).unwrap(),
    ] {
        let mut model = mlp(8, 4, 17);
        let calib = gaussian(&[48, 8], 5);
        quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
        for layer in model.layers_mut() {
            if let NetLayer::Dense(d) = layer {
                let (wq, _) = TensorQuantizer::fit(
                    dt,
                    &d.weight().clone(),
                    Granularity::PerChannel,
                    ClipSearch::default(),
                )
                .unwrap();
                d.quant.weight = Some(wq);
                let old_scale = d.quant.activation.as_ref().unwrap().scale();
                d.quant.activation = Some(Quantizer::with_scale(dt, old_scale).unwrap());
            }
        }
        let x = gaussian(&[4, 8], 31);
        roundtrip_and_check(&model, &x, &format!("forced {dt}"));
    }
}

#[test]
fn cnn_and_transformer_artifacts_roundtrip() {
    // CNN: conv, relu, pool, dense.
    let mut cnn = small_cnn(4, 7);
    let calib = gaussian(&[24, 144], 9);
    quantize_model(&mut cnn, &calib, QuantSpec::default()).unwrap();
    roundtrip_and_check(&cnn, &gaussian(&[3, 144], 13), "cnn");

    // Transformer block: attention, gelu, dense.
    let mut block = transformer_block(4, 8, 3, 21);
    let calib = gaussian(&[24, 32], 11);
    quantize_model(&mut block, &calib, QuantSpec::default()).unwrap();
    roundtrip_and_check(&block, &gaussian(&[3, 32], 17), "transformer block");

    // Full tiny transformer: norm, attention, dense.
    let mut tt = tiny_transformer(4, 8, 3, 23);
    let calib = gaussian(&[24, 32], 15);
    quantize_model(&mut tt, &calib, QuantSpec::default()).unwrap();
    roundtrip_and_check(&tt, &gaussian(&[3, 32], 19), "tiny transformer");
}

#[test]
fn reloaded_plan_serves_through_the_engine() {
    let mut model = small_cnn(4, 3);
    let calib = gaussian(&[24, 144], 41);
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    let artifact = ModelArtifact::from_model(&model).unwrap();
    let mut bytes = Vec::new();
    artifact.save(&mut bytes).unwrap();
    let reloaded = ModelArtifact::load(&bytes[..]).unwrap();
    let plan = reloaded.compile_strict().unwrap();
    assert_eq!(plan.coverage(), 1.0);
    let mut reference = plan.clone();
    let engine = Engine::new(plan, BatchPolicy::default());
    let x = gaussian(&[8, 144], 43);
    let ids: Vec<_> = (0..8)
        .map(|i| engine.submit(x.channel(i).unwrap()).unwrap())
        .collect();
    for (i, id) in ids.into_iter().enumerate() {
        let got = engine.wait(id).unwrap();
        let row = Tensor::from_vec(x.channel(i).unwrap().to_vec(), &[1, 144]).unwrap();
        let want = reference.forward(&row).unwrap();
        assert_eq!(got, want.as_slice(), "request {i}");
    }
}

#[test]
fn float_typed_layer_falls_back_leniently_and_fails_strict_after_reload() {
    let mut model = mlp(8, 4, 11);
    let calib = gaussian(&[64, 8], 3);
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    let fdt = DataType::float(4, true).unwrap();
    if let NetLayer::Dense(d) = &mut model.layers_mut()[2] {
        let (q, _) = TensorQuantizer::fit(
            fdt,
            &d.weight().clone(),
            Granularity::PerChannel,
            ClipSearch::default(),
        )
        .unwrap();
        d.quant.weight = Some(q);
    }
    let artifact = ModelArtifact::from_model(&model).unwrap();
    let mut bytes = Vec::new();
    artifact.save(&mut bytes).unwrap();
    let reloaded = ModelArtifact::load(&bytes[..]).unwrap();
    // Strict refuses, exactly like the never-serialized pipeline.
    match reloaded.compile_strict() {
        Err(ArtifactError::Runtime(RuntimeError::UnsupportedLayer { layer, .. })) => {
            assert_eq!(layer, "fc2")
        }
        other => panic!("expected strict refusal, got {other:?}"),
    }
    // Lenient compiles with one fallback layer; coverage counts it in the
    // denominator (5 layers, 1 fallback => 0.8).
    let mut plan = reloaded.compile().unwrap();
    assert_eq!(plan.coverage(), 0.8);
    let mut direct = CompiledPlan::from_quantized(&model).unwrap();
    let x = gaussian(&[4, 8], 37);
    assert_rel_close(
        &plan.forward(&x).unwrap(),
        &direct.forward(&x).unwrap(),
        1e-4,
        "lenient fallback",
    );
}

#[test]
fn selection_cache_section_warm_starts_a_planner() {
    let mut model = mlp(8, 4, 19);
    let calib = gaussian(&[48, 8], 7);
    let mut planner = Planner::new();
    let spec = QuantSpec::default();
    let mut plan = planner.compile(&mut model, &calib, spec).unwrap();
    assert_eq!(planner.cache().stats(), (0, 1));

    let artifact = ModelArtifact::from_model(&model)
        .unwrap()
        .with_cache(planner.cache());
    let mut bytes = Vec::new();
    artifact.save(&mut bytes).unwrap();
    let reloaded = ModelArtifact::load(&bytes[..]).unwrap();
    assert_eq!(reloaded.cache_entries().len(), 1);
    assert_eq!(reloaded.cache_entries(), artifact.cache_entries());

    // A warm planner replays the persisted Algorithm-2 decisions for the
    // original (model, calibration, spec) inputs: pure cache hit.
    let mut warm = reloaded.planner();
    let mut fresh = model.clone();
    let mut warm_plan = warm.compile(&mut fresh, &calib, spec).unwrap();
    assert_eq!(warm.cache().stats(), (1, 0));
    let x = gaussian(&[4, 8], 47);
    assert_eq!(
        warm_plan.forward(&x).unwrap().as_slice(),
        plan.forward(&x).unwrap().as_slice()
    );
}

// ---------------------------------------------------------------------------
// Hostile inputs
// ---------------------------------------------------------------------------

fn sample_bytes() -> Vec<u8> {
    let mut model = mlp(8, 4, 11);
    let calib = gaussian(&[64, 8], 3);
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    let artifact = ModelArtifact::from_model(&model).unwrap();
    let mut bytes = Vec::new();
    artifact.save(&mut bytes).unwrap();
    bytes
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = sample_bytes();
    bytes[0] = b'X';
    match ModelArtifact::load(&bytes[..]) {
        Err(ArtifactError::BadMagic { found }) => assert_eq!(&found[1..], b"NTM"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn newer_version_is_rejected_with_both_versions_reported() {
    let mut bytes = sample_bytes();
    bytes[4] = 0xFF; // version lives at offset 4..6, little-endian
    match ModelArtifact::load(&bytes[..]) {
        Err(ArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 0x00FF);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // probe() applies the same gate.
    assert!(matches!(
        probe(&bytes[..]),
        Err(ArtifactError::UnsupportedVersion { .. })
    ));
}

#[test]
fn payload_corruption_is_a_checksum_mismatch_under_verify() {
    let bytes = sample_bytes();
    let info = probe(&bytes[..]).unwrap();
    assert_eq!(info.sections[0].id, "MODL");
    // Flip one byte in the middle of the MODL payload. v2 load is lazy
    // (no CRC sweep), so detection is `verify`'s job; load itself must
    // still fail structurally or succeed, never panic.
    let payload_start = info.sections[0].offset as usize;
    let mut corrupt = bytes.clone();
    corrupt[payload_start + info.sections[0].len as usize / 2] ^= 0x40;
    let _ = ModelArtifact::load(&corrupt[..]);
    match ModelArtifact::verify_bytes(&corrupt) {
        Err(ArtifactError::ChecksumMismatch {
            section,
            stored,
            computed,
        }) => {
            assert_eq!(section, "MODL");
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    // The uncorrupted stream verifies clean.
    ModelArtifact::verify_bytes(&bytes).unwrap();
}

#[test]
fn v1_payload_corruption_is_still_caught_eagerly_at_load() {
    let mut model = mlp(8, 4, 11);
    let calib = gaussian(&[64, 8], 3);
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    let artifact = ModelArtifact::from_model(&model).unwrap();
    let mut bytes = Vec::new();
    artifact.save_v1(&mut bytes).unwrap();
    let info = probe(&bytes[..]).unwrap();
    assert_eq!(info.version, 1);
    let payload_start = info.sections[0].offset as usize;
    let mut corrupt = bytes.clone();
    corrupt[payload_start + info.sections[0].len as usize / 2] ^= 0x40;
    match ModelArtifact::load(&corrupt[..]) {
        Err(ArtifactError::ChecksumMismatch { section, .. }) => assert_eq!(section, "MODL"),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn truncation_at_every_prefix_is_a_structured_error() {
    let bytes = sample_bytes();
    for len in 0..bytes.len() {
        match ModelArtifact::load(&bytes[..len]) {
            Err(
                ArtifactError::Truncated { .. }
                | ArtifactError::ChecksumMismatch { .. }
                | ArtifactError::Malformed { .. }
                | ArtifactError::MissingSection { .. },
            ) => {}
            Ok(_) => panic!("truncated prefix of {len} bytes loaded successfully"),
            Err(other) => panic!("prefix {len}: unexpected error kind {other:?}"),
        }
    }
    // Short header truncations specifically report Truncated.
    assert!(matches!(
        ModelArtifact::load(&bytes[..3]),
        Err(ArtifactError::Truncated { .. })
    ));
}

#[test]
fn single_byte_flips_never_panic() {
    let bytes = sample_bytes();
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xA5;
        // Any structured outcome is fine; panics and aborts are not. A
        // flip in the reserved header field is the only spot allowed to
        // still load to the identical artifact.
        let _ = ModelArtifact::load(&corrupt[..]);
    }
}

#[test]
fn cache_section_corruption_is_detected_independently() {
    let mut model = mlp(8, 4, 19);
    let calib = gaussian(&[48, 8], 7);
    let mut planner = Planner::new();
    planner
        .compile(&mut model, &calib, QuantSpec::default())
        .unwrap();
    let artifact = ModelArtifact::from_model(&model)
        .unwrap()
        .with_cache(planner.cache());
    let mut bytes = Vec::new();
    artifact.save(&mut bytes).unwrap();
    let info = probe(&bytes[..]).unwrap();
    let cach = info
        .sections
        .iter()
        .find(|s| s.id == "CACH")
        .expect("CACH section present");
    assert!(cach.len > 0);
    let mut corrupt = bytes.clone();
    corrupt[cach.offset as usize + 4] ^= 0x01;
    match ModelArtifact::verify_bytes(&corrupt) {
        Err(ArtifactError::ChecksumMismatch { section, .. }) => assert_eq!(section, "CACH"),
        other => panic!("expected CACH ChecksumMismatch, got {other:?}"),
    }
}
