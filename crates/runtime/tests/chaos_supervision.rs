//! Property suite for the engine's poison-request quarantine: for a
//! batch of `n` requests of which exactly `k` are poisoned (their
//! execution panics), the supervisor's bisection must isolate exactly
//! those `k` — each failing as [`RuntimeError::PoisonedRequest`] —
//! while every innocent request completes with results bit-identical
//! to a fault-free run, and the engine stays alive throughout.
//!
//! The poison is modelled through the public [`Engine::with_exec`]
//! seam (an executor that panics when any row leads with the
//! sentinel), the same seam `ant_runtime::chaos` uses, so the property
//! covers the exact code path the chaos harness exercises.

use ant_nn::model::mlp;
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_runtime::{BatchExec, BatchPolicy, CompiledPlan, Engine, RuntimeError};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;
use proptest::prelude::*;
use std::time::Duration;

const FEATURES: usize = 8;

/// The sentinel a poisoned row leads with — far outside the Gaussian
/// input range, so no innocent row can collide.
const POISON: f32 = 1.0e6;

fn plan() -> CompiledPlan {
    let mut model = mlp(FEATURES, 4, 17);
    let calib = sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        &[64, FEATURES],
        3,
    );
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    CompiledPlan::from_quantized(&model).unwrap()
}

/// An executor that panics whenever any row of the batch is poisoned —
/// the whole batch dies, exactly like a poison request crashing a
/// shared forward pass.
fn poison_sensitive_exec() -> BatchExec {
    Box::new(|plan, x, batch, out| {
        let per = x.len() / batch;
        for row in x.chunks(per) {
            assert!(row[0] != POISON, "poisoned row reached the plan");
        }
        plan.forward_rows(x, batch, out)
    })
}

/// SplitMix64, for choosing poisoned indices from the case seed.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `k` distinct indices in `0..n`, deterministic in `seed`.
fn poisoned_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut picked = Vec::new();
    let mut draw = 0u64;
    while picked.len() < k {
        let idx = (splitmix(seed.wrapping_add(draw)) % n as u64) as usize;
        draw += 1;
        if !picked.contains(&idx) {
            picked.push(idx);
        }
    }
    picked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Bisection quarantine isolates exactly the k poisoned requests of
    /// n; innocents are bit-identical to a fault-free forward.
    #[test]
    fn quarantine_isolates_exactly_the_poisoned_requests(
        n in 4usize..9, k in 1usize..4, seed in 0u64..500,
    ) {
        let p = plan();
        let mut reference = p.clone();
        let engine = Engine::with_exec(
            p,
            BatchPolicy {
                // Unreachable max_batch + a generous gather window: all
                // n submits below land in ONE batch deterministically.
                max_batch: 64,
                max_wait: Duration::from_millis(300),
                max_queue: 64,
                // Room for k panics in a row even if every probe of a
                // bisection level is all-poison.
                max_restarts: 16,
                restart_backoff: Duration::ZERO,
            },
            poison_sensitive_exec(),
        );
        let inputs = sample_tensor(
            Distribution::Gaussian { mean: 0.0, std: 1.0 },
            &[n, FEATURES],
            seed,
        );
        let poisoned = poisoned_indices(n, k, seed.wrapping_mul(31).wrapping_add(7));
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = inputs.as_slice()[i * FEATURES..(i + 1) * FEATURES].to_vec();
            if poisoned.contains(&i) {
                row[0] = POISON;
            }
            ids.push(engine.submit(&row).unwrap());
        }
        for (i, id) in ids.into_iter().enumerate() {
            if poisoned.contains(&i) {
                // Exactly the poisoned requests fail, and as
                // PoisonedRequest — never a blanket engine error.
                let err = engine.wait(id).unwrap_err();
                prop_assert!(
                    matches!(err, RuntimeError::PoisonedRequest { .. }),
                    "request {i} should be poisoned, got: {err}"
                );
            } else {
                let got = engine.wait(id);
                prop_assert!(got.is_ok(), "innocent request {} failed: {:?}", i, got);
                let got = got.unwrap();
                let row = Tensor::from_vec(
                    inputs.as_slice()[i * FEATURES..(i + 1) * FEATURES].to_vec(),
                    &[1, FEATURES],
                )
                .unwrap();
                let want = reference.forward(&row).unwrap();
                prop_assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "innocent request {} diverged from the fault-free run",
                    i
                );
            }
        }
        // The engine survived the storm and keeps serving.
        prop_assert!(!engine.is_dead());
        let id = engine
            .submit(&inputs.as_slice()[..FEATURES])
            .unwrap();
        prop_assert!(engine.wait(id).is_ok());
        let stats = engine.stats();
        prop_assert_eq!(stats.poisoned, k as u64, "stats: {:?}", stats);
        prop_assert!(stats.restarts >= 1, "stats: {:?}", stats);
    }
}
