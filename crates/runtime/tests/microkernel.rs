//! Bit-identity and overflow-bound suite for the narrow-operand
//! microkernel GEMM.
//!
//! The contract under test: [`PanelGemm`] (panel-packed `i8`/`i16`
//! operands, register-blocked tiles, `i32` accumulation with the
//! widening cadence, optional AVX2) produces **exactly** the `i64`
//! accumulator of the scalar [`int_gemm`] reference — across odd and
//! tail shapes, every thread partitioning, and at full operand
//! magnitudes where the cadence is the only thing standing between the
//! `i32` block accumulator and wraparound.

use ant_runtime::gemm::{im2row, int_gemm, int_gemm_threaded, partition, PanelGemm, NR};
use ant_runtime::WorkerPool;
use proptest::prelude::*;
use std::sync::Arc;

fn reference(a: &[i32], b: &[i32], m: usize, k: usize, n: usize) -> Vec<i64> {
    let mut out = vec![0i64; m * n];
    for i in 0..m {
        for o in 0..n {
            for p in 0..k {
                out[i * n + o] += a[i * k + p] as i64 * b[o * k + p] as i64;
            }
        }
    }
    out
}

fn lcg(len: usize, seed: u32, range: i32) -> Vec<i32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as i32 % range) - range / 2
        })
        .collect()
}

/// The satellite shape grid: every m,k,n in {1..17} ∪ {129, 256} would be
/// ~8000 cells; proptest samples indices into it instead, with the tails
/// pinned by the deterministic tests below.
const DIMS: [usize; 19] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 129, 256,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// i8 microkernel == scalar reference on random shapes (including
    /// panel tails n % NR != 0 and row tails m % MR != 0), all thread
    /// counts.
    #[test]
    fn panel_i8_bit_identical_to_reference(
        mi in 0usize..19, ki in 0usize..19, ni in 0usize..19,
        seed in 0u32..10_000, threads in 1usize..9,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a32 = lcg(m * k, seed, 255);
        let b32 = lcg(n * k, seed.wrapping_add(1), 255);
        let a8: Vec<i8> = a32.iter().map(|&v| v as i8).collect();
        let b8: Vec<i8> = b32.iter().map(|&v| v as i8).collect();
        let packed = PanelGemm::pack(&b8, n, k, 127);
        let mut out = vec![0i64; m * n];
        packed.matmul(&a8, m, &mut out, WorkerPool::global(), threads);
        prop_assert_eq!(out, reference(&a32, &b32, m, k, n));
    }

    /// i16 microkernel == scalar reference at wide-flint-scale magnitudes
    /// (values up to ±16384, the flint8u lattice maximum).
    #[test]
    fn panel_i16_bit_identical_to_reference(
        mi in 0usize..19, ki in 0usize..19, ni in 0usize..19,
        seed in 0u32..10_000, threads in 1usize..9,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a32 = lcg(m * k, seed, 32767);
        let b32 = lcg(n * k, seed.wrapping_add(1), 32767);
        let a16: Vec<i16> = a32.iter().map(|&v| v as i16).collect();
        let b16: Vec<i16> = b32.iter().map(|&v| v as i16).collect();
        let packed = PanelGemm::pack(&b16, n, k, 16384);
        let mut out = vec![0i64; m * n];
        packed.matmul(&a16, m, &mut out, WorkerPool::global(), threads);
        prop_assert_eq!(out, reference(&a32, &b32, m, k, n));
    }

    /// The threaded i32 driver is bit-identical to the scalar reference
    /// for every partitioning the thread budget can induce.
    #[test]
    fn threaded_i32_bit_identical_to_reference(
        mi in 0usize..19, ki in 0usize..19, ni in 0usize..19,
        seed in 0u32..10_000, threads in 1usize..17,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = lcg(m * k, seed, 129);
        let b = lcg(n * k, seed.wrapping_add(1), 129);
        let mut expect = vec![0i64; m * n];
        int_gemm(&a, &b, m, k, n, &mut expect);
        let mut got = vec![0i64; m * n];
        int_gemm_threaded(&a, &b, m, k, n, &mut got, threads);
        prop_assert_eq!(got, expect);
    }
}

/// The widening-cadence overflow bound at max-magnitude operands: every
/// product is `(−128 or 127)²`-scale, so an unguarded `i32` dot product
/// would wrap after ~2^17 terms. `k` is driven across and beyond the
/// cadence (multiples of the block size ± 1) to hit the block-boundary
/// tails.
#[test]
fn max_magnitude_operands_never_wrap() {
    let pool = WorkerPool::global();
    let kb = {
        // Recover the cadence the kernel actually uses for ±127/±128.
        let probe = PanelGemm::pack(&[127i8], 1, 1, 127);
        probe.k_block()
    };
    for k in [1, kb - 1, kb, kb + 1, 2 * kb, 2 * kb + 7, 3 * kb + 5] {
        let (m, n) = (2usize, 3usize);
        // Worst case: all +127 against all −128 (largest-magnitude pair).
        let a8 = vec![127i8; m * k];
        let b8 = vec![-128i8; n * k];
        let packed = PanelGemm::pack(&b8, n, k, 127);
        let mut out = vec![0i64; m * n];
        packed.matmul(&a8, m, &mut out, pool, 1);
        let expect = 127i64 * -128 * k as i64;
        assert!(out.iter().all(|&v| v == expect), "k={k}: {out:?}");
        // Alternating signs exercise cancellation inside a block.
        let a8: Vec<i8> = (0..m * k)
            .map(|i| if i % 2 == 0 { 127 } else { -128 })
            .collect();
        let a32: Vec<i32> = a8.iter().map(|&v| v as i32).collect();
        let b32: Vec<i32> = b8.iter().map(|&v| v as i32).collect();
        let packed = PanelGemm::pack(&b8, n, k, 128);
        let mut out = vec![0i64; m * n];
        packed.matmul(&a8, m, &mut out, pool, 1);
        assert_eq!(out, reference(&a32, &b32, m, k, n), "k={k} alternating");
    }
}

/// The cadence itself respects the documented bound: block sums of
/// `k_block` maximal products stay within `i32`.
#[test]
fn cadence_times_max_product_fits_i32() {
    for (a_max, b) in [
        (127i64, vec![127i8; 8]),
        (128, vec![-128i8; 8]),
        (1, vec![1i8; 8]),
    ] {
        let b_max = b.iter().map(|&v| (v as i64).abs()).max().unwrap();
        let pg = PanelGemm::pack(&b, 1, 8, a_max);
        assert!(
            pg.k_block() as i64 * a_max * b_max <= i32::MAX as i64,
            "cadence {} × {a_max} × {b_max} exceeds i32",
            pg.k_block()
        );
        assert!(pg.k_block() >= 1);
    }
    // i16 at full magnitude: cadence collapses toward 1 but never 0.
    let pg = PanelGemm::pack(&[i16::MIN; 8], 1, 8, 32767);
    assert!(pg.k_block() >= 1);
    assert!(pg.k_block() as i64 * 32767 * 32768 <= i32::MAX as i64);
}

/// Regression pin for the historical `threads.min(m)` cap: a batch-1
/// request against a wide layer must split over output columns.
#[test]
fn batch_one_wide_gemm_parallelizes() {
    let (rc, cc) = partition(1, 512, 4096, 8);
    assert_eq!(rc, 1, "one row can only yield one row chunk");
    assert!(
        cc >= 4,
        "m=1, n=4096 must fan out over columns, got {cc} chunks"
    );
    // And the fanned-out result is still exact.
    let (m, k, n) = (1usize, 512usize, 4096usize);
    let a = lcg(m * k, 21, 65);
    let b = lcg(n * k, 22, 65);
    let mut expect = vec![0i64; m * n];
    int_gemm(&a, &b, m, k, n, &mut expect);
    let pool = Arc::new(WorkerPool::new(4));
    let a8: Vec<i8> = a.iter().map(|&v| v as i8).collect();
    let b8: Vec<i8> = b.iter().map(|&v| v as i8).collect();
    let packed = PanelGemm::pack(&b8, n, k, 127);
    let mut got = vec![0i64; m * n];
    packed.matmul(&a8, m, &mut got, &pool, 4);
    assert_eq!(got, expect);
    let mut got32 = vec![0i64; m * n];
    int_gemm_threaded(&a, &b, m, k, n, &mut got32, 4);
    assert_eq!(got32, expect);
}

/// Panel packing handles every tail: n not a multiple of NR leaves a
/// partially filled last panel whose padded rows must not leak into real
/// outputs.
#[test]
fn panel_tails_are_exact_for_every_remainder() {
    let k = 33;
    for n in 1..=2 * NR + 1 {
        let m = 5;
        let a32 = lcg(m * k, 31, 255);
        let b32 = lcg(n * k, 37, 255);
        let a8: Vec<i8> = a32.iter().map(|&v| v as i8).collect();
        let b8: Vec<i8> = b32.iter().map(|&v| v as i8).collect();
        let packed = PanelGemm::pack(&b8, n, k, 127);
        let mut out = vec![0i64; m * n];
        packed.matmul(&a8, m, &mut out, WorkerPool::global(), 1);
        assert_eq!(out, reference(&a32, &b32, m, k, n), "n={n}");
    }
}

/// The generic im2row at narrow widths agrees with the i32 one (same
/// lowering, narrower lattice) for padded and unpadded geometries.
#[test]
fn narrow_im2row_matches_i32_lowering() {
    use ant_tensor::linalg::Conv2dGeometry;
    for (c, h, w, kernel, stride, padding) in [
        (2usize, 6usize, 5usize, 3usize, 1usize, 1usize),
        (3, 5, 5, 2, 2, 0),
    ] {
        let geo = Conv2dGeometry::new(kernel, kernel, stride, padding).unwrap();
        let ints = lcg(c * h * w, 13, 15);
        let narrow: Vec<i8> = ints.iter().map(|&v| v as i8).collect();
        let oh = geo.out_extent(h, kernel).unwrap();
        let ow = geo.out_extent(w, kernel).unwrap();
        let k = c * kernel * kernel;
        let mut rows32 = vec![i32::MIN; oh * ow * k];
        let mut rows8 = vec![i8::MIN; oh * ow * k];
        im2row(&ints, c, h, w, geo, &mut rows32);
        im2row(&narrow, c, h, w, geo, &mut rows8);
        for (i, (&wide, &byte)) in rows32.iter().zip(&rows8).enumerate() {
            assert_eq!(wide, byte as i32, "pad={padding} idx={i}");
        }
    }
}
