//! Differential decode conformance: token-by-token incremental decode
//! against the packed, group-quantized KV cache must reproduce the
//! full-sequence causal forward.
//!
//! The contract under test is the strongest one the runtime makes:
//! opening a session, prefilling a prompt prefix and then decoding the
//! remaining tokens one at a time — each K/V row quantized into the
//! M-ANT group cache and streamed back out of packed codes — yields the
//! same per-token outputs as running the whole sequence through the
//! masked causal forward in one call, within 1e-4 relative (the same
//! bound every other packed layer is held to; in practice the paths are
//! engineered to be bit-identical — shared group-encode path, identical
//! reduction orders, prefix softmax ≡ masked softmax).
//!
//! The grid covers the ISSUE's matrix: type combos whose per-group
//! candidates draw from int/PoT/flint, at 4- and 8-bit wire codes
//! (PoT members drop out at 8 bits by construction — lenient candidate
//! building), across group sizes 16/64/128, for both single- and
//! multi-block decoders.

use ant_core::select::PrimitiveCombo;
use ant_nn::model::decoder_block;
use ant_nn::qat::{quantize_model, QuantSpec};
use ant_runtime::{CompiledPlan, KvQuantSpec, RuntimeError};
use ant_tensor::dist::{sample_tensor, Distribution};
use ant_tensor::Tensor;
use proptest::prelude::*;

fn gaussian(dims: &[usize], seed: u64) -> Tensor {
    sample_tensor(
        Distribution::Gaussian {
            mean: 0.0,
            std: 1.0,
        },
        dims,
        seed,
    )
}

/// A quantized causal decoder compiled to the packed domain (strict:
/// every layer must lower).
fn decoder_plan(seq: usize, dim: usize, depth: usize, seed: u64) -> CompiledPlan {
    let mut model = decoder_block(seq, dim, depth, seed);
    let calib = gaussian(&[24, seq * dim], seed ^ 0x5eed);
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
    CompiledPlan::from_quantized_strict(&model)
        .unwrap()
        .with_threads(1)
}

/// Runs the full-sequence causal forward, then replays the same tokens
/// as prefill(prompt) + one decode step per remaining token, and checks
/// every produced row against the full forward's rows at ≤ `tol`
/// relative.
fn assert_incremental_matches_full(plan: &mut CompiledPlan, seq: usize, prompt: usize, tol: f32) {
    let dim = plan.token_dim().expect("causal plan");
    let x = gaussian(&[1, seq * dim], 0xD0_C0DE ^ (seq * dim) as u64);
    let x = x.as_slice();
    let mut full = Vec::new();
    plan.forward_rows(x, 1, &mut full).unwrap();
    assert_eq!(full.len(), seq * dim);

    let mut sess = plan.open_session(seq).unwrap();
    let mut got = vec![0f32; 0];
    plan.prefill(&mut sess, &x[..prompt * dim], &mut got)
        .unwrap();
    assert_eq!(got.len(), prompt * dim, "prefill returns every prompt row");
    assert_eq!(sess.tokens(), prompt);
    let close = |row: usize, have: &[f32]| {
        let want = &full[row * dim..(row + 1) * dim];
        for (a, b) in have.iter().zip(want) {
            assert!(
                (a - b).abs() <= tol * (1.0 + b.abs()),
                "row {row}: incremental {a} vs full {b}"
            );
        }
    };
    for r in 0..prompt {
        close(r, &got[r * dim..(r + 1) * dim]);
    }
    let mut step_out = Vec::new();
    for t in prompt..seq {
        let row = &x[t * dim..(t + 1) * dim];
        plan.decode_steps(&mut [&mut sess], row, &mut step_out)
            .unwrap();
        assert_eq!(step_out.len(), dim);
        close(t, &step_out);
    }
    assert_eq!(sess.tokens(), seq);
}

#[test]
fn incremental_decode_matches_full_forward_across_type_bit_group_grid() {
    let (seq, dim, prompt) = (9, 32, 4);
    let base = decoder_plan(seq, dim, 1, 21);
    for combo in [
        PrimitiveCombo::Int,
        PrimitiveCombo::IntPot,
        PrimitiveCombo::IntPotFlint,
    ] {
        for bits in [4u32, 8] {
            for group in [16usize, 64, 128] {
                let mut plan = base
                    .clone()
                    .with_kv_quant(KvQuantSpec { bits, group, combo })
                    .unwrap();
                assert_incremental_matches_full(&mut plan, seq, prompt, 1e-4);
            }
        }
    }
}

#[test]
fn multi_block_decoder_composes_causally() {
    // Two stacked blocks: block 2's inputs depend on block 1's outputs,
    // so this exercises causality composing across layers, plus one
    // deliberately awkward shape (dim not a multiple of the group).
    let (seq, dim, prompt) = (7, 24, 3);
    let mut plan = decoder_plan(seq, dim, 2, 33)
        .with_kv_quant(KvQuantSpec {
            bits: 4,
            group: 16,
            combo: PrimitiveCombo::IntPotFlint,
        })
        .unwrap();
    assert_incremental_matches_full(&mut plan, seq, prompt, 1e-4);
}

#[test]
fn prefill_only_and_decode_only_extremes() {
    let (seq, dim) = (6, 16);
    let mut plan = decoder_plan(seq, dim, 1, 5);
    // Prompt = everything (pure prefill)…
    assert_incremental_matches_full(&mut plan, seq, seq.min(seq), 1e-4);
    // …and prompt = a single token (decode carries almost all of it).
    assert_incremental_matches_full(&mut plan, seq, 1, 1e-4);
}

#[test]
fn session_misuse_is_structured_errors_not_corruption() {
    let (seq, dim) = (5, 16);
    let mut plan = decoder_plan(seq, dim, 1, 11);
    let x = gaussian(&[1, seq * dim], 3).as_slice().to_vec();
    let mut out = Vec::new();

    // Capacity: prompt longer than the session.
    let mut sess = plan.open_session(2).unwrap();
    match plan.prefill(&mut sess, &x, &mut out) {
        Err(RuntimeError::KvCacheFull { capacity: 2 }) => {}
        other => panic!("expected KvCacheFull, got {other:?}"),
    }

    // Decode past capacity.
    plan.prefill(&mut sess, &x[..2 * dim], &mut out).unwrap();
    match plan.decode_steps(&mut [&mut sess], &x[..dim], &mut out) {
        Err(RuntimeError::KvCacheFull { capacity: 2 }) => {}
        other => panic!("expected KvCacheFull, got {other:?}"),
    }

    // Prefill on a non-fresh session.
    assert!(matches!(
        plan.prefill(&mut sess, &x[..dim], &mut out),
        Err(RuntimeError::UnsupportedLayer { .. })
    ));

    // Ragged decode input.
    let mut fresh = plan.open_session(seq).unwrap();
    assert!(matches!(
        plan.decode_steps(&mut [&mut fresh], &x[..dim + 1], &mut out),
        Err(RuntimeError::ShapeMismatch { .. })
    ));

    // Zero-capacity session, and sessions on non-causal plans.
    assert!(plan.open_session(0).is_err());
    let mut encoder = {
        let mut model = ant_nn::model::transformer_block(4, 8, 3, 7);
        let calib = gaussian(&[24, 32], 13);
        quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
        CompiledPlan::from_quantized_strict(&model).unwrap()
    };
    assert!(encoder.token_dim().is_none());
    assert!(!encoder.is_causal());
    assert!(encoder.open_session(4).is_err());
    assert!(matches!(
        encoder.prefill(&mut fresh, &x[..dim], &mut out),
        Err(RuntimeError::UnsupportedLayer { .. })
    ));
}

#[test]
fn causal_flag_survives_artifact_roundtrip() {
    // Quantize a decoder, save it as a .antm artifact, reload, and
    // strict-compile: the causal flag must persist (MODL tag 7), the
    // reloaded plan must decode, and the incremental path must still
    // match the reloaded plan's full forward.
    let (seq, dim, prompt) = (6, 16, 2);
    let mut model = decoder_block(seq, dim, 1, 29);
    let calib = gaussian(&[24, seq * dim], 31);
    quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();

    let artifact = ant_runtime::ModelArtifact::from_model(&model).unwrap();
    assert!(
        artifact
            .layer_summaries()
            .iter()
            .any(|s| s.kind == "causal-attn"),
        "summary must distinguish causal attention"
    );
    let mut bytes = Vec::new();
    artifact.save(&mut bytes).unwrap();
    let reloaded = ant_runtime::ModelArtifact::load(&bytes[..]).unwrap();
    let mut plan = reloaded.compile_strict().unwrap().with_threads(1);
    assert!(plan.is_causal());
    assert_eq!(plan.token_dim(), Some(dim));
    assert_incremental_matches_full(&mut plan, seq, prompt, 1e-4);
}

#[test]
fn kv_bytes_scale_with_bit_width() {
    let plan = decoder_plan(6, 32, 1, 17);
    let narrow = plan
        .clone()
        .with_kv_quant(KvQuantSpec {
            bits: 4,
            group: 16,
            combo: PrimitiveCombo::IntPotFlint,
        })
        .unwrap();
    let wide = plan
        .with_kv_quant(KvQuantSpec {
            bits: 8,
            group: 16,
            combo: PrimitiveCombo::IntPotFlint,
        })
        .unwrap();
    let (s4, s8) = (
        narrow.open_session(64).unwrap(),
        wide.open_session(64).unwrap(),
    );
    assert!(
        s4.kv_bytes() < s8.kv_bytes(),
        "nibble packing must shrink the arena: {} vs {}",
        s4.kv_bytes(),
        s8.kv_bytes()
    );
    assert!(s4.kv_bytes() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Public-API property over random shapes and splits: group-wise
    /// quantized KV appends (prefill + step-by-step decode) round-trip
    /// against the float-pipeline reference — the full-sequence causal
    /// forward, whose K/V rows go through the identical quantize →
    /// dequantize float path without ever being packed into a cache.
    #[test]
    fn prop_incremental_equals_full_on_random_shapes(
        seed in 0u64..1 << 32,
        seq in 2usize..8,
        dim_ix in 0usize..3,
        prompt_frac in 0usize..100,
        group_ix in 0usize..3,
        bits_ix in 0usize..2,
    ) {
        let dim = [16usize, 24, 32][dim_ix];
        let group = [16usize, 64, 128][group_ix];
        let bits = [4u32, 8][bits_ix];
        let prompt = 1 + prompt_frac * (seq - 1) / 100;
        let mut plan = decoder_plan(seq, dim, 1, seed | 1)
            .with_kv_quant(KvQuantSpec { bits, group, combo: PrimitiveCombo::IntPotFlint })
            .unwrap();
        let tdim = plan.token_dim().unwrap();
        prop_assert_eq!(tdim, dim);
        let x = gaussian(&[1, seq * dim], seed ^ 0xF00D);
        let x = x.as_slice();
        let mut full = Vec::new();
        plan.forward_rows(x, 1, &mut full).unwrap();
        let mut sess = plan.open_session(seq).unwrap();
        let mut got = Vec::new();
        plan.prefill(&mut sess, &x[..prompt * dim], &mut got).unwrap();
        for r in 0..prompt {
            for (a, b) in got[r * dim..(r + 1) * dim].iter().zip(&full[r * dim..(r + 1) * dim]) {
                prop_assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "row {}: {} vs {}", r, a, b);
            }
        }
        let mut step = Vec::new();
        for t in prompt..seq {
            plan.decode_steps(&mut [&mut sess], &x[t * dim..(t + 1) * dim], &mut step).unwrap();
            for (a, b) in step.iter().zip(&full[t * dim..(t + 1) * dim]) {
                prop_assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "row {}: {} vs {}", t, a, b);
            }
        }
    }
}
