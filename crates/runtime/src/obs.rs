//! Runtime-side telemetry hooks over the [`ant_obs`] spine.
//!
//! Every call site in the hot path goes through this module, which has
//! two build variants with an identical API:
//!
//! * with the default `obs` feature, hooks record into preallocated
//!   [`ant_obs`] counters/gauges/histograms registered once (lazily, on
//!   first use — a cold edge) against [`ant_obs::global()`], plus the
//!   static span rings. Recording is a handful of relaxed atomic adds —
//!   no locks, no allocation, no syscalls — so the serving path keeps
//!   its zero-allocation steady state with telemetry on.
//! * with `--no-default-features`, every hook is an inline empty
//!   function and [`now`] returns a constant, so the instrumented code
//!   compiles to exactly the uninstrumented hot path.
//!
//! Clock reads happen only at layer/stage boundaries ([`now`] once per
//! plan layer, chained so layer `i`'s end stamp is layer `i+1`'s start),
//! never inside GEMM tiles or pool task bodies.

/// The instrumented layer taxonomy: one label value per [`crate::PlanLayer`]
/// variant. Indexes the per-kind metric arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Packed-domain dense GEMM.
    PackedLinear,
    /// Packed-domain convolution (integer im2row + GEMM).
    PackedConv,
    /// Packed-domain attention block.
    PackedAttn,
    /// ReLU.
    Relu,
    /// GELU.
    Gelu,
    /// 2×2 max pooling.
    Pool,
    /// Layer normalisation.
    Norm,
    /// Fake-quantized f32 fallback.
    Fallback,
}

/// Number of [`LayerKind`] variants (size of the per-kind metric arrays).
pub const N_LAYER_KINDS: usize = 8;

/// Every kind, in index order.
pub const LAYER_KINDS: [LayerKind; N_LAYER_KINDS] = [
    LayerKind::PackedLinear,
    LayerKind::PackedConv,
    LayerKind::PackedAttn,
    LayerKind::Relu,
    LayerKind::Gelu,
    LayerKind::Pool,
    LayerKind::Norm,
    LayerKind::Fallback,
];

impl LayerKind {
    /// The stable label value used for the `kind` label on exported
    /// series (and, prefixed with `layer.`, as the span name).
    pub fn as_str(self) -> &'static str {
        match self {
            LayerKind::PackedLinear => "packed_linear",
            LayerKind::PackedConv => "packed_conv",
            LayerKind::PackedAttn => "packed_attn",
            LayerKind::Relu => "relu",
            LayerKind::Gelu => "gelu",
            LayerKind::Pool => "pool",
            LayerKind::Norm => "norm",
            LayerKind::Fallback => "fallback",
        }
    }

    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            LayerKind::PackedLinear => 0,
            LayerKind::PackedConv => 1,
            LayerKind::PackedAttn => 2,
            LayerKind::Relu => 3,
            LayerKind::Gelu => 4,
            LayerKind::Pool => 5,
            LayerKind::Norm => 6,
            LayerKind::Fallback => 7,
        }
    }
}

#[cfg(feature = "obs")]
mod imp {
    use super::{LayerKind, LAYER_KINDS, N_LAYER_KINDS};
    use ant_obs::{register_span, Counter, Gauge, Histogram, SpanId};
    use std::sync::{Arc, OnceLock};

    /// Nanoseconds since the process-local telemetry epoch.
    #[inline]
    pub fn now() -> u64 {
        ant_obs::now_ns()
    }

    /// Preallocated handles for every runtime metric family; built once
    /// (first use) against [`ant_obs::global()`]. Recording through the
    /// handles never touches the registry again.
    pub struct RuntimeMetrics {
        forward_time: Arc<Histogram>,
        forward_rows: Arc<Counter>,
        layer_time: [Arc<Histogram>; N_LAYER_KINDS],
        layer_macs: [Arc<Counter>; N_LAYER_KINDS],
        layer_bytes: [Arc<Counter>; N_LAYER_KINDS],
        layer_rows: [Arc<Counter>; N_LAYER_KINDS],
        layer_spans: [SpanId; N_LAYER_KINDS],
        span_forward: SpanId,
        span_batch: SpanId,
        span_load: SpanId,
        span_verify: SpanId,
        engine_queue_depth: Arc<Gauge>,
        engine_batch_size: Arc<Histogram>,
        engine_submit_wait: Arc<Histogram>,
        engine_service: Arc<Histogram>,
        engine_requests: Arc<Counter>,
        engine_batches: Arc<Counter>,
        engine_decode_batch: Arc<Histogram>,
        engine_decode_step: Arc<Histogram>,
        engine_decode_tokens: Arc<Counter>,
        engine_restarts: Arc<Counter>,
        engine_poisoned: Arc<Counter>,
        engine_quarantine_probes: Arc<Counter>,
        kv_cache_bytes: Arc<Gauge>,
        kv_sessions: Arc<Gauge>,
        artifact_load: Arc<Histogram>,
        artifact_loads: Arc<Counter>,
        artifact_load_copies: Arc<Counter>,
        artifact_zero_copy: Arc<Gauge>,
        artifact_verify: Arc<Histogram>,
        cache_hits: Arc<Counter>,
        cache_misses: Arc<Counter>,
    }

    /// The process-wide hook set.
    pub fn metrics() -> &'static RuntimeMetrics {
        static METRICS: OnceLock<RuntimeMetrics> = OnceLock::new();
        METRICS.get_or_init(RuntimeMetrics::register)
    }

    impl RuntimeMetrics {
        fn register() -> RuntimeMetrics {
            let r = ant_obs::global();
            let hist_kind = |fam: &str, help: &str| {
                LAYER_KINDS.map(|k| r.histogram_with(fam, "kind", k.as_str(), help))
            };
            let ctr_kind = |fam: &str, help: &str| {
                LAYER_KINDS.map(|k| r.counter_with(fam, "kind", k.as_str(), help))
            };
            RuntimeMetrics {
                forward_time: r.histogram(
                    "ant_forward_time_ns",
                    "End-to-end forward_rows wall time per call",
                ),
                forward_rows: r.counter(
                    "ant_forward_rows_total",
                    "Rows (requests) pushed through forward_rows",
                ),
                layer_time: hist_kind(
                    "ant_layer_time_ns",
                    "Per-layer wall time by plan-layer kind",
                ),
                layer_macs: ctr_kind(
                    "ant_layer_macs_total",
                    "Multiply-accumulate operations by plan-layer kind",
                ),
                layer_bytes: ctr_kind(
                    "ant_layer_bytes_total",
                    "Bytes touched (activations + streamed weights) by plan-layer kind",
                ),
                layer_rows: ctr_kind("ant_layer_rows_total", "Rows executed by plan-layer kind"),
                layer_spans: LAYER_KINDS.map(|k| register_span(span_name(k))),
                span_forward: register_span("forward"),
                span_batch: register_span("engine.batch"),
                span_load: register_span("artifact.load"),
                span_verify: register_span("artifact.verify"),
                engine_queue_depth: r.gauge(
                    "ant_engine_queue_depth",
                    "Requests queued in the engine right now",
                ),
                engine_batch_size: r.histogram(
                    "ant_engine_batch_size",
                    "Requests coalesced per executed batch",
                ),
                engine_submit_wait: r.histogram(
                    "ant_engine_submit_wait_ns",
                    "Per-request wait from submit to batch dispatch",
                ),
                engine_service: r.histogram(
                    "ant_engine_service_ns",
                    "Per-batch service time from dispatch to done",
                ),
                engine_requests: r.counter(
                    "ant_engine_requests_total",
                    "Requests accepted by Engine::submit",
                ),
                engine_batches: r.counter("ant_engine_batches_total", "Batches executed"),
                engine_decode_batch: r.histogram(
                    "ant_engine_decode_batch_size",
                    "Sessions coalesced per executed decode step batch",
                ),
                engine_decode_step: r.histogram(
                    "ant_engine_decode_step_ns",
                    "Per-batch decode step wall time (one token per session)",
                ),
                engine_decode_tokens: r.counter(
                    "ant_engine_decode_tokens_total",
                    "Tokens produced by decode steps (sum of decode batch sizes)",
                ),
                engine_restarts: r.counter(
                    "ant_engine_restarts_total",
                    "Supervisor recoveries: panicked batch executions absorbed without killing the engine",
                ),
                engine_poisoned: r.counter(
                    "ant_engine_poisoned_total",
                    "Requests isolated by bisection quarantine and failed as PoisonedRequest",
                ),
                engine_quarantine_probes: r.counter(
                    "ant_engine_quarantine_probes_total",
                    "Bisection probe executions performed while isolating poisoned requests",
                ),
                kv_cache_bytes: r.gauge(
                    "ant_kv_cache_bytes",
                    "Bytes held by live packed KV caches across open sessions",
                ),
                kv_sessions: r.gauge("ant_kv_sessions", "Decode sessions currently open"),
                artifact_load: r.histogram("ant_artifact_load_ns", "Artifact load/open wall time"),
                artifact_loads: r.counter("ant_artifact_loads_total", "Artifact loads/opens"),
                artifact_load_copies: r.counter(
                    "ant_artifact_load_copies_total",
                    "Weight-bytes copy passes performed by artifact loads",
                ),
                artifact_zero_copy: r.gauge(
                    "ant_artifact_zero_copy",
                    "1 when the most recent artifact open borrowed weights zero-copy",
                ),
                artifact_verify: r.histogram(
                    "ant_artifact_verify_ns",
                    "Artifact checksum verification wall time",
                ),
                cache_hits: r.counter(
                    "ant_selection_cache_hits_total",
                    "Type-selection cache hits",
                ),
                cache_misses: r.counter(
                    "ant_selection_cache_misses_total",
                    "Type-selection cache misses",
                ),
            }
        }

        /// Records one executed plan layer: timing histogram + span, and
        /// the MAC/byte/row work counters that GOPS and bandwidth are
        /// derived from at export time.
        #[inline]
        pub fn record_layer(
            &self,
            kind: LayerKind,
            start_ns: u64,
            dur_ns: u64,
            rows: u64,
            macs: u64,
            bytes: u64,
        ) {
            let i = kind.index();
            self.layer_time[i].record(dur_ns);
            self.layer_rows[i].add(rows);
            if macs > 0 {
                self.layer_macs[i].add(macs);
            }
            self.layer_bytes[i].add(bytes);
            ant_obs::record_span(self.layer_spans[i], start_ns, dur_ns);
        }

        /// Records one end-to-end `forward_rows` call.
        #[inline]
        pub fn record_forward(&self, start_ns: u64, dur_ns: u64, rows: u64) {
            self.forward_time.record(dur_ns);
            self.forward_rows.add(rows);
            ant_obs::record_span(self.span_forward, start_ns, dur_ns);
        }

        /// Publishes the engine's current queue depth.
        #[inline]
        pub fn engine_queue_depth(&self, depth: usize) {
            self.engine_queue_depth.set(depth as i64);
        }

        /// Counts one accepted request.
        #[inline]
        pub fn engine_submit(&self) {
            self.engine_requests.inc();
        }

        /// Records one request's submit→dispatch wait.
        #[inline]
        pub fn engine_request_wait(&self, wait_ns: u64) {
            self.engine_submit_wait.record(wait_ns);
        }

        /// Records one executed batch (dispatch→done).
        #[inline]
        pub fn engine_batch_done(&self, start_ns: u64, dur_ns: u64, batch: usize) {
            self.engine_batches.inc();
            self.engine_batch_size.record(batch as u64);
            self.engine_service.record(dur_ns);
            ant_obs::record_span(self.span_batch, start_ns, dur_ns);
        }

        /// Records one executed decode step batch: `batch` sessions each
        /// advanced one token in `dur_ns`.
        #[inline]
        pub fn engine_decode_batch(&self, start_ns: u64, dur_ns: u64, batch: usize) {
            self.engine_decode_batch.record(batch as u64);
            self.engine_decode_step.record(dur_ns);
            self.engine_decode_tokens.add(batch as u64);
            ant_obs::record_span(self.span_batch, start_ns, dur_ns);
        }

        /// Counts one supervisor recovery (a panicked batch execution
        /// absorbed without killing the engine).
        #[inline]
        pub fn engine_restart(&self) {
            self.engine_restarts.inc();
        }

        /// Counts `n` requests isolated as poisoned.
        #[inline]
        pub fn engine_poisoned(&self, n: u64) {
            self.engine_poisoned.add(n);
        }

        /// Counts `n` bisection probe executions.
        #[inline]
        pub fn engine_quarantine_probes(&self, n: u64) {
            self.engine_quarantine_probes.add(n);
        }

        /// Publishes the bytes currently pinned by open sessions' packed
        /// KV caches, and how many sessions hold them.
        #[inline]
        pub fn kv_cache_usage(&self, bytes: usize, sessions: usize) {
            self.kv_cache_bytes.set(bytes as i64);
            self.kv_sessions.set(sessions as i64);
        }

        /// Records one artifact load/open.
        pub fn artifact_load(&self, start_ns: u64, dur_ns: u64, copies: u64, zero_copy: bool) {
            self.artifact_loads.inc();
            self.artifact_load.record(dur_ns);
            self.artifact_load_copies.add(copies);
            self.artifact_zero_copy.set(i64::from(zero_copy));
            ant_obs::record_span(self.span_load, start_ns, dur_ns);
        }

        /// Records one artifact verification pass.
        pub fn artifact_verify(&self, start_ns: u64, dur_ns: u64) {
            self.artifact_verify.record(dur_ns);
            ant_obs::record_span(self.span_verify, start_ns, dur_ns);
        }

        /// Counts a type-selection cache hit.
        #[inline]
        pub fn cache_hit(&self) {
            self.cache_hits.inc();
        }

        /// Counts a type-selection cache miss.
        #[inline]
        pub fn cache_miss(&self) {
            self.cache_misses.inc();
        }
    }

    fn span_name(kind: LayerKind) -> &'static str {
        match kind {
            LayerKind::PackedLinear => "layer.packed_linear",
            LayerKind::PackedConv => "layer.packed_conv",
            LayerKind::PackedAttn => "layer.packed_attn",
            LayerKind::Relu => "layer.relu",
            LayerKind::Gelu => "layer.gelu",
            LayerKind::Pool => "layer.pool",
            LayerKind::Norm => "layer.norm",
            LayerKind::Fallback => "layer.fallback",
        }
    }

    /// Pool-local telemetry: per-slot task counters (slot 0 is the
    /// participating `run` caller, slots 1.. the parked workers) plus
    /// mirrors into the global aggregate families. All storage is
    /// preallocated at pool construction; recording is counter adds only
    /// — the pool hot path never reads a clock.
    pub struct PoolObs {
        jobs: Arc<Counter>,
        tasks: Arc<Counter>,
        inline_tasks: Arc<Counter>,
        stolen_tasks: Arc<Counter>,
        job_tasks: Arc<Histogram>,
        /// Pool-local executed-task count per slot (exact, unlike the
        /// global mirrors which are shared across pools).
        slot_tasks: Vec<Counter>,
        /// Pool-local park transitions per worker slot.
        slot_parks: Vec<Counter>,
        /// Pool-local total; always equals the sum of `slot_tasks`.
        total: Counter,
    }

    impl PoolObs {
        /// Preallocates slots for a pool of total width `width`.
        pub fn new(width: usize) -> PoolObs {
            let r = ant_obs::global();
            PoolObs {
                jobs: r.counter("ant_pool_jobs_total", "Jobs dispatched to a worker pool"),
                tasks: r.counter("ant_pool_tasks_total", "Pool tasks executed (all slots)"),
                inline_tasks: r.counter(
                    "ant_pool_inline_tasks_total",
                    "Tasks executed inline without a dispatch (width-1 or single-task jobs)",
                ),
                stolen_tasks: r.counter(
                    "ant_pool_stolen_tasks_total",
                    "Tasks executed by parked workers rather than the submitting caller",
                ),
                job_tasks: r.histogram(
                    "ant_pool_job_tasks",
                    "Tasks per dispatched job (the partition grid size)",
                ),
                slot_tasks: (0..width).map(|_| Counter::new()).collect(),
                slot_parks: (0..width).map(|_| Counter::new()).collect(),
                total: Counter::new(),
            }
        }

        /// Records one dispatched (queued) job of `tasks` tasks.
        #[inline]
        pub fn record_job(&self, tasks: usize) {
            self.jobs.inc();
            self.job_tasks.record(tasks as u64);
        }

        /// Records `tasks` tasks executed inline by the caller without a
        /// dispatch.
        #[inline]
        pub fn record_inline(&self, tasks: u64) {
            self.tasks.add(tasks);
            self.inline_tasks.add(tasks);
            self.slot_tasks[0].add(tasks);
            self.total.add(tasks);
        }

        /// Records one claimed task executed by `slot`.
        #[inline]
        pub fn record_task(&self, slot: usize) {
            self.tasks.inc();
            self.slot_tasks[slot].inc();
            self.total.inc();
            if slot > 0 {
                self.stolen_tasks.inc();
            }
        }

        /// Records a worker parking on the condvar (an idle transition).
        #[inline]
        pub fn record_park(&self, slot: usize) {
            self.slot_parks[slot].inc();
        }

        /// Executed-task count per slot (slot 0 = callers).
        pub fn slot_task_counts(&self) -> Vec<u64> {
            self.slot_tasks.iter().map(|c| c.get()).collect()
        }

        /// Park-transition count per slot.
        pub fn slot_park_counts(&self) -> Vec<u64> {
            self.slot_parks.iter().map(|c| c.get()).collect()
        }

        /// Total tasks this pool executed (equals the slot sum).
        pub fn total_tasks(&self) -> u64 {
            self.total.get()
        }
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    use super::LayerKind;

    /// Constant 0 — the disabled build never reads a clock.
    #[inline(always)]
    pub fn now() -> u64 {
        0
    }

    /// No-op hook set (`--no-default-features` build).
    pub struct RuntimeMetrics;

    /// The process-wide hook set (a no-op singleton here).
    #[inline(always)]
    pub fn metrics() -> &'static RuntimeMetrics {
        static METRICS: RuntimeMetrics = RuntimeMetrics;
        &METRICS
    }

    #[allow(clippy::too_many_arguments, missing_docs)]
    impl RuntimeMetrics {
        #[inline(always)]
        pub fn record_layer(&self, _: LayerKind, _: u64, _: u64, _: u64, _: u64, _: u64) {}
        #[inline(always)]
        pub fn record_forward(&self, _: u64, _: u64, _: u64) {}
        #[inline(always)]
        pub fn engine_queue_depth(&self, _: usize) {}
        #[inline(always)]
        pub fn engine_submit(&self) {}
        #[inline(always)]
        pub fn engine_request_wait(&self, _: u64) {}
        #[inline(always)]
        pub fn engine_batch_done(&self, _: u64, _: u64, _: usize) {}
        #[inline(always)]
        pub fn engine_decode_batch(&self, _: u64, _: u64, _: usize) {}
        #[inline(always)]
        pub fn engine_restart(&self) {}
        #[inline(always)]
        pub fn engine_poisoned(&self, _: u64) {}
        #[inline(always)]
        pub fn engine_quarantine_probes(&self, _: u64) {}
        #[inline(always)]
        pub fn kv_cache_usage(&self, _: usize, _: usize) {}
        #[inline(always)]
        pub fn artifact_load(&self, _: u64, _: u64, _: u64, _: bool) {}
        #[inline(always)]
        pub fn artifact_verify(&self, _: u64, _: u64) {}
        #[inline(always)]
        pub fn cache_hit(&self) {}
        #[inline(always)]
        pub fn cache_miss(&self) {}
    }

    /// No-op pool telemetry (`--no-default-features` build).
    pub struct PoolObs;

    #[allow(missing_docs)]
    impl PoolObs {
        #[inline(always)]
        pub fn new(_width: usize) -> PoolObs {
            PoolObs
        }
        #[inline(always)]
        pub fn record_job(&self, _: usize) {}
        #[inline(always)]
        pub fn record_inline(&self, _: u64) {}
        #[inline(always)]
        pub fn record_task(&self, _: usize) {}
        #[inline(always)]
        pub fn record_park(&self, _: usize) {}
    }
}

pub use imp::{metrics, now, PoolObs, RuntimeMetrics};
