//! Batched request scheduling over a compiled plan.
//!
//! Serving traffic arrives one request at a time, but the packed engine is
//! most efficient on batches: one LUT decode + GEMM pass per layer
//! amortizes per-call overhead across every queued request. [`Engine`]
//! owns a worker thread that coalesces submissions into batches under a
//! [`BatchPolicy`] (close a batch at `max_batch` requests, or after
//! `max_wait` once the first request of a batch arrives) — the standard
//! max-batch/max-latency serving trade-off.
//!
//! Because the packed layers compute in exact integer arithmetic, results
//! are bit-identical no matter how requests are grouped; batching is
//! invisible to callers except in latency.

use crate::error::RuntimeError;
use crate::obs;
use crate::plan::CompiledPlan;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When the scheduler closes a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Maximum time the first request of a batch waits for company.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
        }
    }
}

/// Handle to a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Reconstructs a handle from its raw value (deserialization/test
    /// hook). Waiting on an id the engine never issued errors — it does
    /// not hang.
    pub fn from_raw(raw: u64) -> RequestId {
        RequestId(raw)
    }

    /// The raw id value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted by [`Engine::submit`].
    pub submitted: u64,
    /// Requests completed (result available or delivered).
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch executed.
    pub largest_batch: usize,
}

/// One queued request: id, input row, submit timestamp (telemetry).
type Queued = (u64, Vec<f32>, u64);

struct State {
    queue: VecDeque<Queued>,
    results: HashMap<u64, Result<Vec<f32>, String>>,
    /// Ids drained from the queue whose batch is currently executing.
    executing: HashSet<u64>,
    next_id: u64,
    shutdown: bool,
    stats: EngineStats,
}

impl State {
    /// Whether `id` is still somewhere inside the engine (queued or in the
    /// executing batch). Once false with no result present, the id is
    /// either unknown or already delivered.
    fn in_flight(&self, id: u64) -> bool {
        self.executing.contains(&id) || self.queue.iter().any(|(q, _, _)| *q == id)
    }
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A batched inference engine over a [`CompiledPlan`].
pub struct Engine {
    shared: Arc<Shared>,
    in_features: Option<usize>,
    worker: Option<JoinHandle<()>>,
}

impl Engine {
    /// Starts the engine: spawns the worker thread that owns `plan` and
    /// serves batches under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `policy.max_batch` is zero.
    pub fn new(plan: CompiledPlan, policy: BatchPolicy) -> Self {
        assert!(policy.max_batch > 0, "max_batch must be positive");
        let in_features = plan.in_features();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                results: HashMap::new(),
                executing: HashSet::new(),
                next_id: 0,
                shutdown: false,
                stats: EngineStats::default(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || worker_loop(worker_shared, plan, policy));
        Engine {
            shared,
            in_features,
            worker: Some(worker),
        }
    }

    /// Enqueues one request (a single feature row). Returns immediately
    /// with a handle to [`Self::poll`] or [`Self::wait`] on.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::ShapeMismatch`] when the feature count disagrees
    ///   with the plan,
    /// * [`RuntimeError::Engine`] after shutdown.
    ///
    /// # Example
    ///
    /// ```
    /// use ant_nn::model::mlp;
    /// use ant_nn::qat::{quantize_model, QuantSpec};
    /// use ant_runtime::{BatchPolicy, CompiledPlan, Engine, RuntimeError};
    /// use ant_tensor::dist::{sample_tensor, Distribution};
    ///
    /// let mut model = mlp(8, 4, 1);
    /// let calib = sample_tensor(Distribution::Gaussian { mean: 0.0, std: 1.0 }, &[64, 8], 2);
    /// quantize_model(&mut model, &calib, QuantSpec::default())?;
    /// let engine = Engine::new(CompiledPlan::from_quantized(&model)?, BatchPolicy::default());
    /// let id = engine.submit(&[0.25; 8])?;            // returns immediately
    /// assert_eq!(engine.wait(id)?.len(), 4);
    /// // A mis-sized row is rejected up front, before it can poison a batch.
    /// assert!(matches!(engine.submit(&[0.0; 3]), Err(RuntimeError::ShapeMismatch { .. })));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn submit(&self, input: &[f32]) -> Result<RequestId, RuntimeError> {
        if let Some(expected) = self.in_features {
            if input.len() != expected {
                return Err(RuntimeError::ShapeMismatch {
                    expected,
                    actual: input.len(),
                });
            }
        }
        let mut state = self.shared.state.lock().expect("engine lock");
        if state.shutdown {
            return Err(RuntimeError::Engine("engine is shut down".to_string()));
        }
        let id = state.next_id;
        state.next_id += 1;
        state.stats.submitted += 1;
        state.queue.push_back((id, input.to_vec(), obs::now()));
        let m = obs::metrics();
        m.engine_submit();
        m.engine_queue_depth(state.queue.len());
        drop(state);
        self.shared.work_cv.notify_one();
        Ok(RequestId(id))
    }

    /// Non-blocking result check: `None` while the request is in flight,
    /// the result (taken out of the engine) once its batch completed.
    pub fn poll(&self, id: RequestId) -> Option<Result<Vec<f32>, RuntimeError>> {
        let mut state = self.shared.state.lock().expect("engine lock");
        state
            .results
            .remove(&id.0)
            .map(|r| r.map_err(RuntimeError::Engine))
    }

    /// Blocks until the request's batch completes and returns its result.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Engine`] if the worker fails the request,
    /// shuts down first, or `id` is unknown / already delivered (results
    /// are taken out of the engine exactly once).
    ///
    /// # Example
    ///
    /// ```
    /// use ant_nn::model::mlp;
    /// use ant_nn::qat::{quantize_model, QuantSpec};
    /// use ant_runtime::{BatchPolicy, CompiledPlan, Engine, RequestId, RuntimeError};
    /// use ant_tensor::dist::{sample_tensor, Distribution};
    ///
    /// let mut model = mlp(8, 4, 1);
    /// let calib = sample_tensor(Distribution::Gaussian { mean: 0.0, std: 1.0 }, &[64, 8], 2);
    /// quantize_model(&mut model, &calib, QuantSpec::default())?;
    /// let engine = Engine::new(CompiledPlan::from_quantized(&model)?, BatchPolicy::default());
    /// let id = engine.submit(&[0.5; 8])?;
    /// let logits = engine.wait(id)?;                  // blocks until the batch ran
    /// assert_eq!(logits.len(), 4);
    /// // Results leave the engine exactly once; waiting again errors
    /// // instead of hanging, as does a never-issued id.
    /// assert!(matches!(engine.wait(id), Err(RuntimeError::Engine(_))));
    /// assert!(matches!(engine.wait(RequestId::from_raw(9999)), Err(RuntimeError::Engine(_))));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn wait(&self, id: RequestId) -> Result<Vec<f32>, RuntimeError> {
        let mut state = self.shared.state.lock().expect("engine lock");
        loop {
            if let Some(r) = state.results.remove(&id.0) {
                return r.map_err(RuntimeError::Engine);
            }
            if !state.in_flight(id.0) {
                return Err(RuntimeError::Engine(format!(
                    "request {} is unknown or its result was already taken",
                    id.0
                )));
            }
            if state.shutdown {
                return Err(RuntimeError::Engine("engine is shut down".to_string()));
            }
            state = self.shared.done_cv.wait(state).expect("engine lock");
        }
    }

    /// Scheduler counters so far.
    pub fn stats(&self) -> EngineStats {
        self.shared.state.lock().expect("engine lock").stats
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("engine lock");
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The worker: wait for work, gather a batch under the policy, execute,
/// publish results, repeat. Queued work is drained even during shutdown so
/// submitted requests are never silently dropped.
///
/// The input-stacking and output buffers persist across batches and the
/// plan executes through its scratch arena, so a steady-state batch costs
/// one allocation per *request* (the result row handed to the caller),
/// not one per intermediate.
fn worker_loop(shared: Arc<Shared>, mut plan: CompiledPlan, policy: BatchPolicy) {
    let mut stacked: Vec<f32> = Vec::new();
    let mut outputs: Vec<f32> = Vec::new();
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("engine lock");
            while state.queue.is_empty() && !state.shutdown {
                state = shared.work_cv.wait(state).expect("engine lock");
            }
            if state.queue.is_empty() && state.shutdown {
                return;
            }
            // First request in hand: hold the batch open until it is full
            // or the wait budget is spent.
            let deadline = Instant::now() + policy.max_wait;
            while state.queue.len() < policy.max_batch && !state.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (s, timeout) = shared
                    .work_cv
                    .wait_timeout(state, deadline - now)
                    .expect("engine lock");
                state = s;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = policy.max_batch.min(state.queue.len());
            let batch = state.queue.drain(..take).collect::<Vec<_>>();
            for (id, _, _) in &batch {
                state.executing.insert(*id);
            }
            obs::metrics().engine_queue_depth(state.queue.len());
            batch
        };
        let m = obs::metrics();
        let dispatch = obs::now();
        for (_, _, submitted) in &batch {
            m.engine_request_wait(dispatch.saturating_sub(*submitted));
        }
        let outputs = run_batch(&mut plan, &batch, &mut stacked, &mut outputs);
        m.engine_batch_done(dispatch, obs::now().saturating_sub(dispatch), batch.len());
        let mut state = shared.state.lock().expect("engine lock");
        state.stats.batches += 1;
        state.stats.largest_batch = state.stats.largest_batch.max(batch.len());
        state.stats.completed += batch.len() as u64;
        for (id, result) in outputs {
            state.executing.remove(&id);
            state.results.insert(id, result);
        }
        drop(state);
        shared.done_cv.notify_all();
    }
}

/// Stacks the batch into one `[b, features]` slice (reusing `stacked`),
/// runs the plan through its scratch arena (reusing `outputs`), and
/// splits the output back into per-request rows.
fn run_batch(
    plan: &mut CompiledPlan,
    batch: &[Queued],
    stacked: &mut Vec<f32>,
    outputs: &mut Vec<f32>,
) -> Vec<(u64, Result<Vec<f32>, String>)> {
    let features = batch[0].1.len();
    if batch.iter().any(|(_, row, _)| row.len() != features) {
        // Heterogeneous rows can only happen when the plan has no pinned
        // input width; fail each request individually.
        return batch
            .iter()
            .map(|(id, _, _)| (*id, Err("mixed feature counts in batch".to_string())))
            .collect();
    }
    stacked.clear();
    for (_, row, _) in batch {
        stacked.extend_from_slice(row);
    }
    match plan.forward_rows(stacked, batch.len(), outputs) {
        Ok(()) => {
            let per = outputs.len() / batch.len();
            batch
                .iter()
                .enumerate()
                .map(|(i, (id, _, _))| (*id, Ok(outputs[i * per..(i + 1) * per].to_vec())))
                .collect()
        }
        Err(e) => batch
            .iter()
            .map(|(id, _, _)| (*id, Err(e.to_string())))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ant_nn::model::mlp;
    use ant_nn::qat::{quantize_model, QuantSpec};
    use ant_tensor::dist::{sample_tensor, Distribution};
    use ant_tensor::Tensor;

    fn plan() -> (CompiledPlan, Tensor) {
        let mut model = mlp(8, 4, 23);
        let calib = sample_tensor(
            Distribution::Gaussian {
                mean: 0.0,
                std: 1.0,
            },
            &[64, 8],
            7,
        );
        quantize_model(&mut model, &calib, QuantSpec::default()).unwrap();
        (CompiledPlan::from_quantized(&model).unwrap(), calib)
    }

    #[test]
    fn batched_results_match_direct_forward() {
        let (plan_for_engine, calib) = plan();
        let mut reference_plan = plan_for_engine.clone();
        let engine = Engine::new(
            plan_for_engine,
            BatchPolicy {
                max_batch: 16,
                max_wait: Duration::from_millis(5),
            },
        );
        let f = calib.dims()[1];
        let n = 40;
        let ids: Vec<RequestId> = (0..n)
            .map(|i| engine.submit(&calib.as_slice()[(i % 64) * f..((i % 64) + 1) * f]))
            .collect::<Result<_, _>>()
            .unwrap();
        for (i, id) in ids.iter().enumerate() {
            let got = engine.wait(*id).unwrap();
            let row = Tensor::from_vec(
                calib.as_slice()[(i % 64) * f..((i % 64) + 1) * f].to_vec(),
                &[1, f],
            )
            .unwrap();
            let expect = reference_plan.forward(&row).unwrap();
            assert_eq!(got, expect.as_slice(), "request {i}");
        }
        let stats = engine.stats();
        assert_eq!(stats.submitted, n as u64);
        assert_eq!(stats.completed, n as u64);
        assert!(stats.batches >= 3, "expected ≥3 batches of ≤16: {stats:?}");
        assert!(stats.largest_batch <= 16);
    }

    #[test]
    fn poll_is_nonblocking_and_consumes() {
        let (p, calib) = plan();
        let engine = Engine::new(p, BatchPolicy::default());
        let id = engine.submit(&calib.as_slice()[..8]).unwrap();
        // Spin briefly until the batch closes (max_wait 1ms).
        let mut got = None;
        for _ in 0..500 {
            if let Some(r) = engine.poll(id) {
                got = Some(r);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(got.unwrap().is_ok());
        // Result was taken out.
        assert!(engine.poll(id).is_none());
    }

    #[test]
    fn consumed_or_unknown_id_errors_instead_of_hanging() {
        let (p, calib) = plan();
        let engine = Engine::new(
            p,
            BatchPolicy {
                max_batch: 1,
                max_wait: Duration::from_millis(1),
            },
        );
        let id = engine.submit(&calib.as_slice()[..8]).unwrap();
        assert!(engine.wait(id).is_ok());
        // Second take of the same result: error, not a deadlock.
        assert!(matches!(engine.wait(id), Err(RuntimeError::Engine(_))));
        // Never-issued id: same.
        assert!(matches!(
            engine.wait(RequestId(12345)),
            Err(RuntimeError::Engine(_))
        ));
    }

    #[test]
    fn submit_validates_features() {
        let (p, _) = plan();
        let engine = Engine::new(p, BatchPolicy::default());
        assert!(matches!(
            engine.submit(&[1.0, 2.0]),
            Err(RuntimeError::ShapeMismatch {
                expected: 8,
                actual: 2
            })
        ));
    }

    #[test]
    fn drop_drains_cleanly() {
        let (p, calib) = plan();
        let engine = Engine::new(
            p,
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
            },
        );
        for i in 0..8 {
            engine
                .submit(&calib.as_slice()[i * 8..(i + 1) * 8])
                .unwrap();
        }
        drop(engine); // must not deadlock or panic
    }
}
